/root/repo/target/release/deps/speedybox_packet-e34685e6349b3cdf.d: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

/root/repo/target/release/deps/libspeedybox_packet-e34685e6349b3cdf.rlib: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

/root/repo/target/release/deps/libspeedybox_packet-e34685e6349b3cdf.rmeta: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

crates/packet/src/lib.rs:
crates/packet/src/builder.rs:
crates/packet/src/checksum.rs:
crates/packet/src/field.rs:
crates/packet/src/five_tuple.rs:
crates/packet/src/headers.rs:
crates/packet/src/packet.rs:
crates/packet/src/pcap.rs:
crates/packet/src/pool.rs:
crates/packet/src/trace.rs:
