/root/repo/target/release/deps/crossbeam-0b7e98ffb4113d09.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-0b7e98ffb4113d09.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-0b7e98ffb4113d09.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
