/root/repo/target/release/deps/speedybox_nf-daffb64009c87691.d: crates/nf/src/lib.rs crates/nf/src/dosguard.rs crates/nf/src/gateway.rs crates/nf/src/inspect.rs crates/nf/src/ipfilter.rs crates/nf/src/maglev.rs crates/nf/src/mazunat.rs crates/nf/src/monitor.rs crates/nf/src/nf.rs crates/nf/src/ratelimiter.rs crates/nf/src/regex.rs crates/nf/src/snort.rs crates/nf/src/synthetic.rs crates/nf/src/vpn.rs

/root/repo/target/release/deps/libspeedybox_nf-daffb64009c87691.rlib: crates/nf/src/lib.rs crates/nf/src/dosguard.rs crates/nf/src/gateway.rs crates/nf/src/inspect.rs crates/nf/src/ipfilter.rs crates/nf/src/maglev.rs crates/nf/src/mazunat.rs crates/nf/src/monitor.rs crates/nf/src/nf.rs crates/nf/src/ratelimiter.rs crates/nf/src/regex.rs crates/nf/src/snort.rs crates/nf/src/synthetic.rs crates/nf/src/vpn.rs

/root/repo/target/release/deps/libspeedybox_nf-daffb64009c87691.rmeta: crates/nf/src/lib.rs crates/nf/src/dosguard.rs crates/nf/src/gateway.rs crates/nf/src/inspect.rs crates/nf/src/ipfilter.rs crates/nf/src/maglev.rs crates/nf/src/mazunat.rs crates/nf/src/monitor.rs crates/nf/src/nf.rs crates/nf/src/ratelimiter.rs crates/nf/src/regex.rs crates/nf/src/snort.rs crates/nf/src/synthetic.rs crates/nf/src/vpn.rs

crates/nf/src/lib.rs:
crates/nf/src/dosguard.rs:
crates/nf/src/gateway.rs:
crates/nf/src/inspect.rs:
crates/nf/src/ipfilter.rs:
crates/nf/src/maglev.rs:
crates/nf/src/mazunat.rs:
crates/nf/src/monitor.rs:
crates/nf/src/nf.rs:
crates/nf/src/ratelimiter.rs:
crates/nf/src/regex.rs:
crates/nf/src/snort.rs:
crates/nf/src/synthetic.rs:
crates/nf/src/vpn.rs:
