/root/repo/target/release/deps/speedybox_stats-9c2d9c112ff9a5f5.d: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libspeedybox_stats-9c2d9c112ff9a5f5.rlib: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libspeedybox_stats-9c2d9c112ff9a5f5.rmeta: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/cdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
