/root/repo/target/release/deps/crossbeam-d29dae7e6c9f5912.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-d29dae7e6c9f5912.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-d29dae7e6c9f5912.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
