/root/repo/target/release/deps/speedybox_packet-c256eba40b8bc2db.d: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

/root/repo/target/release/deps/libspeedybox_packet-c256eba40b8bc2db.rlib: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

/root/repo/target/release/deps/libspeedybox_packet-c256eba40b8bc2db.rmeta: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

crates/packet/src/lib.rs:
crates/packet/src/builder.rs:
crates/packet/src/checksum.rs:
crates/packet/src/field.rs:
crates/packet/src/five_tuple.rs:
crates/packet/src/headers.rs:
crates/packet/src/packet.rs:
crates/packet/src/pcap.rs:
crates/packet/src/pool.rs:
crates/packet/src/trace.rs:
