/root/repo/target/release/deps/speedybox_traffic-2a33d999399edc78.d: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

/root/repo/target/release/deps/libspeedybox_traffic-2a33d999399edc78.rlib: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

/root/repo/target/release/deps/libspeedybox_traffic-2a33d999399edc78.rmeta: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/payload.rs:
crates/traffic/src/replay.rs:
crates/traffic/src/workload.rs:
