/root/repo/target/release/deps/speedybox_stats-7cc497e8f9bc337d.d: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libspeedybox_stats-7cc497e8f9bc337d.rlib: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libspeedybox_stats-7cc497e8f9bc337d.rmeta: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/cdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
