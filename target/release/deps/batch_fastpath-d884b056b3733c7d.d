/root/repo/target/release/deps/batch_fastpath-d884b056b3733c7d.d: crates/bench/benches/batch_fastpath.rs

/root/repo/target/release/deps/batch_fastpath-d884b056b3733c7d: crates/bench/benches/batch_fastpath.rs

crates/bench/benches/batch_fastpath.rs:
