/root/repo/target/release/deps/speedybox-ba9adf1038d42b0e.d: src/lib.rs

/root/repo/target/release/deps/libspeedybox-ba9adf1038d42b0e.rlib: src/lib.rs

/root/repo/target/release/deps/libspeedybox-ba9adf1038d42b0e.rmeta: src/lib.rs

src/lib.rs:
