/root/repo/target/release/deps/speedybox-73b4c7b057a351a2.d: src/bin/speedybox.rs

/root/repo/target/release/deps/speedybox-73b4c7b057a351a2: src/bin/speedybox.rs

src/bin/speedybox.rs:
