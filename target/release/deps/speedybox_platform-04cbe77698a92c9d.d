/root/repo/target/release/deps/speedybox_platform-04cbe77698a92c9d.d: crates/platform/src/lib.rs crates/platform/src/bess.rs crates/platform/src/chains.rs crates/platform/src/cycles.rs crates/platform/src/metrics.rs crates/platform/src/onvm.rs crates/platform/src/parallel_exec.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/release/deps/libspeedybox_platform-04cbe77698a92c9d.rlib: crates/platform/src/lib.rs crates/platform/src/bess.rs crates/platform/src/chains.rs crates/platform/src/cycles.rs crates/platform/src/metrics.rs crates/platform/src/onvm.rs crates/platform/src/parallel_exec.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/release/deps/libspeedybox_platform-04cbe77698a92c9d.rmeta: crates/platform/src/lib.rs crates/platform/src/bess.rs crates/platform/src/chains.rs crates/platform/src/cycles.rs crates/platform/src/metrics.rs crates/platform/src/onvm.rs crates/platform/src/parallel_exec.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

crates/platform/src/lib.rs:
crates/platform/src/bess.rs:
crates/platform/src/chains.rs:
crates/platform/src/cycles.rs:
crates/platform/src/metrics.rs:
crates/platform/src/onvm.rs:
crates/platform/src/parallel_exec.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
