/root/repo/target/release/deps/speedybox_mat-eb54cd454f26eee2.d: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs

/root/repo/target/release/deps/libspeedybox_mat-eb54cd454f26eee2.rlib: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs

/root/repo/target/release/deps/libspeedybox_mat-eb54cd454f26eee2.rmeta: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs

crates/mat/src/lib.rs:
crates/mat/src/action.rs:
crates/mat/src/api.rs:
crates/mat/src/classifier.rs:
crates/mat/src/consolidate.rs:
crates/mat/src/error.rs:
crates/mat/src/event.rs:
crates/mat/src/global.rs:
crates/mat/src/local.rs:
crates/mat/src/ops.rs:
crates/mat/src/parallel.rs:
crates/mat/src/state_fn.rs:
