/root/repo/target/release/deps/criterion-9dcf338883deb2b8.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9dcf338883deb2b8.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-9dcf338883deb2b8.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
