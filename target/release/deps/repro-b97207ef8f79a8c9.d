/root/repo/target/release/deps/repro-b97207ef8f79a8c9.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-b97207ef8f79a8c9: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
