/root/repo/target/release/deps/repro-d70f3e849ec8bc78.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-d70f3e849ec8bc78: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
