/root/repo/target/release/deps/speedybox_traffic-9895fc70a81b1031.d: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

/root/repo/target/release/deps/libspeedybox_traffic-9895fc70a81b1031.rlib: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

/root/repo/target/release/deps/libspeedybox_traffic-9895fc70a81b1031.rmeta: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/payload.rs:
crates/traffic/src/replay.rs:
crates/traffic/src/workload.rs:
