/root/repo/target/release/deps/proptest-c418f981440fb764.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c418f981440fb764.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c418f981440fb764.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
