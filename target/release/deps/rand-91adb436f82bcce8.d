/root/repo/target/release/deps/rand-91adb436f82bcce8.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-91adb436f82bcce8.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-91adb436f82bcce8.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
