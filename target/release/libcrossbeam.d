/root/repo/target/release/libcrossbeam.rlib: /root/repo/vendor/crossbeam/src/lib.rs
