/root/repo/target/debug/libbytes.rlib: /root/repo/vendor/bytes/src/lib.rs
