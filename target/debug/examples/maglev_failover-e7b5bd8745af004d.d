/root/repo/target/debug/examples/maglev_failover-e7b5bd8745af004d.d: examples/maglev_failover.rs

/root/repo/target/debug/examples/maglev_failover-e7b5bd8745af004d: examples/maglev_failover.rs

examples/maglev_failover.rs:
