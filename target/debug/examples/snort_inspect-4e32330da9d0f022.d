/root/repo/target/debug/examples/snort_inspect-4e32330da9d0f022.d: examples/snort_inspect.rs

/root/repo/target/debug/examples/snort_inspect-4e32330da9d0f022: examples/snort_inspect.rs

examples/snort_inspect.rs:
