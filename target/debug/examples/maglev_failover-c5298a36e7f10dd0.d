/root/repo/target/debug/examples/maglev_failover-c5298a36e7f10dd0.d: examples/maglev_failover.rs Cargo.toml

/root/repo/target/debug/examples/libmaglev_failover-c5298a36e7f10dd0.rmeta: examples/maglev_failover.rs Cargo.toml

examples/maglev_failover.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
