/root/repo/target/debug/examples/vpn_tunnel-b2cb6954b34eaf7a.d: examples/vpn_tunnel.rs

/root/repo/target/debug/examples/vpn_tunnel-b2cb6954b34eaf7a: examples/vpn_tunnel.rs

examples/vpn_tunnel.rs:
