/root/repo/target/debug/examples/vpn_tunnel-1875a1ee480a7432.d: examples/vpn_tunnel.rs Cargo.toml

/root/repo/target/debug/examples/libvpn_tunnel-1875a1ee480a7432.rmeta: examples/vpn_tunnel.rs Cargo.toml

examples/vpn_tunnel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
