/root/repo/target/debug/examples/quickstart-c4886424ff604026.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c4886424ff604026: examples/quickstart.rs

examples/quickstart.rs:
