/root/repo/target/debug/examples/ops_dashboard-c88fc3996a5b735c.d: examples/ops_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libops_dashboard-c88fc3996a5b735c.rmeta: examples/ops_dashboard.rs Cargo.toml

examples/ops_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
