/root/repo/target/debug/examples/quickstart-44e6b56b978d4bfe.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-44e6b56b978d4bfe.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
