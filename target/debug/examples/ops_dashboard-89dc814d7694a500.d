/root/repo/target/debug/examples/ops_dashboard-89dc814d7694a500.d: examples/ops_dashboard.rs

/root/repo/target/debug/examples/ops_dashboard-89dc814d7694a500: examples/ops_dashboard.rs

examples/ops_dashboard.rs:
