/root/repo/target/debug/examples/enterprise_chain-5cca20636923d94a.d: examples/enterprise_chain.rs

/root/repo/target/debug/examples/enterprise_chain-5cca20636923d94a: examples/enterprise_chain.rs

examples/enterprise_chain.rs:
