/root/repo/target/debug/examples/snort_inspect-675f3ef2f914cca7.d: examples/snort_inspect.rs Cargo.toml

/root/repo/target/debug/examples/libsnort_inspect-675f3ef2f914cca7.rmeta: examples/snort_inspect.rs Cargo.toml

examples/snort_inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
