/root/repo/target/debug/examples/enterprise_chain-d2d45dae54e11f81.d: examples/enterprise_chain.rs Cargo.toml

/root/repo/target/debug/examples/libenterprise_chain-d2d45dae54e11f81.rmeta: examples/enterprise_chain.rs Cargo.toml

examples/enterprise_chain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
