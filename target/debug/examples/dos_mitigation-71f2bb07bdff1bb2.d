/root/repo/target/debug/examples/dos_mitigation-71f2bb07bdff1bb2.d: examples/dos_mitigation.rs Cargo.toml

/root/repo/target/debug/examples/libdos_mitigation-71f2bb07bdff1bb2.rmeta: examples/dos_mitigation.rs Cargo.toml

examples/dos_mitigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
