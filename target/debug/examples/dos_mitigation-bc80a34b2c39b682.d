/root/repo/target/debug/examples/dos_mitigation-bc80a34b2c39b682.d: examples/dos_mitigation.rs

/root/repo/target/debug/examples/dos_mitigation-bc80a34b2c39b682: examples/dos_mitigation.rs

examples/dos_mitigation.rs:
