/root/repo/target/debug/deps/integration_pipeline-cf56a13fdebac339.d: tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-cf56a13fdebac339: tests/integration_pipeline.rs

tests/integration_pipeline.rs:
