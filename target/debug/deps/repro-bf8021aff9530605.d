/root/repo/target/debug/deps/repro-bf8021aff9530605.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-bf8021aff9530605: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
