/root/repo/target/debug/deps/speedybox-0076cefedbda3cab.d: src/lib.rs

/root/repo/target/debug/deps/libspeedybox-0076cefedbda3cab.rlib: src/lib.rs

/root/repo/target/debug/deps/libspeedybox-0076cefedbda3cab.rmeta: src/lib.rs

src/lib.rs:
