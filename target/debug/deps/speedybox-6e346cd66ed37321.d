/root/repo/target/debug/deps/speedybox-6e346cd66ed37321.d: src/bin/speedybox.rs

/root/repo/target/debug/deps/speedybox-6e346cd66ed37321: src/bin/speedybox.rs

src/bin/speedybox.rs:
