/root/repo/target/debug/deps/equivalence_snort-f623072d00518808.d: tests/equivalence_snort.rs

/root/repo/target/debug/deps/equivalence_snort-f623072d00518808: tests/equivalence_snort.rs

tests/equivalence_snort.rs:
