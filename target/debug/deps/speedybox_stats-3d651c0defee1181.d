/root/repo/target/debug/deps/speedybox_stats-3d651c0defee1181.d: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox_stats-3d651c0defee1181.rmeta: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/cdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
