/root/repo/target/debug/deps/speedybox_mat-6bc03fb913443b66.d: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox_mat-6bc03fb913443b66.rmeta: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs Cargo.toml

crates/mat/src/lib.rs:
crates/mat/src/action.rs:
crates/mat/src/api.rs:
crates/mat/src/classifier.rs:
crates/mat/src/consolidate.rs:
crates/mat/src/error.rs:
crates/mat/src/event.rs:
crates/mat/src/global.rs:
crates/mat/src/local.rs:
crates/mat/src/ops.rs:
crates/mat/src/parallel.rs:
crates/mat/src/state_fn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
