/root/repo/target/debug/deps/speedybox_stats-af7d15f597af79bd.d: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/speedybox_stats-af7d15f597af79bd: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/cdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
