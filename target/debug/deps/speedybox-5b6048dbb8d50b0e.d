/root/repo/target/debug/deps/speedybox-5b6048dbb8d50b0e.d: src/bin/speedybox.rs

/root/repo/target/debug/deps/speedybox-5b6048dbb8d50b0e: src/bin/speedybox.rs

src/bin/speedybox.rs:
