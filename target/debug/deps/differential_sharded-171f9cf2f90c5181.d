/root/repo/target/debug/deps/differential_sharded-171f9cf2f90c5181.d: tests/differential_sharded.rs

/root/repo/target/debug/deps/differential_sharded-171f9cf2f90c5181: tests/differential_sharded.rs

tests/differential_sharded.rs:
