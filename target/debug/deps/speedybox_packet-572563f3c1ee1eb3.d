/root/repo/target/debug/deps/speedybox_packet-572563f3c1ee1eb3.d: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox_packet-572563f3c1ee1eb3.rmeta: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/builder.rs:
crates/packet/src/checksum.rs:
crates/packet/src/field.rs:
crates/packet/src/five_tuple.rs:
crates/packet/src/headers.rs:
crates/packet/src/packet.rs:
crates/packet/src/pcap.rs:
crates/packet/src/pool.rs:
crates/packet/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
