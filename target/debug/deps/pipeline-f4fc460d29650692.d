/root/repo/target/debug/deps/pipeline-f4fc460d29650692.d: crates/bench/benches/pipeline.rs

/root/repo/target/debug/deps/pipeline-f4fc460d29650692: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
