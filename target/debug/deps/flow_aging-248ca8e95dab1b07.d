/root/repo/target/debug/deps/flow_aging-248ca8e95dab1b07.d: tests/flow_aging.rs Cargo.toml

/root/repo/target/debug/deps/libflow_aging-248ca8e95dab1b07.rmeta: tests/flow_aging.rs Cargo.toml

tests/flow_aging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
