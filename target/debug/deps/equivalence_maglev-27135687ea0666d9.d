/root/repo/target/debug/deps/equivalence_maglev-27135687ea0666d9.d: tests/equivalence_maglev.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence_maglev-27135687ea0666d9.rmeta: tests/equivalence_maglev.rs Cargo.toml

tests/equivalence_maglev.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
