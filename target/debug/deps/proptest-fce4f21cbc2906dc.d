/root/repo/target/debug/deps/proptest-fce4f21cbc2906dc.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-fce4f21cbc2906dc.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-fce4f21cbc2906dc.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
