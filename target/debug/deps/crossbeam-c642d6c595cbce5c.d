/root/repo/target/debug/deps/crossbeam-c642d6c595cbce5c.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-c642d6c595cbce5c.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
