/root/repo/target/debug/deps/handshake_aware-64e908fb58055508.d: tests/handshake_aware.rs Cargo.toml

/root/repo/target/debug/deps/libhandshake_aware-64e908fb58055508.rmeta: tests/handshake_aware.rs Cargo.toml

tests/handshake_aware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
