/root/repo/target/debug/deps/speedybox_platform-bb2bffd081221725.d: crates/platform/src/lib.rs crates/platform/src/bess.rs crates/platform/src/chains.rs crates/platform/src/cycles.rs crates/platform/src/metrics.rs crates/platform/src/onvm.rs crates/platform/src/parallel_exec.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox_platform-bb2bffd081221725.rmeta: crates/platform/src/lib.rs crates/platform/src/bess.rs crates/platform/src/chains.rs crates/platform/src/cycles.rs crates/platform/src/metrics.rs crates/platform/src/onvm.rs crates/platform/src/parallel_exec.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs Cargo.toml

crates/platform/src/lib.rs:
crates/platform/src/bess.rs:
crates/platform/src/chains.rs:
crates/platform/src/cycles.rs:
crates/platform/src/metrics.rs:
crates/platform/src/onvm.rs:
crates/platform/src/parallel_exec.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
