/root/repo/target/debug/deps/speedybox_traffic-616836cc31c5a4b7.d: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

/root/repo/target/debug/deps/libspeedybox_traffic-616836cc31c5a4b7.rlib: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

/root/repo/target/debug/deps/libspeedybox_traffic-616836cc31c5a4b7.rmeta: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/payload.rs:
crates/traffic/src/replay.rs:
crates/traffic/src/workload.rs:
