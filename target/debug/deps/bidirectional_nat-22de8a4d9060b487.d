/root/repo/target/debug/deps/bidirectional_nat-22de8a4d9060b487.d: tests/bidirectional_nat.rs Cargo.toml

/root/repo/target/debug/deps/libbidirectional_nat-22de8a4d9060b487.rmeta: tests/bidirectional_nat.rs Cargo.toml

tests/bidirectional_nat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
