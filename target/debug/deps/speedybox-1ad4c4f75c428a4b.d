/root/repo/target/debug/deps/speedybox-1ad4c4f75c428a4b.d: src/lib.rs

/root/repo/target/debug/deps/speedybox-1ad4c4f75c428a4b: src/lib.rs

src/lib.rs:
