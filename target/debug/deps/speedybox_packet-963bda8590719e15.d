/root/repo/target/debug/deps/speedybox_packet-963bda8590719e15.d: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

/root/repo/target/debug/deps/libspeedybox_packet-963bda8590719e15.rlib: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

/root/repo/target/debug/deps/libspeedybox_packet-963bda8590719e15.rmeta: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/checksum.rs crates/packet/src/field.rs crates/packet/src/five_tuple.rs crates/packet/src/headers.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/pool.rs crates/packet/src/trace.rs

crates/packet/src/lib.rs:
crates/packet/src/builder.rs:
crates/packet/src/checksum.rs:
crates/packet/src/field.rs:
crates/packet/src/five_tuple.rs:
crates/packet/src/headers.rs:
crates/packet/src/packet.rs:
crates/packet/src/pcap.rs:
crates/packet/src/pool.rs:
crates/packet/src/trace.rs:
