/root/repo/target/debug/deps/stress-3778fa1976d3d209.d: tests/stress.rs

/root/repo/target/debug/deps/stress-3778fa1976d3d209: tests/stress.rs

tests/stress.rs:
