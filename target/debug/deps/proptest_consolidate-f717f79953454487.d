/root/repo/target/debug/deps/proptest_consolidate-f717f79953454487.d: crates/mat/tests/proptest_consolidate.rs

/root/repo/target/debug/deps/proptest_consolidate-f717f79953454487: crates/mat/tests/proptest_consolidate.rs

crates/mat/tests/proptest_consolidate.rs:
