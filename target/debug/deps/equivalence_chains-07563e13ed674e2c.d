/root/repo/target/debug/deps/equivalence_chains-07563e13ed674e2c.d: tests/equivalence_chains.rs

/root/repo/target/debug/deps/equivalence_chains-07563e13ed674e2c: tests/equivalence_chains.rs

tests/equivalence_chains.rs:
