/root/repo/target/debug/deps/speedybox_stats-4e1283c32bf8585f.d: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libspeedybox_stats-4e1283c32bf8585f.rlib: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libspeedybox_stats-4e1283c32bf8585f.rmeta: crates/stats/src/lib.rs crates/stats/src/cdf.rs crates/stats/src/histogram.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/cdf.rs:
crates/stats/src/histogram.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
