/root/repo/target/debug/deps/vlan_traffic-22581df8c0e96325.d: tests/vlan_traffic.rs

/root/repo/target/debug/deps/vlan_traffic-22581df8c0e96325: tests/vlan_traffic.rs

tests/vlan_traffic.rs:
