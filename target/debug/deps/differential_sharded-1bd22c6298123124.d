/root/repo/target/debug/deps/differential_sharded-1bd22c6298123124.d: tests/differential_sharded.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential_sharded-1bd22c6298123124.rmeta: tests/differential_sharded.rs Cargo.toml

tests/differential_sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
