/root/repo/target/debug/deps/bidirectional_nat-3231916d006c1fa4.d: tests/bidirectional_nat.rs

/root/repo/target/debug/deps/bidirectional_nat-3231916d006c1fa4: tests/bidirectional_nat.rs

tests/bidirectional_nat.rs:
