/root/repo/target/debug/deps/speedybox_mat-417877b7ea56c83a.d: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs

/root/repo/target/debug/deps/speedybox_mat-417877b7ea56c83a: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs

crates/mat/src/lib.rs:
crates/mat/src/action.rs:
crates/mat/src/api.rs:
crates/mat/src/classifier.rs:
crates/mat/src/consolidate.rs:
crates/mat/src/error.rs:
crates/mat/src/event.rs:
crates/mat/src/global.rs:
crates/mat/src/local.rs:
crates/mat/src/ops.rs:
crates/mat/src/parallel.rs:
crates/mat/src/state_fn.rs:
