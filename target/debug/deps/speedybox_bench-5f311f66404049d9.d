/root/repo/target/debug/deps/speedybox_bench-5f311f66404049d9.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/harness.rs crates/bench/src/experiments/../../../nf/src/snort.rs crates/bench/src/experiments/../../../nf/src/maglev.rs crates/bench/src/experiments/../../../nf/src/ipfilter.rs crates/bench/src/experiments/../../../nf/src/monitor.rs crates/bench/src/experiments/../../../nf/src/mazunat.rs

/root/repo/target/debug/deps/speedybox_bench-5f311f66404049d9: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablation.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/fig9.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/harness.rs crates/bench/src/experiments/../../../nf/src/snort.rs crates/bench/src/experiments/../../../nf/src/maglev.rs crates/bench/src/experiments/../../../nf/src/ipfilter.rs crates/bench/src/experiments/../../../nf/src/monitor.rs crates/bench/src/experiments/../../../nf/src/mazunat.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablation.rs:
crates/bench/src/experiments/fig4.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/fig9.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/harness.rs:
crates/bench/src/experiments/../../../nf/src/snort.rs:
crates/bench/src/experiments/../../../nf/src/maglev.rs:
crates/bench/src/experiments/../../../nf/src/ipfilter.rs:
crates/bench/src/experiments/../../../nf/src/monitor.rs:
crates/bench/src/experiments/../../../nf/src/mazunat.rs:
