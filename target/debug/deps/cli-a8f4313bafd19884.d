/root/repo/target/debug/deps/cli-a8f4313bafd19884.d: tests/cli.rs

/root/repo/target/debug/deps/cli-a8f4313bafd19884: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_speedybox=/root/repo/target/debug/speedybox
