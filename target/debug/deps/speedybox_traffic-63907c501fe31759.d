/root/repo/target/debug/deps/speedybox_traffic-63907c501fe31759.d: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox_traffic-63907c501fe31759.rmeta: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/payload.rs:
crates/traffic/src/replay.rs:
crates/traffic/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
