/root/repo/target/debug/deps/repro-3a0eef6fe82c4afc.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-3a0eef6fe82c4afc: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
