/root/repo/target/debug/deps/equivalence_snort-09aa1386a302921d.d: tests/equivalence_snort.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence_snort-09aa1386a302921d.rmeta: tests/equivalence_snort.rs Cargo.toml

tests/equivalence_snort.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
