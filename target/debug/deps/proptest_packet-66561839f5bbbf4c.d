/root/repo/target/debug/deps/proptest_packet-66561839f5bbbf4c.d: crates/packet/tests/proptest_packet.rs

/root/repo/target/debug/deps/proptest_packet-66561839f5bbbf4c: crates/packet/tests/proptest_packet.rs

crates/packet/tests/proptest_packet.rs:
