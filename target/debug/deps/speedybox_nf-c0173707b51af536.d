/root/repo/target/debug/deps/speedybox_nf-c0173707b51af536.d: crates/nf/src/lib.rs crates/nf/src/dosguard.rs crates/nf/src/gateway.rs crates/nf/src/inspect.rs crates/nf/src/ipfilter.rs crates/nf/src/maglev.rs crates/nf/src/mazunat.rs crates/nf/src/monitor.rs crates/nf/src/nf.rs crates/nf/src/ratelimiter.rs crates/nf/src/regex.rs crates/nf/src/snort.rs crates/nf/src/synthetic.rs crates/nf/src/vpn.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox_nf-c0173707b51af536.rmeta: crates/nf/src/lib.rs crates/nf/src/dosguard.rs crates/nf/src/gateway.rs crates/nf/src/inspect.rs crates/nf/src/ipfilter.rs crates/nf/src/maglev.rs crates/nf/src/mazunat.rs crates/nf/src/monitor.rs crates/nf/src/nf.rs crates/nf/src/ratelimiter.rs crates/nf/src/regex.rs crates/nf/src/snort.rs crates/nf/src/synthetic.rs crates/nf/src/vpn.rs Cargo.toml

crates/nf/src/lib.rs:
crates/nf/src/dosguard.rs:
crates/nf/src/gateway.rs:
crates/nf/src/inspect.rs:
crates/nf/src/ipfilter.rs:
crates/nf/src/maglev.rs:
crates/nf/src/mazunat.rs:
crates/nf/src/monitor.rs:
crates/nf/src/nf.rs:
crates/nf/src/ratelimiter.rs:
crates/nf/src/regex.rs:
crates/nf/src/snort.rs:
crates/nf/src/synthetic.rs:
crates/nf/src/vpn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
