/root/repo/target/debug/deps/fid_collision-d3b14edc23cfe762.d: tests/fid_collision.rs

/root/repo/target/debug/deps/fid_collision-d3b14edc23cfe762: tests/fid_collision.rs

tests/fid_collision.rs:
