/root/repo/target/debug/deps/equivalence_chains-fb82f85e0f4694d3.d: tests/equivalence_chains.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence_chains-fb82f85e0f4694d3.rmeta: tests/equivalence_chains.rs Cargo.toml

tests/equivalence_chains.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
