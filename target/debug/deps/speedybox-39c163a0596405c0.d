/root/repo/target/debug/deps/speedybox-39c163a0596405c0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox-39c163a0596405c0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
