/root/repo/target/debug/deps/speedybox_mat-17960fd5abf47ba5.d: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs

/root/repo/target/debug/deps/libspeedybox_mat-17960fd5abf47ba5.rlib: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs

/root/repo/target/debug/deps/libspeedybox_mat-17960fd5abf47ba5.rmeta: crates/mat/src/lib.rs crates/mat/src/action.rs crates/mat/src/api.rs crates/mat/src/classifier.rs crates/mat/src/consolidate.rs crates/mat/src/error.rs crates/mat/src/event.rs crates/mat/src/global.rs crates/mat/src/local.rs crates/mat/src/ops.rs crates/mat/src/parallel.rs crates/mat/src/state_fn.rs

crates/mat/src/lib.rs:
crates/mat/src/action.rs:
crates/mat/src/api.rs:
crates/mat/src/classifier.rs:
crates/mat/src/consolidate.rs:
crates/mat/src/error.rs:
crates/mat/src/event.rs:
crates/mat/src/global.rs:
crates/mat/src/local.rs:
crates/mat/src/ops.rs:
crates/mat/src/parallel.rs:
crates/mat/src/state_fn.rs:
