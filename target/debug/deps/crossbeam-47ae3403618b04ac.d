/root/repo/target/debug/deps/crossbeam-47ae3403618b04ac.d: vendor/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-47ae3403618b04ac: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
