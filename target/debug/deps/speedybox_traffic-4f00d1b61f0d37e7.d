/root/repo/target/debug/deps/speedybox_traffic-4f00d1b61f0d37e7.d: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

/root/repo/target/debug/deps/speedybox_traffic-4f00d1b61f0d37e7: crates/traffic/src/lib.rs crates/traffic/src/payload.rs crates/traffic/src/replay.rs crates/traffic/src/workload.rs

crates/traffic/src/lib.rs:
crates/traffic/src/payload.rs:
crates/traffic/src/replay.rs:
crates/traffic/src/workload.rs:
