/root/repo/target/debug/deps/speedybox-c9ff0dba4cef4395.d: src/bin/speedybox.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox-c9ff0dba4cef4395.rmeta: src/bin/speedybox.rs Cargo.toml

src/bin/speedybox.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
