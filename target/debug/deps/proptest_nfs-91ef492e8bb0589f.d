/root/repo/target/debug/deps/proptest_nfs-91ef492e8bb0589f.d: crates/nf/tests/proptest_nfs.rs

/root/repo/target/debug/deps/proptest_nfs-91ef492e8bb0589f: crates/nf/tests/proptest_nfs.rs

crates/nf/tests/proptest_nfs.rs:
