/root/repo/target/debug/deps/concurrent_mat-be61d08d814d52ca.d: tests/concurrent_mat.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent_mat-be61d08d814d52ca.rmeta: tests/concurrent_mat.rs Cargo.toml

tests/concurrent_mat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
