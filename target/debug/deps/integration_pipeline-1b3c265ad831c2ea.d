/root/repo/target/debug/deps/integration_pipeline-1b3c265ad831c2ea.d: tests/integration_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_pipeline-1b3c265ad831c2ea.rmeta: tests/integration_pipeline.rs Cargo.toml

tests/integration_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
