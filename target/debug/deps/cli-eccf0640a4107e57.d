/root/repo/target/debug/deps/cli-eccf0640a4107e57.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-eccf0640a4107e57.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_speedybox=placeholder:speedybox
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
