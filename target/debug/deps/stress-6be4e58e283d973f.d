/root/repo/target/debug/deps/stress-6be4e58e283d973f.d: tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-6be4e58e283d973f.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
