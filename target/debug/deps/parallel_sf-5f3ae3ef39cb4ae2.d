/root/repo/target/debug/deps/parallel_sf-5f3ae3ef39cb4ae2.d: crates/bench/benches/parallel_sf.rs

/root/repo/target/debug/deps/parallel_sf-5f3ae3ef39cb4ae2: crates/bench/benches/parallel_sf.rs

crates/bench/benches/parallel_sf.rs:
