/root/repo/target/debug/deps/speedybox-4e0c351219183b90.d: src/bin/speedybox.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox-4e0c351219183b90.rmeta: src/bin/speedybox.rs Cargo.toml

src/bin/speedybox.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
