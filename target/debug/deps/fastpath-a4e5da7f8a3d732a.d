/root/repo/target/debug/deps/fastpath-a4e5da7f8a3d732a.d: crates/bench/benches/fastpath.rs

/root/repo/target/debug/deps/fastpath-a4e5da7f8a3d732a: crates/bench/benches/fastpath.rs

crates/bench/benches/fastpath.rs:
