/root/repo/target/debug/deps/handshake_aware-8a808afa51f006e9.d: tests/handshake_aware.rs

/root/repo/target/debug/deps/handshake_aware-8a808afa51f006e9: tests/handshake_aware.rs

tests/handshake_aware.rs:
