/root/repo/target/debug/deps/vlan_traffic-68b5147059e3e4db.d: tests/vlan_traffic.rs Cargo.toml

/root/repo/target/debug/deps/libvlan_traffic-68b5147059e3e4db.rmeta: tests/vlan_traffic.rs Cargo.toml

tests/vlan_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
