/root/repo/target/debug/deps/speedybox-001f2a4d70f7273c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspeedybox-001f2a4d70f7273c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
