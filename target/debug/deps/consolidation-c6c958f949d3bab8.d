/root/repo/target/debug/deps/consolidation-c6c958f949d3bab8.d: crates/bench/benches/consolidation.rs

/root/repo/target/debug/deps/consolidation-c6c958f949d3bab8: crates/bench/benches/consolidation.rs

crates/bench/benches/consolidation.rs:
