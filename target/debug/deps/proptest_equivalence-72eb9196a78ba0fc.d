/root/repo/target/debug/deps/proptest_equivalence-72eb9196a78ba0fc.d: tests/proptest_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_equivalence-72eb9196a78ba0fc.rmeta: tests/proptest_equivalence.rs Cargo.toml

tests/proptest_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
