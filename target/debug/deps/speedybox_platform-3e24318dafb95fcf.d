/root/repo/target/debug/deps/speedybox_platform-3e24318dafb95fcf.d: crates/platform/src/lib.rs crates/platform/src/bess.rs crates/platform/src/chains.rs crates/platform/src/cycles.rs crates/platform/src/metrics.rs crates/platform/src/onvm.rs crates/platform/src/parallel_exec.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

/root/repo/target/debug/deps/speedybox_platform-3e24318dafb95fcf: crates/platform/src/lib.rs crates/platform/src/bess.rs crates/platform/src/chains.rs crates/platform/src/cycles.rs crates/platform/src/metrics.rs crates/platform/src/onvm.rs crates/platform/src/parallel_exec.rs crates/platform/src/runtime.rs crates/platform/src/threaded.rs

crates/platform/src/lib.rs:
crates/platform/src/bess.rs:
crates/platform/src/chains.rs:
crates/platform/src/cycles.rs:
crates/platform/src/metrics.rs:
crates/platform/src/onvm.rs:
crates/platform/src/parallel_exec.rs:
crates/platform/src/runtime.rs:
crates/platform/src/threaded.rs:
