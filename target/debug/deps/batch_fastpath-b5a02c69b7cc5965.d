/root/repo/target/debug/deps/batch_fastpath-b5a02c69b7cc5965.d: crates/bench/benches/batch_fastpath.rs

/root/repo/target/debug/deps/batch_fastpath-b5a02c69b7cc5965: crates/bench/benches/batch_fastpath.rs

crates/bench/benches/batch_fastpath.rs:
