/root/repo/target/debug/deps/proptest-2742d34449d8e238.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-2742d34449d8e238: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
