/root/repo/target/debug/deps/equivalence_maglev-fe96545a98a1e948.d: tests/equivalence_maglev.rs

/root/repo/target/debug/deps/equivalence_maglev-fe96545a98a1e948: tests/equivalence_maglev.rs

tests/equivalence_maglev.rs:
