/root/repo/target/debug/deps/proptest_equivalence-0421cf7b09135092.d: tests/proptest_equivalence.rs

/root/repo/target/debug/deps/proptest_equivalence-0421cf7b09135092: tests/proptest_equivalence.rs

tests/proptest_equivalence.rs:
