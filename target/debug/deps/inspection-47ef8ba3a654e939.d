/root/repo/target/debug/deps/inspection-47ef8ba3a654e939.d: crates/bench/benches/inspection.rs

/root/repo/target/debug/deps/inspection-47ef8ba3a654e939: crates/bench/benches/inspection.rs

crates/bench/benches/inspection.rs:
