/root/repo/target/debug/deps/fid_collision-8f77156ae5bff5ff.d: tests/fid_collision.rs Cargo.toml

/root/repo/target/debug/deps/libfid_collision-8f77156ae5bff5ff.rmeta: tests/fid_collision.rs Cargo.toml

tests/fid_collision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
