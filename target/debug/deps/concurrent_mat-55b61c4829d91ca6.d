/root/repo/target/debug/deps/concurrent_mat-55b61c4829d91ca6.d: tests/concurrent_mat.rs

/root/repo/target/debug/deps/concurrent_mat-55b61c4829d91ca6: tests/concurrent_mat.rs

tests/concurrent_mat.rs:
