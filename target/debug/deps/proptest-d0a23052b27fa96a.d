/root/repo/target/debug/deps/proptest-d0a23052b27fa96a.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-d0a23052b27fa96a.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
