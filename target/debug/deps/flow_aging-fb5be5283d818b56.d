/root/repo/target/debug/deps/flow_aging-fb5be5283d818b56.d: tests/flow_aging.rs

/root/repo/target/debug/deps/flow_aging-fb5be5283d818b56: tests/flow_aging.rs

tests/flow_aging.rs:
