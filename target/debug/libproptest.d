/root/repo/target/debug/libproptest.rlib: /root/repo/vendor/proptest/src/lib.rs
