//! Offline stand-in for the `bytes` crate.
//!
//! Provides the small slice of the `BytesMut` API this workspace uses,
//! backed by a plain `Vec<u8>`. `Deref`/`DerefMut` to `[u8]` covers
//! indexing, `get`, `copy_within`, and slicing exactly like the real type.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer backed by `Vec<u8>`.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Vec::with_capacity(capacity))
    }

    /// Current capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.0.capacity()
    }

    /// Resizes the buffer, filling new bytes with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.0.resize(new_len, value);
    }

    /// Appends all bytes from `extend`.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.0.extend_from_slice(extend);
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Shortens the buffer to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.0.truncate(len);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self(v.to_vec())
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.0.extend(iter);
    }
}
