//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API slice this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `Throughput`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — as a simple wall-clock
//! timing harness. No statistics, plots, or baselines: each benchmark is
//! warmed up briefly, then timed for a fixed budget, and the mean
//! time-per-iteration is printed. Good enough to compare variants by eye
//! and to smoke-test that bench code keeps compiling and running.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` recreates inputs. Ignored by this harness (each
/// iteration always gets a fresh input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: batch many per allocation in real criterion.
    SmallInput,
    /// Large input: fewer per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("variant", param)`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// `BenchmarkId::from_parameter(param)`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warmup_iters: u64,
    measure_budget: Duration,
    /// Filled in by `iter`/`iter_batched`.
    result_ns_per_iter: f64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            warmup_iters: 3,
            measure_budget: Duration::from_millis(120),
            result_ns_per_iter: f64::NAN,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure_budget {
            black_box(routine());
            iters += 1;
        }
        self.result_ns_per_iter = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_iters {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let budget_start = Instant::now();
        while budget_start.elapsed() < self.measure_budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.result_ns_per_iter = measured.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(group: Option<&str>, label: &str, throughput: Option<Throughput>, ns_per_iter: f64) {
    let name = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (ns_per_iter / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (ns_per_iter / 1e9))
        }
        None => String::new(),
    };
    println!("bench: {name:<48} {ns_per_iter:>14.1} ns/iter{rate}");
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted, ignored by this harness).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, ignored by this harness).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(Some(&self.name), &id.label, self.throughput, b.result_ns_per_iter);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(Some(&self.name), &id.label, self.throughput, b.result_ns_per_iter);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(None, name, None, b.result_ns_per_iter);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
