//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of the `parking_lot` API it uses: [`Mutex`] and
//! [`RwLock`] with non-poisoning guards, implemented over `std::sync`.
//! Semantics match `parking_lot` for every call site in this repository
//! (lock, read, write); fairness and micro-contention behaviour differ,
//! which is irrelevant for correctness.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
