//! A counting global allocator for zero-allocation regression tests.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one test utility it needs from the `allocation-counter`
//! family of crates: a [`GlobalAlloc`] wrapper that forwards every call to
//! the [`System`] allocator while counting allocations, deallocations and
//! allocated bytes in relaxed atomics. Tests install it with
//! `#[global_allocator]`, snapshot the counters around a region, and
//! assert the delta is zero:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: allocmeter::CountingAlloc = allocmeter::CountingAlloc::new();
//!
//! let before = ALLOC.snapshot();
//! hot_path();
//! assert_eq!(ALLOC.snapshot().allocs - before.allocs, 0);
//! ```
//!
//! This crate is *test infrastructure only*: nothing in the data path
//! depends on it, and it is one of the two vendored crates sanctioned to
//! contain `unsafe` (the [`GlobalAlloc`] trait itself is unsafe to
//! implement). Every unsafe block carries a SAFETY comment checked by
//! `scripts/unsafe_gate.sh`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Point-in-time allocator counters, taken with [`CountingAlloc::snapshot`].
///
/// All fields are monotonic; subtract two snapshots to meter a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Number of allocation calls (`alloc`, `alloc_zeroed`, plus every
    /// `realloc`, which may move and therefore allocate).
    pub allocs: u64,
    /// Number of deallocation calls.
    pub deallocs: u64,
    /// Total bytes requested across all allocation calls.
    pub bytes: u64,
}

/// A [`GlobalAlloc`] that forwards to [`System`] and counts traffic.
///
/// The counters are relaxed atomics: exact under single-threaded use (the
/// zero-alloc tests pin the measured region to one thread) and still
/// race-free — merely unordered — under concurrency.
#[derive(Debug)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    deallocs: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    /// A new meter with all counters at zero (const: usable in statics).
    #[must_use]
    pub const fn new() -> Self {
        Self { allocs: AtomicU64::new(0), deallocs: AtomicU64::new(0), bytes: AtomicU64::new(0) }
    }

    /// Reads all counters at once.
    #[must_use]
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Relaxed),
            deallocs: self.deallocs.load(Relaxed),
            bytes: self.bytes.load(Relaxed),
        }
    }

    fn count_alloc(&self, size: usize) {
        self.allocs.fetch_add(1, Relaxed);
        self.bytes.fetch_add(size as u64, Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method forwards verbatim to the System allocator, which
// upholds the GlobalAlloc contract; the added atomic counter updates do
// not allocate, unwind, or touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: signature required by the GlobalAlloc trait; body forwards
    // the caller's contract to System unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count_alloc(layout.size());
        // SAFETY: caller upholds the GlobalAlloc contract for `layout`
        // (non-zero size); we pass it through unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: signature required by the GlobalAlloc trait; body forwards
    // the caller's contract to System unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocs.fetch_add(1, Relaxed);
        // SAFETY: caller guarantees `ptr` was allocated by this allocator
        // with `layout`; we forwarded that allocation to System, so the
        // pair is valid for System.dealloc.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: signature required by the GlobalAlloc trait; body forwards
    // the caller's contract to System unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count_alloc(layout.size());
        // SAFETY: same contract pass-through as `alloc`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: signature required by the GlobalAlloc trait; body forwards
    // the caller's contract to System unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move the block, so it counts as allocator traffic
        // for zero-alloc purposes.
        self.count_alloc(new_size);
        // SAFETY: caller guarantees `ptr`/`layout` came from this
        // allocator and `new_size` is non-zero; forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_move_when_allocating() {
        let meter = CountingAlloc::new();
        // Not installed as the global allocator here; drive it directly.
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: layout is non-zero; the returned block is freed below
        // with the same layout.
        let ptr = unsafe { meter.alloc(layout) };
        assert!(!ptr.is_null());
        let snap = meter.snapshot();
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.bytes, 64);
        // SAFETY: ptr was allocated above by this allocator with layout.
        unsafe { meter.dealloc(ptr, layout) };
        assert_eq!(meter.snapshot().deallocs, 1);
    }

    #[test]
    fn snapshot_deltas_meter_a_region() {
        let meter = CountingAlloc::new();
        let before = meter.snapshot();
        // No traffic through the meter: delta stays zero even though the
        // global (System) allocator is busy with this Vec.
        let v = vec![1u8; 1024];
        assert_eq!(v.len(), 1024);
        let after = meter.snapshot();
        assert_eq!(after.allocs - before.allocs, 0);
    }
}
