//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! a miniature property-testing harness covering the API surface its test
//! suites use: the `proptest!` macro (with `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `prop_oneof!`, `Just`,
//! `any::<T>()`, integer/float range strategies, tuple composition,
//! `.prop_map`, `prop::collection::vec`, `prop::sample::select`,
//! `prop::bool::ANY`, and `&str` regex-shaped string strategies of the
//! `.{a,b}` form.
//!
//! Differences from upstream: no shrinking, no persistence of failing
//! cases (`.proptest-regressions` files are ignored), and a fixed
//! deterministic seed derived from the test name, so failures reproduce
//! exactly across runs.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name (stable across runs).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

/// Marker error returned by `prop_assume!` to skip a case.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseSkip;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values passing `f` (bounded retries, then panics).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Boxes the strategy for heterogeneous composition.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`] / `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Builds a union over non-empty `options`.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.options.len() - 1);
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII keeps downstream parsers exercised without
        // invalid-codepoint plumbing.
        (rng.usize_in(0x20, 0x7E) as u8) as char
    }
}

/// Strategy produced by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u32>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// `&str` patterns act as string strategies. Supports the `.{a,b}` shape
/// used in this workspace (arbitrary printable string of length `a..=b`);
/// any other pattern yields short arbitrary printable strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = rng.usize_in(lo, hi);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// Parses `.{a,b}` into `(a, b)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Sub-strategy namespaces mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Size bounds accepted by [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                Self { lo: *r.start(), hi: *r.end() }
            }
        }

        /// Strategy for vectors of values from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.usize_in(self.size.lo, self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, 0..8)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed set.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.usize_in(0, self.options.len() - 1)].clone()
            }
        }

        /// `prop::sample::select(vec![...])`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over empty set");
            Select { options }
        }

        /// An arbitrary position into a collection whose length is only
        /// known at use time (`prop::sample::Index`).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Maps this index onto a collection of `len` elements.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl super::super::Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniform boolean strategy (`prop::bool::ANY`).
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// The uniform boolean strategy value.
        pub const ANY: BoolAny = BoolAny;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!` for the
/// `fn name(arg in strategy, ...) { body }` form, with an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(unused_mut)]
                    let mut case = move || -> ::core::result::Result<(), $crate::TestCaseSkip> {
                        $body
                        Ok(())
                    };
                    let _ = case();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@run ($cfg) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@run ($crate::ProptestConfig::default()) $($rest)*}
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($s) as $crate::BoxedStrategy<_>),+])
    };
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec() {
        let mut rng = TestRng::deterministic("ranges_and_vec");
        for _ in 0..200 {
            let v = (0u32..16).generate(&mut rng);
            assert!(v < 16);
            let xs = prop::collection::vec(any::<u8>(), 1..5).generate(&mut rng);
            assert!((1..5).contains(&xs.len()));
        }
    }

    #[test]
    fn string_pattern() {
        let mut rng = TestRng::deterministic("string_pattern");
        for _ in 0..100 {
            let s = ".{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
        }
    }

    #[test]
    fn oneof_and_map() {
        let s = prop_oneof![Just(1u8), 2u8..4, Just(9u8)];
        let mut rng = TestRng::deterministic("oneof_and_map");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!([1u8, 2, 3, 9].contains(&v));
        }
        let mapped = (0u8..4).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert!(mapped.generate(&mut rng) % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn macro_form_works(a in 0u32..10, xs in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
