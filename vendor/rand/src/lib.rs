//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the 0.8 API this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool, gen}` — over
//! a SplitMix64 generator. Sequences differ from upstream `StdRng`
//! (ChaCha12), but every consumer in this repository only relies on
//! determinism for a fixed seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_closed(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng() as u128 % span) as $t)
            }
            fn sample_closed(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        let unit = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_closed(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        let unit = (rng() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + unit * (hi - lo)
    }
    fn sample_closed(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
                rng() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        let mut draw = || self.next_u64();
        T::draw(&mut draw)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = Self { state: seed ^ 0x5DEE_CE66_D1CE_4E5B };
            // Warm up so small seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u8..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
