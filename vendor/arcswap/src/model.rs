//! Model-checkable port of the guard-counter RCU cell (`crate::ArcSwap`),
//! line-for-line over `speedybox-check`'s virtual primitives so the
//! checker can exhaustively enumerate interleavings of `load`/`store`/
//! retire and prove — within the explored bound — that no schedule frees a
//! value a reader still holds raw, and none leaks a retired generation.
//!
//! The port must track `src/lib.rs` exactly: same fields, same operation
//! order, same orderings. Divergence here silently verifies the wrong
//! protocol, so any change to the real cell must be mirrored (the written
//! correspondence argument lives in DESIGN.md §14).
//!
//! [`Mutation`] selects a seeded bug for the checker to catch — the
//! evidence that a clean run means something.

use std::marker::PhantomData;
use std::sync::Arc as StdArc;

use speedybox_check::{
    fact, raw_drop, raw_increment_strong_count, ModelArc, ModelAtomicUsize, ModelMutex, Ordering,
    RawId,
};

/// Seeded bugs: each weakens the protocol in a way the checker must
/// detect, proving the oracles cover the hazard the real code guards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Faithful port of the shipped protocol.
    None,
    /// `try_collect` reads the reader counter with `Relaxed` instead of
    /// `SeqCst`: a stale zero admits freeing under a live reader.
    WeakCollectLoad,
    /// `store` retires (and possibly frees) the old value *before*
    /// unpublishing it: a reader can load a pointer to freed memory.
    RetireBeforeSwap,
    /// `store` drops the swapped-out pointer on the floor: the retired
    /// generation leaks.
    SkipRetire,
}

/// Model twin of [`crate::ArcSwap`]. Field-for-field: `ptr` holds the raw
/// allocation handle (the model analogue of `*mut T` from
/// `Arc::into_raw`), `readers` is the guard counter, `retired` the
/// swapped-out backlog.
pub struct ArcSwapModel<T: Send + Sync + 'static> {
    ptr: ModelAtomicUsize,
    readers: ModelAtomicUsize,
    retired: ModelMutex<Vec<RawId>>,
    mutation: Mutation,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Send + Sync + 'static> ArcSwapModel<T> {
    pub fn new(label: &str, value: T, mutation: Mutation) -> Self {
        let initial = ModelArc::new(label, value);
        ArcSwapModel {
            ptr: ModelAtomicUsize::new("cell.ptr", initial.into_raw()),
            readers: ModelAtomicUsize::new("cell.readers", 0),
            retired: ModelMutex::new("cell.retired", Vec::new()),
            mutation,
            _marker: PhantomData,
        }
    }

    /// Mirror of `ArcSwap::load`: guard-counter increment, pointer read,
    /// strong-count mint, guard-counter decrement. The strong-count mint
    /// is the hazard point — on a freed allocation the checker reports
    /// use-after-free exactly where the real code would touch freed memory.
    pub fn load(&self) -> ModelArc<T> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let p = self.ptr.load(Ordering::SeqCst);
        raw_increment_strong_count(p);
        let value = ModelArc::from_raw(p);
        self.readers.fetch_sub(1, Ordering::SeqCst);
        value
    }

    /// Mirror of `ArcSwap::store`: swap, retire the old value, attempt a
    /// drain. The mutations reorder or omit steps.
    pub fn store(&self, value: ModelArc<T>) {
        match self.mutation {
            Mutation::RetireBeforeSwap => {
                // Seeded bug: the old value is retired — and can be freed —
                // while still published.
                let old = self.ptr.load(Ordering::SeqCst);
                {
                    let mut retired = self.retired.lock();
                    retired.push(old);
                    self.try_collect(&mut retired);
                }
                self.ptr.store(value.into_raw(), Ordering::SeqCst);
            }
            Mutation::SkipRetire => {
                // Seeded bug: the swapped-out strong count is never
                // released; the leak oracle must flag it.
                let _old = self.ptr.swap(value.into_raw(), Ordering::SeqCst);
            }
            Mutation::None | Mutation::WeakCollectLoad => {
                let old = self.ptr.swap(value.into_raw(), Ordering::SeqCst);
                let mut retired = self.retired.lock();
                retired.push(old);
                self.try_collect(&mut retired);
            }
        }
    }

    pub fn pending(&self) -> usize {
        self.retired.lock().len()
    }

    pub fn collect(&self) -> usize {
        let mut retired = self.retired.lock();
        let before = retired.len();
        // The explicit quiescent drain always uses the full-strength
        // check; `WeakCollectLoad` seeds the bug in the hot path only
        // (the drain attempt inside `store`).
        self.try_collect_with(&mut retired, Ordering::SeqCst);
        before - retired.len()
    }

    /// Mirror of `ArcSwap::try_collect`: free the backlog iff the reader
    /// counter reads zero (the SeqCst total-order argument; see lib.rs).
    fn try_collect(&self, retired: &mut Vec<RawId>) {
        let ord = match self.mutation {
            Mutation::WeakCollectLoad => Ordering::Relaxed,
            _ => Ordering::SeqCst,
        };
        self.try_collect_with(retired, ord);
    }

    fn try_collect_with(&self, retired: &mut Vec<RawId>, ord: Ordering) {
        if self.readers.load(ord) == 0 {
            for id in retired.drain(..) {
                raw_drop(id);
            }
        } else if !retired.is_empty() {
            // Reachability probe for the drain-deferral tests.
            fact("collect deferred: reader in flight");
        }
    }
}

impl<T: Send + Sync + 'static> Drop for ArcSwapModel<T> {
    fn drop(&mut self) {
        // Mirror of `ArcSwap::drop`: release the current value and the
        // retired backlog. Exclusive access at this point.
        let current = self.ptr.load(Ordering::SeqCst);
        raw_drop(current);
        let mut retired = self.retired.lock();
        for id in retired.drain(..) {
            raw_drop(id);
        }
    }
}

/// Checker scenarios over the model cell, shared by the `cargo test`
/// exhaustive tier (tests/model_rcu.rs) and the `speedybox-check` binary.
pub mod scenarios {
    use super::*;

    /// One reader racing one writer through a single republication, then a
    /// quiescent drain. Invariants checked in every schedule: the reader
    /// only ever observes generation 0 or 1; the post-join drain leaves no
    /// retired backlog; no use-after-free; no leak (execution-end oracle).
    pub fn rcu_load_store(mutation: Mutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let cell = StdArc::new(ArcSwapModel::new("gen0", 0u64, mutation));
            let c = cell.clone();
            let reader = speedybox_check::spawn(move || {
                let v = c.load();
                let x = *v.value();
                assert!(x == 0 || x == 1, "reader saw impossible generation {x}");
            });
            let c = cell.clone();
            let writer = speedybox_check::spawn(move || {
                c.store(ModelArc::new("gen1", 1u64));
            });
            reader.join();
            writer.join();
            // Quiescent: the drain must complete now even if the store
            // deferred it while the reader was in flight.
            cell.collect();
            assert_eq!(cell.pending(), 0, "retired generation not drained");
        }
    }

    /// Two readers against one writer: the guard counter must not confuse
    /// overlapping reader windows (decrement of one reader must not free
    /// under the other).
    pub fn rcu_two_readers(mutation: Mutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let cell = StdArc::new(ArcSwapModel::new("gen0", 0u64, mutation));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = cell.clone();
                    speedybox_check::spawn(move || {
                        let v = c.load();
                        let x = *v.value();
                        assert!(x == 0 || x == 1, "reader saw impossible generation {x}");
                    })
                })
                .collect();
            let c = cell.clone();
            let writer = speedybox_check::spawn(move || {
                c.store(ModelArc::new("gen1", 1u64));
            });
            for h in handles {
                h.join();
            }
            writer.join();
            cell.collect();
            assert_eq!(cell.pending(), 0, "retired generation not drained");
        }
    }

    /// Generation-drain edge (ISSUE 8 satellite): a reader pinned between
    /// its guard increment and decrement while the writer republishes must
    /// defer the drain (observable via the `collect deferred` fact in at
    /// least one schedule), and the post-release drain must always finish.
    /// The main-thread asserts after joins make the second half an
    /// every-schedule invariant.
    pub fn rcu_drain_deferred(mutation: Mutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let cell = StdArc::new(ArcSwapModel::new("gen0", 0u64, mutation));
            let c = cell.clone();
            let reader = speedybox_check::spawn(move || {
                // Hold the loaded generation across a second touch so the
                // pin window is wide enough to overlap the store.
                let v = c.load();
                let first = *v.value();
                let again = *v.value();
                assert_eq!(first, again, "pinned generation changed under the reader");
            });
            let c = cell.clone();
            let writer = speedybox_check::spawn(move || {
                c.store(ModelArc::new("gen1", 1u64));
                if c.pending() > 0 {
                    speedybox_check::fact("retire deferred past store");
                }
            });
            reader.join();
            writer.join();
            let drained = cell.collect();
            if drained > 0 {
                speedybox_check::fact("deferred generation drained after release");
            }
            assert_eq!(cell.pending(), 0, "drain did not complete at quiescence");
        }
    }
}
