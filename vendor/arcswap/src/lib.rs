//! Offline stand-in for the `arc-swap` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one primitive it needs from `arc-swap`: an atomic cell
//! holding an `Arc<T>` whose readers are **wait-free** — [`ArcSwap::load`]
//! is a short, branch-free sequence of atomic operations with no loops
//! and no locks, so a reader can never be blocked (or even delayed
//! unboundedly) by a writer republishing the cell.
//!
//! # Reclamation scheme
//!
//! The real `arc-swap` uses hazard-pointer-like debt slots. This stand-in
//! uses a simpler *guard-counter* scheme that preserves the wait-free
//! reader guarantee at the cost of slightly lazier reclamation:
//!
//! * `load` increments a shared reader counter, reads the current pointer,
//!   bumps the Arc's strong count to take ownership, then decrements the
//!   counter. Four straight-line atomics — wait-free.
//! * `store` swaps the pointer and pushes the old value onto a *retired*
//!   list. Retired values are freed only when the writer observes the
//!   reader counter at zero **after** the swap: at that point (SeqCst
//!   total order) every in-flight reader either finished or will read the
//!   *new* pointer, so no raw reference to a retired value can exist.
//! * Under continuous reader pressure the retired list may briefly grow;
//!   every later `store` (or an explicit [`ArcSwap::collect`]) retries the
//!   drain, so the backlog is bounded by writer frequency, never by
//!   reader count.
//!
//! Writers serialize on a small internal mutex for the retired list only;
//! the pointer swap itself is a single atomic and readers never touch the
//! mutex.

#[cfg(feature = "model")]
pub mod model;

use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex, PoisonError};

/// An atomic cell holding an `Arc<T>` with wait-free loads.
pub struct ArcSwap<T> {
    /// Current value, as a raw pointer owning one strong count.
    ptr: AtomicPtr<T>,
    /// Number of readers currently between `ptr.load` and their
    /// strong-count increment. Zero means no raw pointer is in flight.
    readers: AtomicUsize,
    /// Swapped-out values awaiting a reader-free window to be released.
    retired: Mutex<Vec<*mut T>>,
}

// SAFETY: sending the cell moves ownership of its `Arc<T>` values (current
// pointer and retired list) to another thread, which is sound exactly when
// `Arc<T>` itself is sendable, i.e. `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
// SAFETY: shared access hands out `Arc<T>` clones and mutates only the
// atomics and the mutex-guarded retired list; the cell is as thread-safe
// as `Arc<T>` itself, which requires `T: Send + Sync`.
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            readers: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Returns a clone of the current value. Wait-free: four atomic
    /// operations, no loops, no locks.
    pub fn load(&self) -> Arc<T> {
        self.readers.fetch_add(1, SeqCst);
        let p = self.ptr.load(SeqCst);
        // SAFETY: `p` was produced by `Arc::into_raw` and is kept alive:
        // it is either the current value (owned by the cell) or, if a
        // writer swapped it out concurrently, it sits on the retired list
        // and cannot be freed while `readers > 0` (see `try_collect`).
        let value = unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        };
        self.readers.fetch_sub(1, SeqCst);
        value
    }

    /// Publishes `value` as the new current value. The previous value is
    /// retired and freed once no reader can still hold a raw reference.
    pub fn store(&self, value: Arc<T>) {
        let old = self.ptr.swap(Arc::into_raw(value).cast_mut(), SeqCst);
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        retired.push(old);
        Self::try_collect(&self.readers, &mut retired);
    }

    /// Number of retired values not yet reclaimed.
    pub fn pending(&self) -> usize {
        self.retired.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Attempts to reclaim retired values; returns how many were freed.
    /// Succeeds whenever no load is mid-flight at the moment of the check.
    pub fn collect(&self) -> usize {
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        let before = retired.len();
        Self::try_collect(&self.readers, &mut retired);
        before - retired.len()
    }

    /// Frees the retired backlog iff the reader counter reads zero.
    ///
    /// Correctness: this load happens after the `ptr.swap` that retired
    /// these values (program order within `store`, SeqCst total order
    /// across threads). A reader that had already incremented `readers`
    /// before our load would still be visible as non-zero; a reader that
    /// increments after our load performs its `ptr.load` after our swap
    /// and therefore sees the new pointer, never a retired one.
    fn try_collect(readers: &AtomicUsize, retired: &mut Vec<*mut T>) {
        if readers.load(SeqCst) == 0 {
            for p in retired.drain(..) {
                // SAFETY: `p` came from `Arc::into_raw` in `new`/`store`
                // and, per the argument above, no raw use is in flight.
                drop(unsafe { Arc::from_raw(p) });
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcSwap").field("value", &self.load()).finish()
    }
}

impl<T: Default> Default for ArcSwap<T> {
    fn default() -> Self {
        Self::new(Arc::new(T::default()))
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // Exclusive access: no readers or writers can exist any more.
        let current = *self.ptr.get_mut();
        // SAFETY: the cell owns one strong count on the current value.
        drop(unsafe { Arc::from_raw(current) });
        let retired = self.retired.get_mut().unwrap_or_else(PoisonError::into_inner);
        for p in retired.drain(..) {
            // SAFETY: retired values each own one strong count.
            drop(unsafe { Arc::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn load_returns_stored_value() {
        let cell = ArcSwap::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn drop_frees_current_and_retired() {
        let probe = Arc::new(17u64);
        let cell = ArcSwap::new(Arc::clone(&probe));
        cell.store(Arc::new(18));
        cell.store(Arc::new(19));
        drop(cell);
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn retired_backlog_is_reclaimed_once_quiet() {
        let cell = ArcSwap::new(Arc::new(0u64));
        for i in 1..=64 {
            cell.store(Arc::new(i));
        }
        // No concurrent readers, so every store collects eagerly.
        assert_eq!(cell.pending(), 0);
        assert_eq!(cell.collect(), 0);
    }

    #[test]
    fn concurrent_loads_during_stores_stay_consistent() {
        let cell = Arc::new(ArcSwap::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut loads = 0u64;
                    // Load before checking `stop`, so even a reader first
                    // scheduled after the writer finished verifies once.
                    loop {
                        let v = cell.load();
                        // Both halves published together: a torn value
                        // would mean a reader saw a half-built state.
                        assert_eq!(v.0, v.1);
                        loads += 1;
                        if stop.load(SeqCst) {
                            break;
                        }
                    }
                    loads
                })
            })
            .collect();
        for i in 1..=10_000u64 {
            cell.store(Arc::new((i, i)));
        }
        stop.store(true, SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
        // Quiescent now: a final collect must fully drain the backlog.
        cell.collect();
        assert_eq!(cell.pending(), 0);
    }
}
