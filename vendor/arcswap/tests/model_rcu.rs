//! Exhaustive model-check tier for the RCU cell (runs under plain
//! `cargo test`; CI's `model-check` job runs exactly this).
//!
//! Clean runs prove — over every interleaving within the preemption
//! bound — no use-after-free, no double-free, no generation leak, and
//! drain completion at quiescence. The mutation twins prove the checker
//! would have caught each class of bug, and that every reported schedule
//! replays deterministically to the same violation.
#![cfg(feature = "model")]

use arcswap::model::{scenarios, Mutation};
use speedybox_check::{BugKind, Checker, Config};

const BOUND: usize = 3;

fn exhaustive(name: &str, mutation: Mutation) -> speedybox_check::Outcome {
    Checker::new(Config::exhaustive(BOUND)).check(name, scenarios::rcu_load_store(mutation))
}

#[test]
fn rcu_load_store_is_clean() {
    let out = exhaustive("rcu-load-store", Mutation::None);
    out.assert_clean();
    assert!(out.executions > 10, "suspiciously small exploration");
}

#[test]
fn rcu_two_readers_is_clean() {
    // One republication under two overlapping readers; bound kept at 2 to
    // hold the exhaustive tier under the CI budget.
    let out = Checker::new(Config::exhaustive(2))
        .check("rcu-two-readers", scenarios::rcu_two_readers(Mutation::None));
    out.assert_clean();
}

#[test]
fn rcu_drain_deferred_edges() {
    let out = Checker::new(Config::exhaustive(BOUND))
        .check("rcu-drain-deferred", scenarios::rcu_drain_deferred(Mutation::None));
    out.assert_clean();
    // Reachability: some schedule pinned the reader across the store (the
    // drain had to defer), and the post-release drain then completed.
    out.assert_fact("collect deferred: reader in flight");
    out.assert_fact("retire deferred past store");
    out.assert_fact("deferred generation drained after release");
}

/// Replay helper: a reported schedule must reproduce the same bug kind.
fn assert_replays(bug: &speedybox_check::BugReport, mutation: Mutation) {
    let replayed =
        Checker::new(Config::replay(bug.schedule.parse().expect("unparseable schedule")))
            .check("replay", scenarios::rcu_load_store(mutation));
    assert!(
        replayed.bugs.iter().any(|b| b.kind == bug.kind),
        "schedule `{}` did not replay to a {} bug",
        bug.schedule,
        bug.kind
    );
}

#[test]
fn mutation_weak_collect_load_is_caught() {
    let out = exhaustive("rcu-weak-collect-load", Mutation::WeakCollectLoad);
    let bug = out.expect_bug(BugKind::UseAfterFree).clone();
    assert!(!bug.schedule.is_empty() && !bug.trace.is_empty());
    assert_replays(&bug, Mutation::WeakCollectLoad);
}

#[test]
fn mutation_retire_before_swap_is_caught() {
    let out = exhaustive("rcu-retire-before-swap", Mutation::RetireBeforeSwap);
    let bug = out.expect_bug(BugKind::UseAfterFree).clone();
    assert_replays(&bug, Mutation::RetireBeforeSwap);
}

#[test]
fn mutation_skip_retire_is_caught() {
    let out = exhaustive("rcu-skip-retire", Mutation::SkipRetire);
    let bug = out.expect_bug(BugKind::Leak).clone();
    assert_replays(&bug, Mutation::SkipRetire);
}
