//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{bounded, Sender, Receiver}` is used by this
//! workspace; it maps directly onto `std::sync::mpsc::sync_channel`, which
//! has the same bounded-blocking semantics for the single-consumer rings
//! the threaded runtime builds.

/// Multi-producer, single-consumer bounded channels.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel. Cloneable.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued (or the channel disconnects).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives (or all senders disconnect).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}
