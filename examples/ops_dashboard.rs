//! An operator's view of a running SpeedyBox chain: workload composition,
//! per-packet latency distribution, and the live Global MAT.
//!
//! Run with: `cargo run --example ops_dashboard`

use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::chain2;
use speedybox::stats::Histogram;
use speedybox::traffic::{ReplaySchedule, Workload, WorkloadConfig, WorkloadStats};

fn main() {
    // An IMIX workload with a UDP component (UDP flows never FIN — watch
    // the idle-flow aging reclaim them at the end).
    let workload = Workload::generate(&WorkloadConfig {
        flows: 150,
        median_packets: 6.0,
        imix: true,
        udp_fraction: 0.2,
        suspicious_fraction: 0.15,
        seed: 77,
        ..WorkloadConfig::default()
    });

    println!("=== workload ===");
    print!("{}", WorkloadStats::of(&workload));
    let schedule = ReplaySchedule::new(&workload, 1.0);
    println!(
        "replay: {:.2} ms, offered load {:.0} kpps\n",
        schedule.duration_ns() as f64 / 1e6,
        schedule.offered_pps() / 1e3
    );

    let (nfs, handles) = chain2();
    let mut chain = BessChain::speedybox(nfs);
    let mut latency = Histogram::new();
    for sched in schedule.iter() {
        let out = chain.process(sched.packet.clone());
        latency.record(out.latency_cycles);
    }

    println!("=== per-packet latency (model cycles, log2 buckets) ===");
    print!("{}", latency.render());
    println!(
        "mean {:.0} cycles, p50 ≈ {}, p99 ≈ {}, max {}\n",
        latency.mean(),
        latency.quantile(0.5),
        latency.quantile(0.99),
        latency.max()
    );

    let sbox = chain.sbox().expect("speedybox enabled");
    println!("=== fast path ===");
    println!(
        "{} rules live before aging ({} flows tracked); IDS fired {} times",
        sbox.global.len(),
        sbox.classifier.len(),
        handles.snort.log().len()
    );
    // TCP flows FIN'd themselves away; reclaim the idle UDP leftovers.
    let reclaimed = sbox.expire_idle_flows(0);
    println!("idle aging reclaimed {reclaimed} UDP flows");
    print!("{}", sbox.global.dump());

    assert!(handles.monitor.flow_count() == 0 || reclaimed > 0);
    println!("\ndashboard complete ✓");
}
