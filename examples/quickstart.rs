//! Quickstart: build a service chain, enable SpeedyBox, and watch the
//! consolidated fast path cut per-packet cost.
//!
//! Run with: `cargo run --example quickstart`

use speedybox::packet::PacketBuilder;
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::ipfilter_chain;

fn main() {
    // A chain of three IPFilter firewalls, each linearly scanning a 30-rule
    // ACL — the paper's Fig 4 workload.
    let packets: Vec<_> = (0..1000)
        .map(|i| {
            PacketBuilder::tcp()
                .src("10.0.0.1:4000".parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .payload(format!("packet {i}").as_bytes())
                .pad_to(64)
                .build()
        })
        .collect();

    // Original chain: every packet traverses every NF.
    let mut original = BessChain::original(ipfilter_chain(3, 30));
    let orig = original.run(packets.clone());

    // SpeedyBox: the first packet of the flow records each NF's behaviour;
    // the other 999 take the consolidated fast path.
    let mut speedy = BessChain::speedybox(ipfilter_chain(3, 30));
    let fast = speedy.run(packets);

    println!("chain: IPFilter x3 (30 ACL rules each), 1000 packets, 1 flow\n");
    println!(
        "original : {:>8.0} cycles/packet   ({} baseline packets)",
        orig.mean_work_cycles(),
        orig.path_counts[0]
    );
    println!(
        "speedybox: {:>8.0} cycles/packet   ({} initial + {} fast-path packets)",
        fast.mean_work_cycles(),
        fast.path_counts[1],
        fast.path_counts[2]
    );
    let saving = 1.0 - fast.mean_work_cycles() / orig.mean_work_cycles();
    println!("saving   : {:.1}%", saving * 100.0);

    assert_eq!(orig.delivered, fast.delivered);
    for (a, b) in orig.outputs.iter().zip(&fast.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes(), "outputs must be byte-identical");
    }
    println!("\noutputs verified byte-identical with and without SpeedyBox ✓");
}
