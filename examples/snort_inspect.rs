//! Snort-lite on the fast path: payload inspection keeps running for
//! subsequent packets (as a recorded payload-READ state function) and the
//! alert/log output is identical with and without SpeedyBox — the paper's
//! §VII-C1 equivalence test as a runnable walkthrough.
//!
//! Run with: `cargo run --example snort_inspect`

use speedybox::nf::snort::SnortLite;
use speedybox::nf::Nf;
use speedybox::packet::PacketBuilder;
use speedybox::platform::bess::BessChain;

const RULES: &str = r#"
pass tcp any any -> any any (content:"healthcheck";)
alert tcp any any -> any 80 (msg:"evil GET"; content:"evil";)
log tcp any any -> any any (msg:"probe seen"; content:"probe";)
"#;

fn run(speedybox: bool) -> Vec<(String, String)> {
    let ids = SnortLite::from_rules_text(RULES).expect("rules parse");
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(ids.clone())];
    let mut chain = if speedybox { BessChain::speedybox(nfs) } else { BessChain::original(nfs) };

    // Three flows exercising the three rule classes (Pass/Alert/Log).
    let flows: [(&str, &[u8]); 3] = [
        ("10.0.0.1:1000", b"healthcheck ok but also evil"), // pass wins
        ("10.0.0.1:2000", b"GET /evil HTTP/1.1"),           // alert
        ("10.0.0.1:3000", b"routine probe traffic"),        // log
    ];
    for (src, payload) in flows {
        for i in 0..4 {
            let p = PacketBuilder::tcp()
                .src(src.parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .seq(i)
                .payload(payload)
                .build();
            chain.process(p);
        }
    }
    ids.log().into_iter().map(|e| (e.action.to_string(), e.msg)).collect()
}

fn main() {
    let original = run(false);
    let speedy = run(true);

    println!("IDS output, original chain ({} entries):", original.len());
    for (action, msg) in &original {
        println!("  [{action}] {msg}");
    }
    println!("\nIDS output, SpeedyBox fast path ({} entries):", speedy.len());
    for (action, msg) in &speedy {
        println!("  [{action}] {msg}");
    }

    assert_eq!(original, speedy, "logs must be identical (paper §VII-C1)");
    println!("\nlogs identical across original and consolidated paths ✓");
    println!("(pass-rule flow produced no output; alert flow alerted on every packet;");
    println!(" log flow logged on every packet — including fast-path packets)");
}
