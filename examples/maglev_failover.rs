//! The Event Table in action: a Maglev backend fails mid-flow and the
//! consolidated fast path re-routes the flow's subsequent packets — the
//! paper's §VII-C2 equivalence scenario ("change the destination IP from
//! ip1 to ip2, from the sixth packet").
//!
//! Run with: `cargo run --example maglev_failover`

use speedybox::nf::maglev::Maglev;
use speedybox::nf::Nf;
use speedybox::packet::{HeaderField, PacketBuilder};
use speedybox::platform::bess::BessChain;

fn main() {
    let maglev = Maglev::new(
        (0..4)
            .map(|i| (format!("backend-{i}"), format!("10.1.0.{}:8080", i + 1).parse().unwrap()))
            .collect::<Vec<(String, _)>>(),
        251,
    );
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(maglev.clone())];
    let mut chain = BessChain::speedybox(nfs);

    let pkt = |i: u32| {
        PacketBuilder::tcp()
            .src("10.0.0.1:5000".parse().unwrap())
            .dst("10.99.99.99:80".parse().unwrap()) // the VIP
            .seq(i)
            .payload(format!("segment {i}").as_bytes())
            .build()
    };

    println!("flow of 10 packets through Maglev (4 backends); backend fails after packet 5\n");
    let mut first_backend = None;
    for i in 1..=10u32 {
        if i == 6 {
            // Kill the backend serving this flow right before packet 6.
            let fid = pkt(0).five_tuple().unwrap().fid();
            let addr = maglev.assigned_backend(fid).expect("flow tracked");
            let name = format!("backend-{}", addr.ip().octets()[3] - 1);
            maglev.fail_backend(&name);
            println!("  !! {name} ({addr}) fails");
        }
        let out = chain.process(pkt(i));
        let delivered = out.packet.expect("packet survives");
        let dst = delivered.get_field(HeaderField::DstIp).unwrap().as_ipv4();
        let path = match out.path {
            speedybox::platform::PathKind::Initial => "slow path",
            speedybox::platform::PathKind::Subsequent => "fast path",
            speedybox::platform::PathKind::Baseline => "baseline",
        };
        println!("  pkt{i:<2} -> {dst}  ({path})");
        if i <= 5 {
            let fb = *first_backend.get_or_insert(dst);
            assert_eq!(dst, fb, "packets 1-5 stick to the original backend");
        } else {
            assert_ne!(Some(dst), first_backend, "packets 6-10 must go to the re-routed backend");
        }
    }
    println!("\nevent fired exactly at packet 6; flow re-routed without leaving the fast path ✓");
}
