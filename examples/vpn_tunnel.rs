//! Encap/decap consolidation: a chain that tunnels packets into an IPsec
//! AH on ingress and strips it on egress (paper §IV-A1's VPN example).
//! The consolidated fast path recognizes that the encap and decap
//! annihilate — subsequent packets skip the header surgery entirely.
//!
//! Run with: `cargo run --example vpn_tunnel`

use speedybox::nf::monitor::Monitor;
use speedybox::nf::vpn::VpnGateway;
use speedybox::nf::Nf;
use speedybox::packet::PacketBuilder;
use speedybox::platform::bess::BessChain;

fn main() {
    // Chain: VPN ingress -> monitored core -> VPN egress. On the original
    // path every packet is encapsulated, counted, and decapsulated; the
    // consolidated rule reduces to "count" alone.
    let monitor = Monitor::new();
    let nfs: Vec<Box<dyn Nf>> = vec![
        Box::new(VpnGateway::encap(0x1001)),
        Box::new(monitor.clone()),
        Box::new(VpnGateway::decap(0x1001)),
    ];
    let mut speedy = BessChain::speedybox(nfs);

    let packets: Vec<_> = (0..500)
        .map(|i| {
            PacketBuilder::tcp()
                .src("10.0.0.1:7000".parse().unwrap())
                .dst("10.8.0.1:443".parse().unwrap())
                .seq(i)
                .payload(b"inner traffic")
                .build()
        })
        .collect();

    let original_stats = {
        let mon = Monitor::new();
        let nfs: Vec<Box<dyn Nf>> = vec![
            Box::new(VpnGateway::encap(0x1001)),
            Box::new(mon),
            Box::new(VpnGateway::decap(0x1001)),
        ];
        BessChain::original(nfs).run(packets.clone())
    };
    let speedy_stats = speedy.run(packets);

    println!("chain: VPN-encap -> Monitor -> VPN-decap, 500 packets, 1 flow\n");
    println!(
        "original : {:>6.0} cycles/packet ({} encap/decap ops performed)",
        original_stats.mean_work_cycles(),
        original_stats.ops.encaps
    );
    println!(
        "speedybox: {:>6.0} cycles/packet ({} encap/decap ops performed)",
        speedy_stats.mean_work_cycles(),
        speedy_stats.ops.encaps
    );

    // The consolidated rule performed encap/decap only for the single
    // initial packet; 499 fast-path packets did none at all.
    assert_eq!(speedy_stats.ops.encaps, 2, "only the initial packet tunnels");
    assert_eq!(original_stats.ops.encaps, 1000, "original tunnels every packet");

    // And the outputs are still byte-identical.
    for (a, b) in original_stats.outputs.iter().zip(&speedy_stats.outputs) {
        assert_eq!(a.as_bytes(), b.as_bytes());
    }
    // The monitor still counted every packet (its state function kept
    // running on the fast path).
    let fid = speedy_stats.outputs[0].five_tuple().unwrap().fid();
    println!(
        "\nmonitor counted {} packets on the consolidated path ✓",
        monitor.counters(fid).map(|c| c.packets).unwrap_or(0)
    );
    println!("encap+decap annihilated: the fast path does zero header surgery ✓");
    println!(
        "saving: {:.1}%",
        (1.0 - speedy_stats.mean_work_cycles() / original_stats.mean_work_cycles()) * 100.0
    );
}
