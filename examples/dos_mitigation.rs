//! The paper's Fig 3 workflow end to end: a DoS-prevention NF counts TCP
//! SYNs per flow through a recorded state function; when a flow crosses
//! the threshold, its registered event fires and the Event Table rewrites
//! the flow's consolidated rule from `modify` to `drop` — all without the
//! packet ever leaving the fast path.
//!
//! Run with: `cargo run --example dos_mitigation`

use speedybox::nf::dosguard::DosGuard;
use speedybox::nf::mazunat::MazuNat;
use speedybox::nf::Nf;
use speedybox::packet::{PacketBuilder, TcpFlags};
use speedybox::platform::bess::BessChain;
use speedybox::platform::PathKind;

fn main() {
    // Chain: MazuNAT (modify action, as in Fig 3's global MAT) followed by
    // the DoS guard (threshold: 5 SYNs per flow).
    let guard = DosGuard::new(5);
    let nat = MazuNat::new("198.51.100.1".parse().unwrap(), (40000, 60000));
    let nfs: Vec<Box<dyn Nf>> = vec![Box::new(nat), Box::new(guard.clone())];
    let mut chain = BessChain::speedybox(nfs);

    let syn_flood = |i: u32| {
        PacketBuilder::tcp()
            .src("203.0.113.66:6666".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(TcpFlags::SYN)
            .seq(i)
            .payload(b"syn flood")
            .build()
    };
    let legit = |i: u32| {
        PacketBuilder::tcp()
            .src("10.0.0.9:5000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(TcpFlags::ACK)
            .seq(i)
            .payload(b"legit data")
            .build()
    };

    println!("DoS guard: drop a flow after 5 SYNs (paper Fig 3)\n");
    let mut flood_fid = None;
    for i in 1..=10u32 {
        let out = chain.process(syn_flood(i));
        let verdict = if out.survived() { "forwarded" } else { "DROPPED" };
        let path = match out.path {
            PathKind::Initial => "slow path",
            PathKind::Subsequent => "fast path",
            PathKind::Baseline => "baseline",
        };
        if flood_fid.is_none() {
            flood_fid = syn_flood(i).five_tuple().ok().map(|t| t.fid());
        }
        println!(
            "  attacker SYN {i:>2}: {verdict:<9} ({path}, SYN count = {})",
            guard.syn_count(flood_fid.unwrap())
        );
        // Legitimate traffic flows uninterrupted alongside.
        let ok = chain.process(legit(i));
        assert!(ok.survived(), "legitimate flow must never be collateral damage");
    }

    let fid = flood_fid.unwrap();
    println!("\nfinal SYN count for the attacking flow: {}", guard.syn_count(fid));
    assert!(guard.is_blocked(fid));
    // Counting stopped once the event flipped the rule to drop: packets
    // 7-10 were freed at the head of the chain without touching the NF.
    assert_eq!(guard.syn_count(fid), 6);
    println!("events rewrote the rule to `drop` after the 6th SYN;");
    println!("subsequent flood packets were freed at the classifier — the NAT and the");
    println!("guard never saw them (early drop on the consolidated fast path) ✓");
}
