//! The paper's real-world Chain 1 (MazuNAT → Maglev → Monitor → IPFilter)
//! on a synthetic datacenter workload, comparing flow processing time with
//! and without SpeedyBox — the §VII-B3 experiment at example scale.
//!
//! Run with: `cargo run --example enterprise_chain`

use std::collections::HashMap;

use speedybox::packet::Fid;
use speedybox::platform::bess::BessChain;
use speedybox::platform::chains::chain1;
use speedybox::stats::Summary;
use speedybox::traffic::{Workload, WorkloadConfig};

fn flow_times_us(chain: &mut BessChain, workload: &Workload) -> Vec<f64> {
    // Flow processing time = sum of per-packet latencies of the flow
    // (paper §VII-B3).
    let mut per_flow: HashMap<Fid, u64> = HashMap::new();
    for (_, pkt) in &workload.arrivals {
        let fid = pkt.five_tuple().unwrap().fid();
        let outcome = chain.process(pkt.clone());
        *per_flow.entry(fid).or_insert(0) += outcome.latency_cycles;
    }
    let model = *chain.model();
    per_flow.values().map(|&c| model.micros(c)).collect()
}

fn main() {
    let config = WorkloadConfig {
        flows: 300,
        median_packets: 8.0,
        payload_len: 200,
        ..WorkloadConfig::default()
    };
    let workload = Workload::generate(&config);
    println!(
        "workload: {} flows, {} packets (log-normal sizes, {}% suspicious)\n",
        config.flows,
        workload.len(),
        {
            #[allow(clippy::cast_possible_truncation)] // fraction in [0, 1]
            let pct = (config.suspicious_fraction * 100.0) as u32;
            pct
        }
    );

    let (nfs, _handles) = chain1(8);
    let mut original = BessChain::original(nfs);
    let orig = Summary::new(flow_times_us(&mut original, &workload));

    let (nfs, handles) = chain1(8);
    let mut speedy = BessChain::speedybox(nfs);
    let fast = Summary::new(flow_times_us(&mut speedy, &workload));

    println!("flow processing time (us), chain: MazuNAT -> Maglev -> Monitor -> IPFilter");
    println!("              p50        p90        p99       mean");
    println!(
        "original   {:>8.1}   {:>8.1}   {:>8.1}   {:>8.1}",
        orig.median(),
        orig.quantile(0.9),
        orig.p99(),
        orig.mean()
    );
    println!(
        "speedybox  {:>8.1}   {:>8.1}   {:>8.1}   {:>8.1}",
        fast.median(),
        fast.quantile(0.9),
        fast.p99(),
        fast.mean()
    );
    println!(
        "p50 reduction: {:.1}%  (paper Fig 9(a): -39.6% on BESS)",
        (1.0 - fast.median() / orig.median()) * 100.0
    );

    println!(
        "\nNAT mappings live: {}, Maglev connections: {}, monitored flows: {}",
        handles.nat.mapping_count(),
        handles.maglev.connection_count(),
        handles.monitor.flow_count()
    );
    println!("(all zero: every flow closed with FIN and was garbage-collected)");
}
