#!/usr/bin/env bash
# Unsafe-code gate (DESIGN.md §14.5).
#
# Three invariants, checked in order:
#
#  1. Every first-party crate root carries `#![forbid(unsafe_code)]`, so
#     a new unsafe block cannot compile even if this script is skipped.
#  2. No `unsafe` keyword appears anywhere in first-party sources
#     (src/, crates/, examples/, tests/) — belt and braces for files
#     outside a crate root's reach (build scripts, doc examples).
#  3. The sanctioned exceptions — vendor/arcswap (lock-free cell) and
#     vendor/allocmeter (GlobalAlloc is an unsafe trait) — must justify
#     every `unsafe` with a `// SAFETY:` comment in the contiguous
#     comment block directly above it (same-line trailing comments count
#     too). Every other vendored crate must stay unsafe-free so a stub
#     growing real unsafe code shows up in review.
#
# Exit status: 0 = clean, 1 = violation (each printed on stderr).

set -u
cd "$(dirname "$0")/.."

fail=0

# --- 1. forbid attribute on every first-party crate root -------------------
for lib in src/lib.rs crates/*/src/lib.rs; do
    if ! grep -q '#!\[forbid(unsafe_code)\]' "$lib"; then
        echo "error: $lib is missing #![forbid(unsafe_code)]" >&2
        fail=1
    fi
done

# --- 2. no unsafe keyword in first-party sources ---------------------------
# Matches the keyword in the positions Rust allows it (fn/impl/trait/block),
# so identifiers or prose containing "unsafe" do not trip the gate.
if grep -rEn 'unsafe +(fn|impl|trait)|unsafe *\{' \
        --include='*.rs' src/ crates/ examples/ tests/ 2>/dev/null; then
    echo "error: unsafe code found in first-party sources (see above)" >&2
    fail=1
fi

# --- 3. vendored crates: sanctioned ones annotated, the rest unsafe-free ---
for dir in vendor/*/; do
    crate=$(basename "$dir")
    if [ "$crate" = "arcswap" ] || [ "$crate" = "allocmeter" ]; then
        continue
    fi
    if grep -rEn 'unsafe +(fn|impl|trait)|unsafe *\{' --include='*.rs' "$dir"; then
        echo "error: vendored crate '$crate' grew unsafe code (see above);" \
             "only vendor/arcswap and vendor/allocmeter may use unsafe," \
             "with SAFETY comments" >&2
        fail=1
    fi
done

# Every unsafe site in a sanctioned crate needs a SAFETY comment: either
# trailing on the same line, or inside the contiguous `//` comment block
# directly above the statement the unsafe expression starts on.
while IFS= read -r rsfile; do
    if ! awk -v file="$rsfile" '
        # Track the most recent contiguous comment block: once a comment
        # line appears, remember whether the block mentions SAFETY: until
        # a non-comment, non-continuation line breaks the chain.
        {
            line = $0
            sub(/^[ \t]+/, "", line)
        }
        line ~ /^\/\// {
            if (!in_comment) { in_comment = 1; block_safety = 0 }
            if (line ~ /SAFETY:/) block_safety = 1
            covered = block_safety
            next
        }
        {
            # A statement spanning multiple lines keeps its comment
            # cover: only reset once the statement ends (; or }).
            in_comment = 0
            if (/unsafe[ \t]+(fn|impl|trait)|unsafe[ \t]*\{/) {
                if (!covered && $0 !~ /\/\/.*SAFETY:/) {
                    printf "error: %s:%d: unsafe without a SAFETY comment\n", file, NR > "/dev/stderr"
                    bad = 1
                }
            }
            if (line ~ /[;}][ \t]*$/) covered = 0
        }
        END { exit bad }
    ' "$rsfile"; then
        fail=1
    fi
done < <(find vendor/arcswap vendor/allocmeter -name '*.rs')

if [ "$fail" -eq 0 ]; then
    echo "unsafe gate: clean"
fi
exit "$fail"
