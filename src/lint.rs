//! The `speedybox lint` driver: chain registry plus the harness that runs
//! every static-verifier pass over a named chain.
//!
//! Linting a chain means exercising it the way the runtime would — a small
//! deterministic workload records each flow's rule through the instrumented
//! slow path, the rule is installed, and fast-path packets run over it with
//! the debug-build payload-access tracker armed — then handing what was
//! recorded to `speedybox-verify`:
//!
//! * per-flow recorded header actions → pass 1 (consolidation soundness);
//! * every registered Event Table entry → pass 2 (rewrite safety);
//! * the installed rule's precomputed wavefront schedule → pass 3
//!   (Table I schedule safety);
//! * the access tracker's observed-write log → `SBX010`;
//! * each NF's flow-state declaration vs its snapshot support → pass 6
//!   (`SBX013`, recovery-snapshot coverage).
//!
//! The driver always builds a **fresh** chain instance: pass 2 invokes
//! update handlers statically, and a handler is allowed to mutate its NF's
//! state (Maglev's reroute does), so linting must never run against a chain
//! about to process traffic.

use speedybox_mat::track;
use speedybox_mat::{OpCounter, PacketClass};
use speedybox_nf::Nf;
use speedybox_platform::chains;
use speedybox_platform::cycles::CycleModel;
use speedybox_platform::runtime::{
    classify, fast_path, traverse_chain, FastPathScratch, SboxConfig, SpeedyBox,
};
use speedybox_traffic::{Workload, WorkloadConfig};
use speedybox_verify::{
    check_access_log, check_snapshots, verify_flow, EventSpec, NfActions, NfStateSpec, Report,
};

/// The concrete chain names `lint --all` verifies (parameterized entries
/// pinned to representative sizes).
pub use chains::ALL_CHAINS as LINT_ALL;
/// The chain registry (moved to [`speedybox_platform::chains`] so harness
/// crates can use it without depending on the CLI crate), re-exported here
/// for compatibility.
pub use chains::{build_chain, build_chain_hooks, ChainHooks, CHAIN_REGISTRY};

/// Lints a chain by registry name on a fresh instance.
///
/// # Errors
/// Returns a message if the name is unknown.
pub fn lint_chain(name: &str) -> Result<Report, String> {
    Ok(lint_nfs(name, build_chain(name)?))
}

/// Lints an already-built chain: records per-flow rules through a small
/// deterministic workload, then runs every verify pass over what was
/// recorded. The chain instance is consumed conceptually — pass 2 may have
/// mutated NF state — so callers must not run traffic through it afterwards.
#[must_use]
pub fn lint_nfs(chain_name: &str, mut nfs: Vec<Box<dyn Nf>>) -> Report {
    // Drain stale tracker records so SBX010 findings are attributable to
    // this chain's fast-path packets alone.
    let _ = track::take_violations();

    let sbox = SpeedyBox::new(nfs.len(), SboxConfig::default());
    let model = CycleModel::new();
    let names: Vec<String> = nfs.iter().map(|nf| nf.name().to_string()).collect();

    // Pass 6 input, taken before traffic flows: the declaration triple is
    // a property of the NF type, not of accumulated state.
    let state_specs: Vec<NfStateSpec> = nfs
        .iter()
        .map(|nf| NfStateSpec::new(nf.name(), nf.has_flow_state(), nf.snapshot_state().is_some()))
        .collect();

    // Deterministic workload: enough flows to hit every NF code path
    // (suspicious payloads included for Snort-bearing chains), enough
    // packets per flow to exercise the fast path and the access tracker.
    let packets = Workload::generate(&WorkloadConfig {
        flows: 12,
        seed: 7,
        suspicious_fraction: 0.25,
        ..WorkloadConfig::default()
    })
    .packets();

    let mut fids = std::collections::BTreeSet::new();
    let mut scratch = FastPathScratch::default();
    for mut packet in packets {
        let mut ops = OpCounter::default();
        let Ok((fid, class, _closes)) = classify(&sbox, &mut packet, &mut ops) else {
            continue;
        };
        match class {
            PacketClass::Initial => {
                traverse_chain(&mut nfs, Some(&sbox.instruments), &mut packet, &model);
                sbox.global.install(fid, &mut ops);
                fids.insert(fid);
            }
            PacketClass::Subsequent => {
                if fast_path(&sbox, &mut packet, fid, &model, &mut scratch).is_none() {
                    traverse_chain(&mut nfs, None, &mut packet, &model);
                }
            }
            _ => {
                traverse_chain(&mut nfs, None, &mut packet, &model);
            }
        }
    }

    let mut report = Report::new(chain_name);
    for fid in fids {
        let nf_actions: Vec<NfActions> = sbox
            .global
            .locals()
            .iter()
            .enumerate()
            .map(|(i, local)| {
                NfActions::new(
                    &names[i],
                    local.rule(fid).map(|r| r.header_actions).unwrap_or_default(),
                )
            })
            .collect();
        let events: Vec<EventSpec> =
            sbox.global.events().events_for(fid).iter().map(EventSpec::from_event).collect();
        let rule = sbox.global.rule(fid);
        report.merge(verify_flow(chain_name, &nf_actions, &events, rule.as_deref()));
    }

    // Close the declared-vs-observed loop: any state function the debug
    // build caught writing the payload under a Read/Ignore declaration.
    report.merge(check_access_log(chain_name, &track::take_violations()));
    // And the recovery contract: declared flow state must be recoverable.
    report.merge(check_snapshots(chain_name, &state_specs));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_build() {
        for name in LINT_ALL {
            assert!(build_chain(name).is_ok(), "{name} failed to build");
        }
    }

    #[test]
    fn unknown_chain_is_rejected() {
        assert!(build_chain("nope").is_err());
        assert!(build_chain("ipfilter:x").is_err());
        assert!(lint_chain("nope").is_err());
    }

    #[test]
    fn lint_vpn_tunnel_is_clean() {
        let report = lint_chain("vpn-tunnel").unwrap();
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn stateful_nf_without_snapshot_gets_sbx013() {
        use speedybox_nf::{NfContext, NfVerdict};
        use speedybox_packet::Packet;
        use speedybox_verify::LintCode;

        /// Counts packets (per-flow state) but cannot snapshot them.
        struct Amnesiac {
            count: u64,
        }

        impl Nf for Amnesiac {
            fn name(&self) -> &str {
                "amnesiac"
            }

            fn process(&mut self, _packet: &mut Packet, _ctx: &mut NfContext<'_>) -> NfVerdict {
                self.count += 1;
                NfVerdict::Forward
            }

            fn has_flow_state(&self) -> bool {
                true
            }
        }

        let report = lint_nfs("amnesiac-chain", vec![Box::new(Amnesiac { count: 0 })]);
        assert!(report.has_code(LintCode::SnapshotMissing), "{}", report.render_text());
        assert!(!report.has_errors(), "SBX013 must stay a warning");

        // Every registry chain keeps its recovery contract.
        for name in LINT_ALL {
            let report = lint_chain(name).unwrap();
            assert!(
                !report.has_code(LintCode::SnapshotMissing),
                "{name} has unrecoverable flow state:\n{}",
                report.render_text()
            );
        }
    }
}
