//! SpeedyBox: low-latency NFV service chains with cross-NF runtime
//! consolidation — a Rust reproduction of the ICDCS 2019 paper.
//!
//! This meta-crate re-exports the workspace:
//!
//! * [`packet`] — the packet substrate (headers, buffers, flow identity);
//! * [`mat`] — the paper's core: Local/Global MATs, Event Table,
//!   consolidation, parallelism analysis;
//! * [`nf`] — the evaluated network functions (Snort-lite, Maglev,
//!   IPFilter, Monitor, MazuNAT, …);
//! * [`platform`] — BESS-style and OpenNetVM-style execution environments
//!   with a calibrated cycle model;
//! * [`telemetry`] — lock-free runtime counters and latency histograms
//!   with Prometheus/JSON exposition;
//! * [`traffic`] — deterministic datacenter-style workload synthesis;
//! * [`stats`] — CDFs, percentiles and table rendering;
//! * [`verify`] — the static chain verifier behind `speedybox lint`
//!   (consolidation soundness, event-rewrite safety, schedule safety);
//!   the [`lint`] module holds the chain registry and lint driver.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench` for the harness regenerating every table and figure of
//! the paper.
//!
//! ```
//! use speedybox::platform::bess::BessChain;
//! use speedybox::platform::chains::ipfilter_chain;
//! use speedybox::packet::PacketBuilder;
//!
//! let mut chain = BessChain::speedybox(ipfilter_chain(3, 30));
//! let pkt = PacketBuilder::tcp().payload(b"hello").build();
//! let out = chain.process(pkt);
//! assert!(out.survived());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;

pub use speedybox_mat as mat;
pub use speedybox_nf as nf;
pub use speedybox_packet as packet;
pub use speedybox_platform as platform;
pub use speedybox_sim as sim;
pub use speedybox_stats as stats;
pub use speedybox_telemetry as telemetry;
pub use speedybox_traffic as traffic;
pub use speedybox_verify as verify;
