//! `speedybox-check` — drive the concurrency model checker over the
//! repo's protocol models from the command line.
//!
//! The same scenarios run under `cargo test` (exhaustive tier, CI's
//! `model-check` job); this binary adds the seeded random-walk tier for
//! nightly soaks, selective runs, and failing-trace export:
//!
//! ```text
//! speedybox-check --list
//! speedybox-check                         # exhaustive tier, all models
//! speedybox-check --model rcu-load-store  # one model
//! speedybox-check --mode random --seed 7 --iters 20000
//! speedybox-check --seeded                # also run mutation twins
//! speedybox-check --trace-dir traces/     # write failing schedules
//! ```
//!
//! Exit status: 0 = every clean model verified (and, with `--seeded`,
//! every mutation twin caught); 1 = a violation was found or a twin was
//! missed; 2 = usage error.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use arcswap::model::{scenarios as rcu, Mutation};
use speedybox_check::{BugKind, Checker, Config, Outcome};
use speedybox_mat::model::{scenarios as mat, ClMutation, FtMutation, QMutation};

/// A boxed scenario, callable many times by the explorer.
type Scenario = Box<dyn Fn() + Send + Sync + 'static>;

/// A seeded-bug twin of a clean model: the checker must catch it.
struct Twin {
    name: &'static str,
    expected: BugKind,
    build: fn() -> Scenario,
}

/// One registered protocol model.
struct Model {
    name: &'static str,
    /// Preemption bound for the exhaustive tier (matches the test tier).
    bound: usize,
    clean: fn() -> Scenario,
    twins: &'static [Twin],
}

const MODELS: &[Model] = &[
    Model {
        name: "rcu-load-store",
        bound: 3,
        clean: || Box::new(rcu::rcu_load_store(Mutation::None)),
        twins: &[
            Twin {
                name: "rcu-weak-collect-load",
                expected: BugKind::UseAfterFree,
                build: || Box::new(rcu::rcu_load_store(Mutation::WeakCollectLoad)),
            },
            Twin {
                name: "rcu-retire-before-swap",
                expected: BugKind::UseAfterFree,
                build: || Box::new(rcu::rcu_load_store(Mutation::RetireBeforeSwap)),
            },
            Twin {
                name: "rcu-skip-retire",
                expected: BugKind::Leak,
                build: || Box::new(rcu::rcu_load_store(Mutation::SkipRetire)),
            },
        ],
    },
    Model {
        name: "rcu-two-readers",
        bound: 2,
        clean: || Box::new(rcu::rcu_two_readers(Mutation::None)),
        twins: &[],
    },
    Model {
        name: "rcu-drain-deferred",
        bound: 3,
        clean: || Box::new(rcu::rcu_drain_deferred(Mutation::None)),
        twins: &[],
    },
    Model {
        name: "ft-evict-vs-rewrite",
        bound: 2,
        clean: || Box::new(mat::ft_evict_vs_rewrite(FtMutation::None)),
        twins: &[Twin {
            name: "ft-toctou-replace",
            expected: BugKind::Panic,
            build: || Box::new(mat::ft_evict_vs_rewrite(FtMutation::ToctouReplace)),
        }],
    },
    Model {
        name: "ft-recycle-vs-reader",
        bound: 2,
        clean: || Box::new(mat::ft_recycle_vs_reader(FtMutation::None)),
        twins: &[Twin {
            name: "ft-skip-index-reset",
            expected: BugKind::Panic,
            build: || Box::new(mat::ft_recycle_vs_reader(FtMutation::SkipIndexReset)),
        }],
    },
    Model {
        name: "cl-memo-vs-republish",
        bound: 3,
        clean: || Box::new(mat::cl_memo_vs_republish(ClMutation::None)),
        twins: &[Twin {
            name: "cl-memo-raw-handle",
            expected: BugKind::UseAfterFree,
            build: || Box::new(mat::cl_memo_vs_republish(ClMutation::MemoRawHandle)),
        }],
    },
    Model {
        name: "q-kill-vs-reader",
        bound: 2,
        clean: || Box::new(mat::q_kill_vs_reader(QMutation::None)),
        twins: &[Twin {
            name: "q-republish-before-replay",
            expected: BugKind::Panic,
            build: || Box::new(mat::q_kill_vs_reader(QMutation::RepublishBeforeReplay)),
        }],
    },
];

#[derive(Clone, Copy, PartialEq, Eq)]
enum CliMode {
    Exhaustive,
    Random,
}

struct Cli {
    mode: CliMode,
    seed: u64,
    iters: usize,
    model: Option<String>,
    seeded: bool,
    trace_dir: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: speedybox-check [--mode exhaustive|random] [--seed N] [--iters N]\n\
     \x20                      [--model NAME] [--seeded] [--trace-dir DIR] [--list]\n\
     \x20 --mode       exploration strategy (default: exhaustive)\n\
     \x20 --seed       base PRNG seed for the random walk (default: 1)\n\
     \x20 --iters      random-walk executions per model (default: 10000)\n\
     \x20 --model      run a single model (see --list)\n\
     \x20 --seeded     also run the seeded-bug mutation twins (must be caught)\n\
     \x20 --trace-dir  write failing schedule traces into DIR\n\
     \x20 --list       list registered models and twins"
}

fn parse(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        mode: CliMode::Exhaustive,
        seed: 1,
        iters: 10_000,
        model: None,
        seeded: false,
        trace_dir: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--list" => {
                for m in MODELS {
                    println!("{} (bound {})", m.name, m.bound);
                    for t in m.twins {
                        println!("  twin: {} (expects {})", t.name, t.expected);
                    }
                }
                return Ok(None);
            }
            "--mode" => {
                cli.mode = match value("--mode")?.as_str() {
                    "exhaustive" => CliMode::Exhaustive,
                    "random" => CliMode::Random,
                    other => return Err(format!("unknown mode `{other}`")),
                };
            }
            "--seed" => {
                cli.seed = value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--iters" => {
                cli.iters = value("--iters")?.parse().map_err(|e| format!("bad --iters: {e}"))?;
            }
            "--model" => cli.model = Some(value("--model")?),
            "--seeded" => cli.seeded = true,
            "--trace-dir" => cli.trace_dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(cli))
}

/// Writes a failing schedule trace for later deterministic replay.
fn write_trace(dir: &PathBuf, name: &str, out: &Outcome) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("trace-dir: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.trace.txt"));
    let mut body = String::new();
    body.push_str(&format!("model: {name}\n{}\n", out.summary()));
    for bug in &out.bugs {
        body.push_str(&format!("\n[{}] {}\nschedule: {}\n", bug.kind, bug.message, bug.schedule));
        if let Some(seed) = bug.seed {
            body.push_str(&format!("seed: {seed}\n"));
        }
        body.push_str("trace:\n");
        for line in &bug.trace {
            body.push_str(&format!("  {line}\n"));
        }
    }
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("trace-dir: cannot write {}: {e}", path.display()),
    }
}

fn main() -> ExitCode {
    // Model threads unwind on purpose (assertion oracles, abort-on-poison);
    // the checker records everything worth seeing, so the default panic
    // hook's per-unwind backtrace spam is pure noise here.
    std::panic::set_hook(Box::new(|_| {}));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let selected: Vec<&Model> = match &cli.model {
        Some(name) => match MODELS.iter().find(|m| m.name == *name) {
            Some(m) => vec![m],
            None => {
                eprintln!("error: unknown model `{name}` (see --list)");
                return ExitCode::from(2);
            }
        },
        None => MODELS.iter().collect(),
    };

    let mut failed = false;
    for model in &selected {
        let config = match cli.mode {
            CliMode::Exhaustive => Config::exhaustive(model.bound),
            CliMode::Random => Config::random(cli.seed, cli.iters),
        };
        let out = Checker::new(config).check(model.name, (model.clean)());
        println!("{}", out.summary());
        if !out.bugs.is_empty() || out.execution_cap_hit {
            failed = true;
            for bug in &out.bugs {
                eprintln!("  [{}] {} (schedule {})", bug.kind, bug.message, bug.schedule);
            }
            if out.execution_cap_hit {
                eprintln!("  execution cap hit before the state space was exhausted");
            }
            if let Some(dir) = &cli.trace_dir {
                write_trace(dir, model.name, &out);
            }
        }
    }

    if cli.seeded {
        // Twins always run exhaustively: catching them is a guarantee of
        // the exhaustive tier, not a matter of random luck.
        for model in &selected {
            for twin in model.twins {
                let out =
                    Checker::new(Config::exhaustive(model.bound)).check(twin.name, (twin.build)());
                let caught = out.bugs.iter().any(|b| b.kind == twin.expected);
                if caught {
                    println!("{} caught (expected {})", twin.name, twin.expected);
                } else {
                    failed = true;
                    eprintln!(
                        "{} MISSED: expected {}, got {}",
                        twin.name,
                        twin.expected,
                        out.summary()
                    );
                    if let Some(dir) = &cli.trace_dir {
                        write_trace(dir, twin.name, &out);
                    }
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
