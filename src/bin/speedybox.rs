//! `speedybox` — run service chains over synthetic workloads or captured
//! traces from the command line.
//!
//! ```text
//! speedybox run --chain chain1 --speedybox --flows 200
//! speedybox run --chain ipfilter:5 --env onvm --compare
//! speedybox lint --all
//! speedybox run --chain chain2 --verify --speedybox
//! speedybox gen-trace --flows 50 --out /tmp/workload.trace
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use speedybox::lint::{build_chain, lint_chain, CHAIN_REGISTRY, LINT_ALL};
use speedybox::mat::AdmissionPolicy;
use speedybox::nf::Nf;
use speedybox::packet::trace::Trace;
use speedybox::packet::Packet;
use speedybox::platform::bess::BessChain;
use speedybox::platform::onvm::OnvmChain;
use speedybox::platform::runtime::SboxConfig;
use speedybox::platform::RunStats;
use speedybox::sim;
use speedybox::stats::Summary;
use speedybox::telemetry::TelemetrySnapshot;
use speedybox::traffic::{Workload, WorkloadConfig};

const USAGE: &str = "\
speedybox — SpeedyBox NFV service chains (ICDCS 2019 reproduction)

USAGE:
  speedybox run [OPTIONS]        process a workload through a chain
  speedybox lint <CHAIN>|--all   statically verify a chain (SBX0xx lints)
  speedybox sim [OPTIONS]        differential simulation vs the reference
                                 oracle, with scripted fault injection
  speedybox gen-trace [OPTIONS]  synthesize a workload trace file
  speedybox chains               list available chain names

RUN OPTIONS:
  --chain <NAME>      any name from `speedybox chains` (default: chain1)
  --env <ENV>         bess | onvm (default: bess)
  --speedybox         enable SpeedyBox (default: original chain)
  --interpreted       apply consolidated rules through the interpreter
                      instead of compiled micro-op programs (escape hatch;
                      compiled is the default)
  --verify            lint a fresh instance of the chain first; refuse to
                      run if any Error-level finding is reported
  --compare           run both original and SpeedyBox, report the delta
  --flows <N>         synthetic workload flows (default: 100)
  --seed <N>          workload seed (default: 1)
  --trace <FILE>      replay a trace file instead of synthesizing
  --batch-size <N>    fast-path packets per batch (default: 1 = per-packet)
  --workers <N>       symmetric run-to-completion workers; must be a power
                      of two; each owns the FID slice fid & (N-1)
                      (default: 1 = single-path)
  --shards <N>        classifier/Global-MAT table shards, power of two (default: 16)
  --max-flows <N>     bound on live flow-table entries / installed rules
                      (default: 1048576 = the full 20-bit FID space)
  --idle-timeout <N>  reclaim flows idle for more than N classifier ticks,
                      swept at batch boundaries (default: 0 = disabled)
  --admission <P>     evict | reject — what happens to a new flow when the
                      table is at --max-flows: evict the least-recently-seen
                      flow (default) or reject the newcomer (it rides the
                      original chain uninstrumented)
  --checkpoint-interval <N>
                      snapshot every NF's state every N packets and keep a
                      bounded in-flight log, enabling chain-consistent
                      crash/restart recovery (default: 0 = disabled; the
                      data path stays allocation-free when off)
  --dump-mat          print the Global MAT after the run (implies --speedybox)
  --metrics <FILE>    write the run's telemetry snapshot; *.prom gets
                      Prometheus text exposition, anything else JSON
                      (with --compare, the SpeedyBox run is exported)

LINT OPTIONS:
  --all               lint every registry chain; exit non-zero on Errors
  --json              emit findings as JSON instead of rendered text

SIM OPTIONS:
  --seeds <N>         sweep seeds 0..N (default: 8)
  --seed <N>          run one specific seed instead of a sweep
  --all               sweep every registry chain on both environments,
                      both execution modes, batch sizes 1 and 8, worker
                      counts 1, 2, 4 and 8
  --chain <NAME>      one chain (default: chain1; ignored with --all)
  --env <ENV>         bess | onvm (default: bess; ignored with --all)
  --batch <N>         packets per batch (default: 1; ignored with --all)
  --workers <N>       symmetric workers for the SUT (default: 1; ignored
                      with --all)
  --interpreted       start in interpreted rule execution
  --no-faults         disable the scripted fault plans
  --nf-faults         add NF crash/restart verbs (nfkill/nfrecover/snap) to
                      the fault plans; the runner auto-enables
                      checkpointing and the recovery protocol under test
  --evict-pressure    bound the SUT flow table at 64 entries so installs
                      continuously displace LRU flows mid-trace — the
                      capacity-eviction path under byte-equivalence check
  --inject-bug <B>    seed a deliberate SUT bug to validate the harness
                      (skip-checksum-fix | evict-ordering |
                      skip-snapshot-replay)
  --artifact-dir <D>  write shrunk divergence reproducers here as JSON
  --replay <FILE>     re-run a divergence artifact byte-for-byte
  exit code: 0 = equivalent, 1 = divergence found, 2 = usage error

GEN-TRACE OPTIONS:
  --flows <N>         flows to synthesize (default: 100)
  --seed <N>          RNG seed (default: 1)
  --out <FILE>        output path (required)
  --format <FMT>      lines | pcap (default: lines; pcap opens in Wireshark)
";

struct Args {
    flags: Vec<String>,
}

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .position(|f| f == name)
            .and_then(|i| self.flags.get(i + 1))
            .map(String::as_str)
    }

    fn usize_value(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
        }
    }

    /// `--workers`, validated: the flag must carry a value, and the value
    /// must be a power of two (worker steering masks the FID with
    /// `workers - 1`, so anything else would silently misroute flows).
    fn workers_value(&self, default: usize) -> Result<usize, String> {
        if self.flag("--workers") && self.value("--workers").is_none() {
            return Err("--workers requires a value".to_owned());
        }
        let w = self.usize_value("--workers", default)?;
        if w == 0 || !w.is_power_of_two() {
            return Err(format!("bad value for --workers: {w} (must be a power of two >= 1)"));
        }
        Ok(w)
    }
}

fn load_packets(args: &Args) -> Result<Vec<Packet>, String> {
    if let Some(path) = args.value("--trace") {
        let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let trace = if path.ends_with(".pcap") {
            speedybox::packet::pcap::read_pcap(BufReader::new(file))
                .map_err(|e| format!("parse {path}: {e}"))?
        } else {
            Trace::read_lines(BufReader::new(file)).map_err(|e| format!("parse {path}: {e}"))?
        };
        return trace.packets().map_err(|e| format!("trace packet invalid: {e}"));
    }
    let flows = args.usize_value("--flows", 100)?;
    let seed = args.usize_value("--seed", 1)? as u64;
    Ok(Workload::generate(&WorkloadConfig { flows, seed, ..WorkloadConfig::default() }).packets())
}

enum Chain {
    Bess(BessChain),
    Onvm(OnvmChain),
}

impl Chain {
    fn build(
        env: &str,
        nfs: Vec<Box<dyn Nf>>,
        speedybox: bool,
        config: SboxConfig,
    ) -> Result<Self, String> {
        match (env, speedybox) {
            ("bess", false) => Ok(Chain::Bess(BessChain::original(nfs))),
            ("bess", true) => Ok(Chain::Bess(BessChain::speedybox_with(nfs, config))),
            ("onvm", false) => Ok(Chain::Onvm(OnvmChain::original(nfs))),
            ("onvm", true) => Ok(Chain::Onvm(OnvmChain::speedybox_with(nfs, config))),
            (other, _) => Err(format!("unknown env: {other}")),
        }
    }

    fn run(&mut self, pkts: Vec<Packet>) -> RunStats {
        match self {
            Chain::Bess(c) => c.run(pkts),
            Chain::Onvm(c) => c.run(pkts),
        }
    }

    fn report(&self, stats: &RunStats) -> (f64, f64, f64) {
        let (model, rate) = match self {
            Chain::Bess(c) => (c.model(), stats.run_to_completion_rate_mpps(c.model())),
            Chain::Onvm(c) => (c.model(), stats.pipelined_rate_mpps(c.model())),
        };
        (stats.mean_work_cycles(), stats.mean_latency_us(model), rate)
    }

    fn model(&self) -> &speedybox::platform::CycleModel {
        match self {
            Chain::Bess(c) => c.model(),
            Chain::Onvm(c) => c.model(),
        }
    }

    fn dump_mat(&self) -> Option<String> {
        let sbox = match self {
            Chain::Bess(c) => c.sbox(),
            Chain::Onvm(c) => c.sbox(),
        }?;
        Some(sbox.global.dump())
    }

    fn snapshot(&self) -> TelemetrySnapshot {
        match self {
            Chain::Bess(c) => c.telemetry().snapshot(),
            Chain::Onvm(c) => c.telemetry().snapshot(),
        }
    }
}

fn write_metrics(path: &str, snap: &TelemetrySnapshot) -> Result<(), String> {
    let text = if path.ends_with(".prom") { snap.to_prometheus() } else { snap.to_json() };
    std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "\nmetrics: wrote {path} ({} packets, {:.1}% fast-path)",
        snap.packets,
        snap.fastpath_hit_rate() * 100.0
    );
    Ok(())
}

fn print_run(label: &str, chain: &Chain, stats: &RunStats) {
    let (cycles, latency, rate) = chain.report(stats);
    let lat = Summary::from_u64(&stats.latencies_cycles);
    println!("{label}");
    println!(
        "  packets: {} in, {} delivered, {} dropped",
        stats.sent, stats.delivered, stats.dropped
    );
    println!(
        "  paths:   {} baseline, {} initial, {} fast-path",
        stats.path_counts[0], stats.path_counts[1], stats.path_counts[2]
    );
    println!("  cost:    {cycles:.0} cycles/packet, {latency:.2} us mean latency, {rate:.2} Mpps");
    println!(
        "  latency: p50 {:.0} / p90 {:.0} / p99 {:.0} cycles",
        lat.median(),
        lat.quantile(0.9),
        lat.p99()
    );
    if stats.worker_cycles.len() > 1 {
        let total: u64 = stats.worker_cycles.iter().sum();
        let busiest = stats.worker_cycles.iter().copied().max().unwrap_or(0);
        let share = if total > 0 { busiest as f64 / total as f64 * 100.0 } else { 0.0 };
        println!(
            "  workers: {} symmetric, busiest carries {share:.1}% of work, {:.2} Mpps modeled",
            stats.worker_cycles.len(),
            stats.worker_rate_mpps(chain.model())
        );
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let chain_name = args.value("--chain").unwrap_or("chain1");
    let env = args.value("--env").unwrap_or("bess");
    let dump = args.flag("--dump-mat");
    let speedybox = args.flag("--speedybox") || dump;
    let default_cfg = SboxConfig::default();
    let admission = match args.value("--admission") {
        None | Some("evict") => AdmissionPolicy::EvictOldest,
        Some("reject") => AdmissionPolicy::Reject,
        Some(other) => return Err(format!("bad value for --admission: {other} (evict | reject)")),
    };
    let config = SboxConfig {
        batch_size: args.usize_value("--batch-size", default_cfg.batch_size)?,
        shards: args.usize_value("--shards", default_cfg.shards)?,
        workers: args.workers_value(default_cfg.workers)?,
        compiled: !args.flag("--interpreted"),
        max_flows: args.usize_value("--max-flows", default_cfg.max_flows)?,
        idle_timeout: args.usize_value("--idle-timeout", 0)? as u64,
        admission,
        checkpoint_interval: args.usize_value("--checkpoint-interval", 0)? as u64,
        ..default_cfg
    };
    if args.flag("--verify") {
        // Preflight on a fresh instance: pass 2 statically invokes event
        // update handlers, which may mutate NF state, so the linted chain
        // must never be the one that processes traffic.
        let report = lint_chain(chain_name)?;
        if report.has_errors() {
            return Err(format!(
                "chain {chain_name} failed verification:\n{}",
                report.render_text()
            ));
        }
        println!("verify: {chain_name} passed ({} warning(s))\n", report.warn_count());
    }
    let packets = load_packets(args)?;
    println!("chain: {chain_name} on {env}, {} packets\n", packets.len());

    if args.flag("--compare") {
        let mut orig = Chain::build(env, build_chain(chain_name)?, false, config)?;
        let so = orig.run(packets.clone());
        print_run("original", &orig, &so);
        let mut fast = Chain::build(env, build_chain(chain_name)?, true, config)?;
        let sf = fast.run(packets);
        print_run("\nspeedybox", &fast, &sf);
        let cut = 1.0 - sf.mean_latency_cycles() / so.mean_latency_cycles();
        println!("\nlatency reduction: {:.1}%", cut * 100.0);
        if let Some(path) = args.value("--metrics") {
            write_metrics(path, &fast.snapshot())?;
        }
        return Ok(());
    }

    let mut chain = Chain::build(env, build_chain(chain_name)?, speedybox, config)?;
    let stats = chain.run(packets);
    print_run(if speedybox { "speedybox" } else { "original" }, &chain, &stats);
    if dump {
        println!("\n{}", chain.dump_mat().expect("speedybox enabled"));
    }
    if let Some(path) = args.value("--metrics") {
        write_metrics(path, &chain.snapshot())?;
    }
    Ok(())
}

fn cmd_lint(args: &Args) -> Result<(), String> {
    let json = args.flag("--json");
    let names: Vec<&str> = if args.flag("--all") {
        LINT_ALL.to_vec()
    } else {
        let name = args
            .flags
            .iter()
            .find(|f| !f.starts_with("--"))
            .ok_or("usage: speedybox lint <CHAIN> | --all [--json]")?;
        vec![name.as_str()]
    };
    let mut errors = 0usize;
    for name in names {
        let report = lint_chain(name)?;
        errors += report.error_count();
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
    }
    if errors > 0 {
        return Err(format!("{errors} error-level finding(s)"));
    }
    Ok(())
}

/// One configuration axis of the sim sweep.
struct SimConfig {
    chain: String,
    env: sim::EnvKind,
    compiled: bool,
    batch: usize,
    workers: usize,
}

fn sim_configs(args: &Args) -> Result<Vec<SimConfig>, String> {
    if args.flag("--all") {
        let mut configs = Vec::new();
        for chain in LINT_ALL {
            for env in [sim::EnvKind::Bess, sim::EnvKind::Onvm] {
                for compiled in [true, false] {
                    for batch in [1usize, 8] {
                        for workers in [1usize, 2, 4, 8] {
                            configs.push(SimConfig {
                                chain: (*chain).to_string(),
                                env,
                                compiled,
                                batch,
                                workers,
                            });
                        }
                    }
                }
            }
        }
        return Ok(configs);
    }
    Ok(vec![SimConfig {
        chain: args.value("--chain").unwrap_or("chain1").to_string(),
        env: sim::EnvKind::parse(args.value("--env").unwrap_or("bess"))?,
        compiled: !args.flag("--interpreted"),
        batch: args.usize_value("--batch", 1)?.max(1),
        workers: args.workers_value(1)?,
    }])
}

fn sim_report_divergence(case: &sim::SimCase, out: &sim::RunOutcome) {
    let Some(d) = &out.divergence else { return };
    println!(
        "DIVERGENCE chain={} env={} mode={} batch={} workers={} seed={}: {} at packet {} (orig {})",
        case.chain,
        case.env.as_str(),
        if case.compiled { "compiled" } else { "interpreted" },
        case.batch,
        case.workers,
        case.seed,
        d.kind.as_str(),
        d.index,
        d.orig
    );
    println!("  {}", d.detail.replace('\n', "\n  "));
}

fn cmd_sim(args: &Args) -> Result<ExitCode, String> {
    if let Some(path) = args.value("--replay") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let case = sim::artifact::from_json(&text)?;
        let out = sim::run_case(&case)?;
        println!(
            "replay {path}: {} packets, {} delivered, {} dropped, {} rejected, {} excused-lag, hash {:016x}",
            case.items.len(),
            out.delivered,
            out.dropped,
            out.rejected,
            out.excused_lag,
            out.output_hash
        );
        return Ok(if out.divergence.is_some() {
            sim_report_divergence(&case, &out);
            ExitCode::from(1)
        } else {
            println!("replay: equivalent (no divergence)");
            ExitCode::SUCCESS
        });
    }

    let seeds: Vec<u64> = match args.value("--seed") {
        Some(s) => vec![s.parse().map_err(|_| format!("bad value for --seed: {s}"))?],
        None => (0..args.usize_value("--seeds", 8)? as u64).collect(),
    };
    let with_faults = !args.flag("--no-faults");
    let nf_faults = args.flag("--nf-faults");
    let bug = args.value("--inject-bug").map(sim::BugKind::parse).transpose()?;
    let artifact_dir = args.value("--artifact-dir");
    // Pressure mode: a tiny flow-table bound keeps every case under
    // constant capacity-evict churn (installs displace LRU flows, which
    // re-record through the slow path — byte equivalence must survive).
    let max_flows = if args.flag("--evict-pressure") { 64 } else { 0 };
    let configs = sim_configs(args)?;

    let mut cases = 0usize;
    let mut divergent = 0usize;
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    let mut sweep_hash = 0xcbf2_9ce4_8422_2325u64;
    for config in &configs {
        for &seed in &seeds {
            let scenario = sim::generate(&sim::ScenarioConfig {
                seed,
                chain: config.chain.clone(),
                with_faults,
                nf_faults,
            });
            let case = sim::SimCase {
                chain: config.chain.clone(),
                env: config.env,
                compiled: config.compiled,
                batch: config.batch,
                workers: config.workers,
                seed,
                max_flows,
                bug,
                items: scenario.items,
                faults: scenario.faults,
            };
            let out = sim::run_case(&case)?;
            cases += 1;
            totals.0 += out.delivered;
            totals.1 += out.dropped;
            totals.2 += out.rejected;
            totals.3 += out.excused_lag;
            for b in out.output_hash.to_be_bytes() {
                sweep_hash ^= u64::from(b);
                sweep_hash = sweep_hash.wrapping_mul(0x0100_0000_01b3);
            }
            if out.divergence.is_some() {
                divergent += 1;
                sim_report_divergence(&case, &out);
                let (small, spent) = sim::shrink(&case, 256);
                let small_out = sim::run_case(&small)?;
                println!(
                    "  shrunk to {} packet(s), {} fault clause(s) in {spent} run(s)",
                    small.items.len(),
                    small.faults.faults.len()
                );
                if let Some(dir) = artifact_dir {
                    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir}: {e}"))?;
                    let file = format!(
                        "{dir}/sim-{}-{}-{}-b{}-w{}-s{}.json",
                        small.chain,
                        small.env.as_str(),
                        if small.compiled { "compiled" } else { "interpreted" },
                        small.batch,
                        small.workers,
                        small.seed
                    );
                    std::fs::write(
                        &file,
                        sim::artifact::to_json(&small, small_out.divergence.as_ref()),
                    )
                    .map_err(|e| format!("write {file}: {e}"))?;
                    println!("  artifact: {file}");
                }
            }
        }
    }
    println!(
        "sim: {cases} case(s) over {} config(s) x {} seed(s); {} delivered, {} dropped, {} rejected, {} excused-lag; sweep hash {sweep_hash:016x}",
        configs.len(),
        seeds.len(),
        totals.0,
        totals.1,
        totals.2,
        totals.3
    );
    if divergent > 0 {
        println!("sim: {divergent} divergent case(s)");
        Ok(ExitCode::from(1))
    } else {
        println!("sim: zero divergences");
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_gen_trace(args: &Args) -> Result<(), String> {
    let out = args.value("--out").ok_or("--out <FILE> is required")?;
    let flows = args.usize_value("--flows", 100)?;
    let seed = args.usize_value("--seed", 1)? as u64;
    let workload = Workload::generate(&WorkloadConfig { flows, seed, ..WorkloadConfig::default() });
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let format =
        args.value("--format").unwrap_or(if out.ends_with(".pcap") { "pcap" } else { "lines" });
    match format {
        "lines" => {
            workload.to_trace().write_lines(BufWriter::new(file)).map_err(|e| e.to_string())?
        }
        "pcap" => speedybox::packet::pcap::write_pcap(&workload.to_trace(), BufWriter::new(file))
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown trace format: {other}")),
    }
    println!("wrote {} packets ({} flows) to {out} ({format})", workload.len(), flows);
    print!("{}", speedybox::traffic::WorkloadStats::of(&workload));
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let args = Args { flags: rest.to_vec() };
    if cmd == "sim" {
        return match cmd_sim(&args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "lint" => cmd_lint(&args),
        "gen-trace" => cmd_gen_trace(&args),
        "chains" => {
            for (name, desc) in CHAIN_REGISTRY {
                println!("{name:<16}{desc}");
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
