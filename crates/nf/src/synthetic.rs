//! Synthetic NFs for micro-benchmarking (paper §VII-A).
//!
//! Fig 5 uses "a chain of 1-3 identical synthetic NFs ... The synthetic NF
//! has no header action, and has one state function that is equivalent to
//! the Snort packet inspection (does not modify payload)". [`SyntheticNf`]
//! generalizes that: any header action, plus an optional state function of
//! configurable payload access and work amount, so every cell of Table I
//! and every micro-benchmark axis can be exercised.

use std::hint::black_box;

use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::{HeaderAction, StateFunction};
use speedybox_packet::Packet;

use crate::nf::{Nf, NfContext, NfVerdict};

/// Configuration of a synthetic state function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSf {
    /// Declared (and actual) payload access.
    pub access: PayloadAccess,
    /// How many passes over the payload the function makes — the knob that
    /// scales per-packet work (1 pass ≈ one Snort inspection).
    pub scan_passes: u32,
}

impl SyntheticSf {
    /// A Snort-inspection-equivalent function: one READ pass.
    #[must_use]
    pub fn snort_like() -> Self {
        Self { access: PayloadAccess::Read, scan_passes: 1 }
    }
}

/// Performs the synthetic work on a payload; returns a value derived from
/// the bytes so the optimizer cannot discard the scan.
fn scan(payload: &mut [u8], sf: SyntheticSf) -> u64 {
    let mut acc = 0u64;
    for _ in 0..sf.scan_passes {
        match sf.access {
            PayloadAccess::Ignore => {
                // Fixed work independent of the payload.
                for i in 0..64u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(black_box(i));
                }
            }
            PayloadAccess::Read => {
                for &b in payload.iter() {
                    acc = acc.wrapping_mul(31).wrapping_add(u64::from(b));
                }
            }
            PayloadAccess::Write => {
                for b in payload.iter_mut() {
                    *b = b.wrapping_add(1);
                    acc = acc.wrapping_add(u64::from(*b));
                }
            }
        }
    }
    black_box(acc)
}

/// A configurable synthetic network function.
#[derive(Debug, Clone)]
pub struct SyntheticNf {
    name: String,
    header_action: HeaderAction,
    state_function: Option<SyntheticSf>,
}

impl SyntheticNf {
    /// A pure-forward NF with no state function.
    #[must_use]
    pub fn forward(name: impl Into<String>) -> Self {
        Self { name: name.into(), header_action: HeaderAction::Forward, state_function: None }
    }

    /// Sets the header action.
    #[must_use]
    pub fn with_header_action(mut self, action: HeaderAction) -> Self {
        self.header_action = action;
        self
    }

    /// Attaches a state function.
    #[must_use]
    pub fn with_state_function(mut self, sf: SyntheticSf) -> Self {
        self.state_function = Some(sf);
        self
    }

    /// The paper's Fig 5 NF: no header action, one Snort-like READ state
    /// function.
    #[must_use]
    pub fn snort_like(name: impl Into<String>) -> Self {
        Self::forward(name).with_state_function(SyntheticSf::snort_like())
    }

    fn run_sf(packet: &mut Packet, sf: SyntheticSf, ops: &mut speedybox_mat::OpCounter) {
        let payload_len = packet.payload().map(<[u8]>::len).unwrap_or(0);
        if let Ok(payload) = packet.payload_mut() {
            scan(payload, sf);
        }
        match sf.access {
            PayloadAccess::Ignore => ops.state_updates += u64::from(sf.scan_passes),
            PayloadAccess::Read => {
                ops.payload_bytes_scanned += payload_len as u64 * u64::from(sf.scan_passes);
            }
            PayloadAccess::Write => {
                ops.payload_bytes_scanned += payload_len as u64 * u64::from(sf.scan_passes);
                // A payload-writing NF must leave valid checksums behind —
                // the contract every WRITE state function upholds so the
                // consolidated path stays byte-equivalent.
                if packet.fix_checksums().is_ok() {
                    ops.checksum_fixes += 1;
                }
            }
        }
    }
}

impl Nf for SyntheticNf {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let survived = self.header_action.apply(packet, ctx.ops).unwrap_or(false);
        if survived {
            if let Some(sf) = self.state_function {
                Self::run_sf(packet, sf, ctx.ops);
            }
        }
        // SPEEDYBOX-INTEGRATION-BEGIN (synthetic: 14 lines)
        if let Some(inst) = ctx.instrument {
            let fid = inst.extract_fid(packet).unwrap_or_default();
            inst.add_header_action(fid, self.header_action.clone(), ctx.ops);
            if let Some(sf) = self.state_function {
                let name = format!("{}.sf", self.name);
                inst.add_state_function_handle(
                    fid,
                    StateFunction::new(name, sf.access, move |sfctx| {
                        Self::run_sf(sfctx.packet, sf, sfctx.ops);
                    }),
                    ctx.ops,
                );
            }
        }
        // SPEEDYBOX-INTEGRATION-END
        if survived {
            NfVerdict::Forward
        } else {
            NfVerdict::Drop
        }
    }
}

/// Builds the Fig 5 chain: `n` identical Snort-like synthetic NFs.
#[must_use]
pub fn snort_like_chain(n: usize) -> Vec<SyntheticNf> {
    (0..n).map(|i| SyntheticNf::snort_like(format!("synthetic-{i}"))).collect()
}

/// Needed by chain constructors that want `Box<dyn Nf>` elements.
impl From<SyntheticNf> for Box<dyn Nf> {
    fn from(nf: SyntheticNf) -> Self {
        Box::new(nf)
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::{HeaderField, PacketBuilder};

    use super::*;

    fn packet() -> Packet {
        let mut p = PacketBuilder::tcp().payload(b"0123456789").build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn forward_passes_through() {
        let mut nf = SyntheticNf::forward("s");
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet();
        let before = p.as_bytes().to_vec();
        assert_eq!(nf.process(&mut p, &mut ctx), NfVerdict::Forward);
        assert_eq!(p.as_bytes(), &before[..]);
    }

    #[test]
    fn drop_action_drops() {
        let mut nf = SyntheticNf::forward("s").with_header_action(HeaderAction::Drop);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        assert_eq!(nf.process(&mut packet(), &mut ctx), NfVerdict::Drop);
    }

    #[test]
    fn modify_action_applies() {
        let mut nf = SyntheticNf::forward("s")
            .with_header_action(HeaderAction::modify(HeaderField::DstPort, 999u16));
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet();
        nf.process(&mut p, &mut ctx);
        assert_eq!(p.get_field(HeaderField::DstPort).unwrap().as_port(), 999);
    }

    #[test]
    fn read_sf_does_not_modify_payload() {
        let mut nf = SyntheticNf::snort_like("s");
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet();
        nf.process(&mut p, &mut ctx);
        assert_eq!(p.payload().unwrap(), b"0123456789");
        assert_eq!(ops.payload_bytes_scanned, 10);
    }

    #[test]
    fn write_sf_modifies_payload() {
        let mut nf = SyntheticNf::forward("s")
            .with_state_function(SyntheticSf { access: PayloadAccess::Write, scan_passes: 1 });
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet();
        nf.process(&mut p, &mut ctx);
        assert_eq!(p.payload().unwrap()[0], b'0' + 1);
    }

    #[test]
    fn scan_passes_scale_work() {
        let mut nf = SyntheticNf::forward("s")
            .with_state_function(SyntheticSf { access: PayloadAccess::Read, scan_passes: 3 });
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        nf.process(&mut packet(), &mut ctx);
        assert_eq!(ops.payload_bytes_scanned, 30);
    }

    #[test]
    fn instrumented_records_matching_sf_access() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut nf = SyntheticNf::snort_like("s");
        let inst = NfInstrument::new(
            StdArc::new(LocalMat::new(NfId::new(0))),
            StdArc::new(EventTable::new()),
        );
        let mut ops = OpCounter::default();
        let mut p = packet();
        let mut ctx = NfContext::instrumented(&inst, &mut ops);
        nf.process(&mut p, &mut ctx);
        let rule = inst.local_mat().rule(p.fid().unwrap()).unwrap();
        assert_eq!(rule.state_functions[0].access(), PayloadAccess::Read);
    }

    #[test]
    fn chain_helper_builds_n() {
        let chain = snort_like_chain(3);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[2].name(), "synthetic-2");
    }
}
