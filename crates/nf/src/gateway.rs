//! MediaGateway: a conferencing/media/voice gateway NF.
//!
//! Gateways are the largest NF population in the enterprise survey the
//! paper builds its abstraction on (§IV-A cites "Gateways (for
//! conferencing/media/voice)" first among the examined NFs, and §IV-A1
//! lists gateways among the `modify` users). This one implements the
//! classic media-gateway data path: classify flows into service classes by
//! destination port range, stamp the DSCP/ToS byte accordingly (expedited
//! forwarding for voice, assured forwarding for video), and steer each
//! class to its media-processing next hop.

use std::fmt;
use std::net::Ipv4Addr;

use speedybox_mat::HeaderAction;
use speedybox_packet::{FieldValue, HeaderField, Packet};

use crate::nf::{Nf, NfContext, NfVerdict};

/// A service class the gateway recognizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceClass {
    /// Diagnostic name ("voice", "video", ...).
    pub name: String,
    /// Destination-port range (inclusive) selecting the class.
    pub ports: (u16, u16),
    /// DSCP/ToS byte to stamp (e.g. 0xB8 = Expedited Forwarding).
    pub tos: u8,
    /// Next-hop media processor the class is steered to.
    pub next_hop: Ipv4Addr,
}

impl ServiceClass {
    fn matches(&self, port: u16) -> bool {
        (self.ports.0..=self.ports.1).contains(&port)
    }
}

/// The media-gateway NF.
#[derive(Debug, Clone)]
pub struct MediaGateway {
    classes: Vec<ServiceClass>,
}

impl MediaGateway {
    /// Creates a gateway with the given service classes (first match by
    /// destination port wins; unmatched traffic is forwarded untouched).
    #[must_use]
    pub fn new(classes: Vec<ServiceClass>) -> Self {
        Self { classes }
    }

    /// A typical VoIP/video deployment: RTP voice on 16384-16999 (EF),
    /// video on 17000-17999 (AF41), signalling on 5060-5061 (CS3).
    #[must_use]
    pub fn voip_defaults() -> Self {
        Self::new(vec![
            ServiceClass {
                name: "voice".into(),
                ports: (16384, 16999),
                tos: 0xB8,
                next_hop: Ipv4Addr::new(10, 30, 0, 1),
            },
            ServiceClass {
                name: "video".into(),
                ports: (17000, 17999),
                tos: 0x88,
                next_hop: Ipv4Addr::new(10, 30, 0, 2),
            },
            ServiceClass {
                name: "signalling".into(),
                ports: (5060, 5061),
                tos: 0x60,
                next_hop: Ipv4Addr::new(10, 30, 0, 3),
            },
        ])
    }

    /// The class a destination port falls into, if any.
    #[must_use]
    pub fn classify_port(&self, dst_port: u16) -> Option<&ServiceClass> {
        self.classes.iter().find(|c| c.matches(dst_port))
    }

    /// Number of configured classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

impl fmt::Display for MediaGateway {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MediaGateway({} classes)", self.classes.len())
    }
}

impl Nf for MediaGateway {
    fn name(&self) -> &str {
        "media-gateway"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let Ok(tuple) = packet.five_tuple() else {
            ctx.ops.drops += 1;
            return NfVerdict::Drop;
        };
        ctx.ops.parses += 1;
        // Linear class scan, like the firewall's ACL walk.
        ctx.ops.acl_rules_scanned += self
            .classes
            .iter()
            .position(|c| c.matches(tuple.dst_port))
            .map_or(self.classes.len(), |i| i + 1) as u64;
        let action = match self.classify_port(tuple.dst_port) {
            Some(class) => HeaderAction::Modify(vec![
                (HeaderField::Tos, FieldValue::from(class.tos)),
                (HeaderField::DstIp, FieldValue::from(class.next_hop)),
            ]),
            None => HeaderAction::Forward,
        };
        if !action.apply(packet, ctx.ops).unwrap_or(false) {
            return NfVerdict::Drop;
        }
        // SPEEDYBOX-INTEGRATION-BEGIN (gateway: 4 lines)
        if let Some(inst) = ctx.instrument {
            let fid = inst.extract_fid(packet).unwrap_or_default();
            inst.add_header_action(fid, action, ctx.ops);
        }
        // SPEEDYBOX-INTEGRATION-END
        NfVerdict::Forward
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn packet(dst_port: u16) -> Packet {
        let mut p = PacketBuilder::udp()
            .src("10.0.0.5:9000".parse().unwrap())
            .dst(format!("10.99.0.1:{dst_port}").parse().unwrap())
            .payload(b"rtp-ish")
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn voice_gets_expedited_forwarding() {
        let mut gw = MediaGateway::voip_defaults();
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet(16500);
        assert_eq!(gw.process(&mut p, &mut ctx), NfVerdict::Forward);
        assert_eq!(p.get_field(HeaderField::Tos).unwrap().as_byte(), 0xB8);
        assert_eq!(p.get_field(HeaderField::DstIp).unwrap().as_ipv4(), Ipv4Addr::new(10, 30, 0, 1));
        assert!(p.verify_checksums().unwrap());
    }

    #[test]
    fn video_and_signalling_classes() {
        let gw = MediaGateway::voip_defaults();
        assert_eq!(gw.classify_port(17500).unwrap().name, "video");
        assert_eq!(gw.classify_port(5060).unwrap().name, "signalling");
        assert!(gw.classify_port(80).is_none());
        assert_eq!(gw.class_count(), 3);
    }

    #[test]
    fn unmatched_traffic_passes_untouched() {
        let mut gw = MediaGateway::voip_defaults();
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet(443);
        let before = p.as_bytes().to_vec();
        assert_eq!(gw.process(&mut p, &mut ctx), NfVerdict::Forward);
        assert_eq!(p.as_bytes(), &before[..]);
    }

    #[test]
    fn records_modify_with_tos() {
        use std::sync::Arc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut gw = MediaGateway::voip_defaults();
        let inst =
            NfInstrument::new(Arc::new(LocalMat::new(NfId::new(0))), Arc::new(EventTable::new()));
        let mut ops = OpCounter::default();
        let mut p = packet(16400);
        let mut ctx = NfContext::instrumented(&inst, &mut ops);
        gw.process(&mut p, &mut ctx);
        let rule = inst.local_mat().rule(p.fid().unwrap()).unwrap();
        match &rule.header_actions[0] {
            HeaderAction::Modify(writes) => {
                assert!(writes.iter().any(|(f, _)| *f == HeaderField::Tos));
                assert!(writes.iter().any(|(f, _)| *f == HeaderField::DstIp));
            }
            other => panic!("expected modify, got {other}"),
        }
    }

    #[test]
    fn consolidates_with_downstream_nat() {
        // Gateway ToS marking survives consolidation with a later modify
        // (platform integration is covered by the workspace tests; this
        // checks the MAT-level merge).
        use speedybox_mat::consolidate::consolidate;
        let gw_action = HeaderAction::Modify(vec![
            (HeaderField::Tos, FieldValue::from(0xB8u8)),
            (HeaderField::DstIp, FieldValue::from(Ipv4Addr::new(10, 30, 0, 1))),
        ]);
        let nat_action = HeaderAction::modify(HeaderField::SrcIp, Ipv4Addr::new(198, 51, 100, 1));
        let merged = consolidate(&[gw_action, nat_action]);
        assert_eq!(merged.modifies().len(), 3);
    }
}
