//! VpnGateway: the encap/decap NF of the paper's action taxonomy (§IV-A1).
//!
//! "VPNs add an Authentication Header (AH) for each packet before
//! forwarding (encap), and remove the AH when the other end receives the
//! packet (decap)." A pair of these in one chain exercises the stack-based
//! encap/decap annihilation in the consolidation algorithm.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use speedybox_mat::{EncapSpec, HeaderAction};
use speedybox_packet::Packet;

use crate::nf::{Nf, NfContext, NfVerdict, StateSnapshot};

/// Direction of the VPN gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpnMode {
    /// Tunnel ingress: add the AH.
    Encap,
    /// Tunnel egress: strip the AH.
    Decap,
}

/// A VPN gateway NF (one direction of a tunnel).
#[derive(Debug, Clone)]
pub struct VpnGateway {
    mode: VpnMode,
    spi: u32,
    seq: Arc<AtomicU32>,
}

impl VpnGateway {
    /// Tunnel ingress for security association `spi`.
    #[must_use]
    pub fn encap(spi: u32) -> Self {
        Self { mode: VpnMode::Encap, spi, seq: Arc::new(AtomicU32::new(0)) }
    }

    /// Tunnel egress for security association `spi`.
    #[must_use]
    pub fn decap(spi: u32) -> Self {
        Self { mode: VpnMode::Decap, spi, seq: Arc::new(AtomicU32::new(0)) }
    }

    /// The gateway's direction.
    #[must_use]
    pub fn mode(&self) -> VpnMode {
        self.mode
    }

    /// Packets tunneled so far.
    #[must_use]
    pub fn packets_tunneled(&self) -> u32 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl Nf for VpnGateway {
    fn name(&self) -> &str {
        match self.mode {
            VpnMode::Encap => "vpn-encap",
            VpnMode::Decap => "vpn-decap",
        }
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let action = match self.mode {
            VpnMode::Encap => HeaderAction::Encap(EncapSpec::new(self.spi)),
            VpnMode::Decap => HeaderAction::Decap(EncapSpec::new(self.spi)),
        };
        self.seq.fetch_add(1, Ordering::Relaxed);
        match action.apply(packet, ctx.ops) {
            Ok(true) => {}
            // Decap of an untunneled packet: not ours, drop it (recording
            // the drop so the fast path drops too).
            _ => {
                ctx.ops.drops += 1;
                if let Some(inst) = ctx.instrument {
                    let fid = inst.extract_fid(packet).unwrap_or_default();
                    inst.add_header_action(fid, HeaderAction::Drop, ctx.ops);
                }
                return NfVerdict::Drop;
            }
        }
        // SPEEDYBOX-INTEGRATION-BEGIN (vpn: 4 lines)
        if let Some(inst) = ctx.instrument {
            let fid = inst.extract_fid(packet).unwrap_or_default();
            inst.add_header_action(fid, action, ctx.ops);
        }
        // SPEEDYBOX-INTEGRATION-END
        NfVerdict::Forward
    }

    fn snapshot_state(&self) -> Option<StateSnapshot> {
        // The tunnel sequence counter is aggregate (not per-flow, so
        // `has_flow_state` stays false) but still survives recovery so
        // `packets_tunneled` stays monotone across a crash.
        Some(StateSnapshot::new(self.seq.load(Ordering::Relaxed)))
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let Some(seq) = snapshot.downcast::<u32>() else {
            return false;
        };
        self.seq.store(*seq, Ordering::Relaxed);
        true
    }

    fn crash(&mut self) {
        self.seq.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn packet() -> Packet {
        let mut p = PacketBuilder::tcp().payload(b"tunnel me").build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn encap_adds_ah() {
        let mut gw = VpnGateway::encap(0x42);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet();
        assert_eq!(gw.process(&mut p, &mut ctx), NfVerdict::Forward);
        assert_eq!(p.ah_depth(), 1);
        assert_eq!(gw.packets_tunneled(), 1);
    }

    #[test]
    fn decap_strips_ah() {
        let mut ingress = VpnGateway::encap(0x42);
        let mut egress = VpnGateway::decap(0x42);
        let mut ops = OpCounter::default();
        let mut p = packet();
        let original = p.as_bytes().to_vec();
        {
            let mut ctx = NfContext::baseline(&mut ops);
            ingress.process(&mut p, &mut ctx);
        }
        {
            let mut ctx = NfContext::baseline(&mut ops);
            assert_eq!(egress.process(&mut p, &mut ctx), NfVerdict::Forward);
        }
        assert_eq!(p.ah_depth(), 0);
        assert_eq!(p.as_bytes(), &original[..]);
    }

    #[test]
    fn decap_of_plain_packet_drops() {
        let mut egress = VpnGateway::decap(0x42);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet();
        assert_eq!(egress.process(&mut p, &mut ctx), NfVerdict::Drop);
    }

    #[test]
    fn records_encap_action() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut gw = VpnGateway::encap(0x42);
        let inst = NfInstrument::new(
            StdArc::new(LocalMat::new(NfId::new(0))),
            StdArc::new(EventTable::new()),
        );
        let mut ops = OpCounter::default();
        let mut p = packet();
        let mut ctx = NfContext::instrumented(&inst, &mut ops);
        gw.process(&mut p, &mut ctx);
        let rule = inst.local_mat().rule(p.fid().unwrap()).unwrap();
        assert_eq!(rule.header_actions, vec![HeaderAction::Encap(EncapSpec::new(0x42))]);
    }

    #[test]
    fn mode_accessor() {
        assert_eq!(VpnGateway::encap(1).mode(), VpnMode::Encap);
        assert_eq!(VpnGateway::decap(1).mode(), VpnMode::Decap);
    }
}
