//! IPFilter: a Click-style firewall (paper §VI-C).
//!
//! "A Firewall prototype that parses flow headers and checks against a
//! header blacklist with linear scanning. For flows that match the
//! blacklist, we set them with drop actions, or otherwise with forward
//! actions." The linear scan is deliberately kept — it is what makes
//! initial packets expensive in Fig 4 and subsequent packets cheap once
//! consolidated.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use speedybox_mat::HeaderAction;
use speedybox_packet::{FiveTuple, Packet, Protocol};

use crate::nf::{Nf, NfContext, NfVerdict};

/// The verdict an ACL rule assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclVerdict {
    /// Allow the flow.
    Allow,
    /// Deny (drop) the flow.
    Deny,
}

/// An IPv4 prefix (`a.b.c.d/len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// Creates a prefix; `len` is clamped to 32.
    #[must_use]
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        Self { addr: u32::from(addr), len: len.min(32) }
    }

    /// The match-everything prefix `0.0.0.0/0`.
    #[must_use]
    pub fn any() -> Self {
        Self { addr: 0, len: 0 }
    }

    /// True if `ip` falls inside this prefix.
    #[must_use]
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - u32::from(self.len));
        (u32::from(ip) & mask) == (self.addr & mask)
    }
}

impl FromStr for Prefix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "any" {
            return Ok(Prefix::any());
        }
        let (addr, len) = match s.split_once('/') {
            Some((a, l)) => (
                a.parse::<Ipv4Addr>().map_err(|e| e.to_string())?,
                l.parse::<u8>().map_err(|e| e.to_string())?,
            ),
            None => (s.parse::<Ipv4Addr>().map_err(|e| e.to_string())?, 32),
        };
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        Ok(Prefix::new(addr, len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.addr), self.len)
    }
}

/// One ACL entry, evaluated in order (first match wins).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclRule {
    /// Source-address constraint.
    pub src: Prefix,
    /// Destination-address constraint.
    pub dst: Prefix,
    /// Protocol constraint; `None` matches both.
    pub protocol: Option<Protocol>,
    /// Destination-port constraint; `None` matches any.
    pub dst_port: Option<u16>,
    /// Verdict on match.
    pub verdict: AclVerdict,
}

impl AclRule {
    /// An allow-everything rule.
    #[must_use]
    pub fn allow_all() -> Self {
        Self {
            src: Prefix::any(),
            dst: Prefix::any(),
            protocol: None,
            dst_port: None,
            verdict: AclVerdict::Allow,
        }
    }

    /// A rule denying traffic to `dst`.
    #[must_use]
    pub fn deny_dst(dst: Prefix) -> Self {
        Self { src: Prefix::any(), dst, protocol: None, dst_port: None, verdict: AclVerdict::Deny }
    }

    /// True if the rule matches the flow.
    #[must_use]
    pub fn matches(&self, t: &FiveTuple) -> bool {
        self.src.contains(t.src_ip)
            && self.dst.contains(t.dst_ip)
            && self.protocol.is_none_or(|p| p == t.protocol)
            && self.dst_port.is_none_or(|p| p == t.dst_port)
    }
}

/// The IPFilter firewall NF.
///
/// Stateful: the verdict for a flow is computed once by linear ACL scan on
/// the flow's first packet and cached, so subsequent packets pay a hash
/// lookup instead of the scan — "the initialization processes (e.g.,
/// linear matching of ACL lists for new flows)" is what makes initial
/// packets expensive in the paper's Fig 4.
#[derive(Debug, Clone)]
pub struct IpFilter {
    rules: Vec<AclRule>,
    /// Verdict when no rule matches.
    default_verdict: AclVerdict,
    /// Per-flow verdict cache.
    cache: std::sync::Arc<
        parking_lot::Mutex<std::collections::HashMap<speedybox_packet::Fid, AclVerdict>>,
    >,
}

impl IpFilter {
    /// Creates a firewall with the given ACL; unmatched flows are allowed
    /// (blacklist semantics, as in the paper's IPFilter).
    #[must_use]
    pub fn new(rules: Vec<AclRule>) -> Self {
        Self {
            rules,
            default_verdict: AclVerdict::Allow,
            cache: std::sync::Arc::new(parking_lot::Mutex::new(std::collections::HashMap::new())),
        }
    }

    /// A firewall that forwards everything through `n` no-match deny rules
    /// — the paper's Fig 4/Fig 8 configuration where "ACL rules ... are
    /// carefully modified to avoid packet drops" while the scan cost stays
    /// realistic.
    #[must_use]
    pub fn pass_through(n: usize) -> Self {
        let unreachable: Prefix = Prefix::new(Ipv4Addr::new(203, 0, 113, 0), 24);
        Self::new(vec![AclRule::deny_dst(unreachable); n])
    }

    /// Changes the default verdict (whitelist-style firewalls).
    #[must_use]
    pub fn with_default(mut self, verdict: AclVerdict) -> Self {
        self.default_verdict = verdict;
        self
    }

    /// Number of ACL rules.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Linear ACL scan; returns the verdict and the number of rules
    /// examined.
    #[must_use]
    pub fn evaluate(&self, t: &FiveTuple) -> (AclVerdict, usize) {
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.matches(t) {
                return (rule.verdict, i + 1);
            }
        }
        (self.default_verdict, self.rules.len())
    }
}

impl Nf for IpFilter {
    fn name(&self) -> &str {
        "ipfilter"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let Ok(tuple) = packet.five_tuple() else {
            ctx.ops.drops += 1;
            return NfVerdict::Drop;
        };
        ctx.ops.parses += 1;
        let fid = packet.fid().unwrap_or_else(|| tuple.fid());
        ctx.ops.hash_lookups += 1;
        let cached = self.cache.lock().get(&fid).copied();
        let verdict = match cached {
            Some(v) => v,
            None => {
                let (v, scanned) = self.evaluate(&tuple);
                ctx.ops.acl_rules_scanned += scanned as u64;
                self.cache.lock().insert(fid, v);
                ctx.ops.hash_updates += 1;
                v
            }
        };
        // SPEEDYBOX-INTEGRATION-BEGIN (ipfilter: 8 lines)
        if let Some(inst) = ctx.instrument {
            let fid = inst.extract_fid(packet).unwrap_or_default();
            let action = match verdict {
                AclVerdict::Allow => HeaderAction::Forward,
                AclVerdict::Deny => HeaderAction::Drop,
            };
            inst.add_header_action(fid, action, ctx.ops);
        }
        // SPEEDYBOX-INTEGRATION-END
        match verdict {
            AclVerdict::Allow => NfVerdict::Forward,
            AclVerdict::Deny => {
                ctx.ops.drops += 1;
                NfVerdict::Drop
            }
        }
    }

    fn flow_closed(&mut self, fid: speedybox_packet::Fid) {
        self.cache.lock().remove(&fid);
    }

    fn has_flow_state(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<crate::nf::StateSnapshot> {
        Some(crate::nf::StateSnapshot::new(self.cache.lock().clone()))
    }

    fn restore_state(&mut self, snapshot: &crate::nf::StateSnapshot) -> bool {
        let Some(cache) =
            snapshot.downcast::<std::collections::HashMap<speedybox_packet::Fid, AclVerdict>>()
        else {
            return false;
        };
        *self.cache.lock() = cache.clone();
        true
    }

    fn crash(&mut self) {
        // The verdict cache is recomputable from the ACL, so a crash only
        // costs the flows their cached scans — still captured/restored so
        // recovery does not change which packets pay the linear scan.
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn packet(dst: &str) -> Packet {
        let mut p = PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst(format!("{dst}:80").parse().unwrap())
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn prefix_matching() {
        let p: Prefix = "192.168.0.0/16".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(192, 168, 5, 9)));
        assert!(!p.contains(Ipv4Addr::new(192, 169, 0, 1)));
        assert!(Prefix::any().contains(Ipv4Addr::new(1, 2, 3, 4)));
        let host: Prefix = "10.0.0.1".parse().unwrap();
        assert!(host.contains(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!host.contains(Ipv4Addr::new(10, 0, 0, 2)));
    }

    #[test]
    fn prefix_parse_errors() {
        assert!("300.0.0.1/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/40".parse::<Prefix>().is_err());
        assert!("nonsense".parse::<Prefix>().is_err());
    }

    #[test]
    fn blacklist_denies_matching_flow() {
        let mut fw = IpFilter::new(vec![AclRule::deny_dst("10.6.6.0/24".parse().unwrap())]);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        assert_eq!(fw.process(&mut packet("10.6.6.1"), &mut ctx), NfVerdict::Drop);
        assert_eq!(fw.process(&mut packet("10.7.7.1"), &mut ctx), NfVerdict::Forward);
    }

    #[test]
    fn first_match_wins() {
        let mut fw = IpFilter::new(vec![
            AclRule {
                src: Prefix::any(),
                dst: "10.6.6.1".parse().unwrap(),
                protocol: None,
                dst_port: Some(80),
                verdict: AclVerdict::Allow,
            },
            AclRule::deny_dst("10.6.6.0/24".parse().unwrap()),
        ]);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        assert_eq!(fw.process(&mut packet("10.6.6.1"), &mut ctx), NfVerdict::Forward);
        assert_eq!(fw.process(&mut packet("10.6.6.2"), &mut ctx), NfVerdict::Drop);
    }

    #[test]
    fn scan_cost_is_linear() {
        let mut fw = IpFilter::pass_through(50);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        fw.process(&mut packet("10.0.0.2"), &mut ctx);
        assert_eq!(ops.acl_rules_scanned, 50);
    }

    #[test]
    fn default_verdict_configurable() {
        let mut fw = IpFilter::new(vec![]).with_default(AclVerdict::Deny);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        assert_eq!(fw.process(&mut packet("10.0.0.2"), &mut ctx), NfVerdict::Drop);
    }

    #[test]
    fn records_matching_header_action() {
        use std::sync::Arc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut fw = IpFilter::new(vec![AclRule::deny_dst("10.6.6.0/24".parse().unwrap())]);
        let inst =
            NfInstrument::new(Arc::new(LocalMat::new(NfId::new(0))), Arc::new(EventTable::new()));
        let mut ops = OpCounter::default();

        let mut denied = packet("10.6.6.1");
        let mut ctx = NfContext::instrumented(&inst, &mut ops);
        fw.process(&mut denied, &mut ctx);
        let rule = inst.local_mat().rule(denied.fid().unwrap()).unwrap();
        assert_eq!(rule.header_actions, vec![HeaderAction::Drop]);

        let mut allowed = packet("10.7.7.1");
        let mut ctx = NfContext::instrumented(&inst, &mut ops);
        fw.process(&mut allowed, &mut ctx);
        let rule = inst.local_mat().rule(allowed.fid().unwrap()).unwrap();
        assert_eq!(rule.header_actions, vec![HeaderAction::Forward]);
    }

    #[test]
    fn protocol_constraint() {
        let rule = AclRule {
            src: Prefix::any(),
            dst: Prefix::any(),
            protocol: Some(Protocol::Udp),
            dst_port: None,
            verdict: AclVerdict::Deny,
        };
        let tcp = packet("10.0.0.2").five_tuple().unwrap();
        assert!(!rule.matches(&tcp));
    }

    #[test]
    fn pass_through_never_drops() {
        let mut fw = IpFilter::pass_through(9);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        for i in 0..20 {
            assert_eq!(
                fw.process(&mut packet(&format!("10.0.{i}.1")), &mut ctx),
                NfVerdict::Forward
            );
        }
    }
}
