//! QuotaLimiter: a per-flow volume-quota enforcer.
//!
//! A second showcase of the paper's Observation 2 after
//! [`crate::dosguard`]: each flow gets a byte budget; an IGNORE state
//! function meters consumption, and a registered event flips the flow to
//! `drop` once the quota is exhausted — the mid-stream rule update runs
//! entirely through the Event Table while packets stay on the fast path.
//!
//! (Token-bucket *per-packet* policing is deliberately out of scope: its
//! verdict changes packet to packet, violating Observation 1, exactly the
//! kind of NF §IV-A3 excludes from consolidation. A volume quota is the
//! event-friendly variant.)

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use speedybox_mat::event::RulePatch;
use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::{HeaderAction, StateFunction};
use speedybox_packet::{Fid, Packet};

use crate::nf::{Nf, NfContext, NfVerdict, StateSnapshot};

/// The per-flow quota-enforcement NF.
#[derive(Debug, Clone)]
pub struct QuotaLimiter {
    consumed: Arc<Mutex<HashMap<Fid, u64>>>,
    quota_bytes: u64,
}

impl QuotaLimiter {
    /// Creates a limiter allowing `quota_bytes` per flow.
    #[must_use]
    pub fn new(quota_bytes: u64) -> Self {
        Self { consumed: Arc::new(Mutex::new(HashMap::new())), quota_bytes }
    }

    /// Bytes a flow has consumed so far.
    #[must_use]
    pub fn consumed(&self, fid: Fid) -> u64 {
        self.consumed.lock().get(&fid).copied().unwrap_or(0)
    }

    /// True once a flow's quota is exhausted.
    #[must_use]
    pub fn is_exhausted(&self, fid: Fid) -> bool {
        self.consumed(fid) > self.quota_bytes
    }

    fn meter(consumed: &Mutex<HashMap<Fid, u64>>, fid: Fid, bytes: u64) -> u64 {
        let mut map = consumed.lock();
        let c = map.entry(fid).or_insert(0);
        *c += bytes;
        *c
    }
}

impl Nf for QuotaLimiter {
    fn name(&self) -> &str {
        "quota-limiter"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let fid = packet
            .fid()
            .unwrap_or_else(|| packet.five_tuple().map(|t| t.fid()).unwrap_or_default());
        ctx.ops.parses += 1;
        let total = Self::meter(&self.consumed, fid, packet.len() as u64);
        ctx.ops.state_updates += 1;
        let exhausted = total > self.quota_bytes;
        // SPEEDYBOX-INTEGRATION-BEGIN (quota-limiter: 18 lines)
        if let Some(inst) = ctx.instrument {
            inst.add_header_action(
                fid,
                if exhausted { HeaderAction::Drop } else { HeaderAction::Forward },
                ctx.ops,
            );
            let consumed = Arc::clone(&self.consumed);
            inst.add_state_function_handle(
                fid,
                StateFunction::new("quota.meter", PayloadAccess::Ignore, move |sfctx| {
                    Self::meter(&consumed, sfctx.fid, sfctx.packet.len() as u64);
                    sfctx.ops.state_updates += 1;
                }),
                ctx.ops,
            );
            let consumed = Arc::clone(&self.consumed);
            let quota = self.quota_bytes;
            inst.register_event(
                fid,
                "quota.exhausted",
                move |fid| consumed.lock().get(&fid).copied().unwrap_or(0) > quota,
                |_| RulePatch::set_action(HeaderAction::Drop),
            );
        }
        // SPEEDYBOX-INTEGRATION-END
        if exhausted {
            ctx.ops.drops += 1;
            NfVerdict::Drop
        } else {
            NfVerdict::Forward
        }
    }

    fn flow_closed(&mut self, fid: Fid) {
        self.consumed.lock().remove(&fid);
    }

    fn has_flow_state(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<StateSnapshot> {
        Some(StateSnapshot::new(self.consumed.lock().clone()))
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let Some(map) = snapshot.downcast::<HashMap<Fid, u64>>() else {
            return false;
        };
        *self.consumed.lock() = map.clone();
        true
    }

    fn crash(&mut self) {
        self.consumed.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn packet(payload: usize) -> Packet {
        let mut p = PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(&vec![0xaa; payload])
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn meters_bytes_and_blocks_past_quota() {
        let frame = packet(100).len() as u64;
        let mut limiter = QuotaLimiter::new(frame * 3);
        let mut ops = OpCounter::default();
        let mut verdicts = Vec::new();
        for _ in 0..5 {
            let mut p = packet(100);
            let mut ctx = NfContext::baseline(&mut ops);
            verdicts.push(limiter.process(&mut p, &mut ctx));
        }
        assert_eq!(
            verdicts,
            vec![
                NfVerdict::Forward,
                NfVerdict::Forward,
                NfVerdict::Forward,
                NfVerdict::Drop,
                NfVerdict::Drop
            ]
        );
        assert!(limiter.is_exhausted(packet(0).fid().unwrap()));
    }

    #[test]
    fn flow_closed_resets_quota() {
        let mut limiter = QuotaLimiter::new(10);
        let mut ops = OpCounter::default();
        let mut p = packet(100);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            limiter.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        assert!(limiter.consumed(fid) > 0);
        limiter.flow_closed(fid);
        assert_eq!(limiter.consumed(fid), 0);
    }

    #[test]
    fn event_flips_rule_on_fast_path() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::state_fn::SfContext;
        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let frame = packet(100).len() as u64;
        let mut limiter = QuotaLimiter::new(frame * 2);
        let events = StdArc::new(EventTable::new());
        let inst = NfInstrument::new(StdArc::new(LocalMat::new(NfId::new(0))), events.clone());
        let mut ops = OpCounter::default();
        let mut initial = packet(100);
        {
            let mut ctx = NfContext::instrumented(&inst, &mut ops);
            limiter.process(&mut initial, &mut ctx);
        }
        let fid = initial.fid().unwrap();
        assert!(events.check(fid, &mut ops).is_empty(), "quota not yet exhausted");
        // Burn the quota through the recorded state function (fast path).
        let rule = inst.local_mat().rule(fid).unwrap();
        for _ in 0..2 {
            let mut sub = packet(100);
            let mut sfctx = SfContext { packet: &mut sub, fid, ops: &mut ops, len_adjust: 0 };
            rule.state_functions[0].invoke(&mut sfctx);
        }
        let fired = events.check(fid, &mut ops);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1.header_actions, Some(vec![HeaderAction::Drop]));
    }
}
