//! Multi-pattern payload inspection: a from-scratch Aho–Corasick automaton.
//!
//! Snort's content matching is multi-pattern string search over the packet
//! payload; this module provides the same primitive for [`crate::snort`]
//! without pulling in a third-party matcher. Classic construction: a byte
//! trie plus BFS failure links, with output sets merged along failure
//! chains.

use std::collections::VecDeque;

/// A match found in the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Match {
    /// Index of the matched pattern (as passed to [`AhoCorasick::new`]).
    pub pattern: usize,
    /// Byte offset one past the end of the match.
    pub end: usize,
}

#[derive(Debug, Clone, Default)]
struct Node {
    /// Child state per byte; sparse (most payload bytes miss).
    children: Vec<(u8, u32)>,
    /// Failure link.
    fail: u32,
    /// Patterns ending at this state.
    outputs: Vec<usize>,
}

impl Node {
    fn child(&self, byte: u8) -> Option<u32> {
        self.children.iter().find(|(b, _)| *b == byte).map(|(_, s)| *s)
    }
}

/// An Aho–Corasick multi-pattern matcher over byte strings.
///
/// ```
/// use speedybox_nf::AhoCorasick;
///
/// let ac = AhoCorasick::new(&[b"evil".to_vec(), b"virus".to_vec()]);
/// let matches = ac.find_all(b"an evil virus payload");
/// assert_eq!(matches.len(), 2);
/// assert!(ac.find_first(b"clean traffic").is_none());
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_count: usize,
}

impl AhoCorasick {
    /// Builds the automaton from `patterns`. Empty patterns are ignored
    /// (they would match everywhere and Snort forbids empty `content`).
    #[must_use]
    pub fn new(patterns: &[Vec<u8>]) -> Self {
        let mut nodes = vec![Node::default()];
        // Phase 1: trie.
        for (id, pat) in patterns.iter().enumerate() {
            if pat.is_empty() {
                continue;
            }
            let mut state = 0u32;
            for &byte in pat {
                state = match nodes[state as usize].child(byte) {
                    Some(next) => next,
                    None => {
                        let next = u32::try_from(nodes.len())
                            .expect("automaton size bounded by total pattern bytes");
                        nodes.push(Node::default());
                        nodes[state as usize].children.push((byte, next));
                        next
                    }
                };
            }
            nodes[state as usize].outputs.push(id);
        }
        // Phase 2: BFS failure links + output merging.
        let mut queue = VecDeque::new();
        let root_children: Vec<(u8, u32)> = nodes[0].children.clone();
        for (_, child) in &root_children {
            nodes[*child as usize].fail = 0;
            queue.push_back(*child);
        }
        while let Some(state) = queue.pop_front() {
            let children: Vec<(u8, u32)> = nodes[state as usize].children.clone();
            for (byte, child) in children {
                queue.push_back(child);
                // Walk failure links of the parent until a state with a
                // `byte` transition (or the root) is found.
                let mut f = nodes[state as usize].fail;
                loop {
                    if let Some(next) = nodes[f as usize].child(byte) {
                        if next != child {
                            nodes[child as usize].fail = next;
                        }
                        break;
                    }
                    if f == 0 {
                        nodes[child as usize].fail = 0;
                        break;
                    }
                    f = nodes[f as usize].fail;
                }
                let fail = nodes[child as usize].fail;
                let inherited = nodes[fail as usize].outputs.clone();
                nodes[child as usize].outputs.extend(inherited);
            }
        }
        Self { nodes, pattern_count: patterns.len() }
    }

    /// Number of patterns the automaton was built from.
    #[must_use]
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    fn step(&self, state: u32, byte: u8) -> u32 {
        let mut s = state;
        loop {
            if let Some(next) = self.nodes[s as usize].child(byte) {
                return next;
            }
            if s == 0 {
                return 0;
            }
            s = self.nodes[s as usize].fail;
        }
    }

    /// Finds all pattern occurrences in `haystack`, in end-offset order.
    #[must_use]
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, &byte) in haystack.iter().enumerate() {
            state = self.step(state, byte);
            for &pattern in &self.nodes[state as usize].outputs {
                out.push(Match { pattern, end: i + 1 });
            }
        }
        out
    }

    /// Finds the first match, if any (cheaper than [`AhoCorasick::find_all`]
    /// when presence is all that matters).
    #[must_use]
    pub fn find_first(&self, haystack: &[u8]) -> Option<Match> {
        let mut state = 0u32;
        for (i, &byte) in haystack.iter().enumerate() {
            state = self.step(state, byte);
            if let Some(&pattern) = self.nodes[state as usize].outputs.first() {
                return Some(Match { pattern, end: i + 1 });
            }
        }
        None
    }

    /// Returns the set of distinct pattern indices present in `haystack`,
    /// sorted ascending.
    #[must_use]
    pub fn matching_patterns(&self, haystack: &[u8]) -> Vec<usize> {
        let mut hits: Vec<usize> = self.find_all(haystack).into_iter().map(|m| m.pattern).collect();
        hits.sort_unstable();
        hits.dedup();
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(ps: &[&str]) -> Vec<Vec<u8>> {
        ps.iter().map(|p| p.as_bytes().to_vec()).collect()
    }

    #[test]
    fn finds_single_pattern() {
        let ac = AhoCorasick::new(&pats(&["abc"]));
        let m = ac.find_all(b"xxabcxx");
        assert_eq!(m, vec![Match { pattern: 0, end: 5 }]);
    }

    #[test]
    fn finds_overlapping_patterns() {
        let ac = AhoCorasick::new(&pats(&["he", "she", "his", "hers"]));
        let found = ac.matching_patterns(b"ushers");
        // "ushers" contains "she", "he", "hers".
        assert_eq!(found, vec![0, 1, 3]);
    }

    #[test]
    fn suffix_pattern_found_via_failure_links() {
        let ac = AhoCorasick::new(&pats(&["bc", "abcd"]));
        let found = ac.matching_patterns(b"xabcdx");
        assert_eq!(found, vec![0, 1]);
    }

    #[test]
    fn no_match_returns_empty() {
        let ac = AhoCorasick::new(&pats(&["evil", "virus"]));
        assert!(ac.find_all(b"perfectly clean payload").is_empty());
        assert!(ac.find_first(b"perfectly clean payload").is_none());
    }

    #[test]
    fn find_first_stops_early() {
        let ac = AhoCorasick::new(&pats(&["aa"]));
        let m = ac.find_first(b"aaaa").unwrap();
        assert_eq!(m.end, 2);
    }

    #[test]
    fn empty_patterns_ignored() {
        let ac = AhoCorasick::new(&pats(&["", "x"]));
        assert_eq!(ac.matching_patterns(b"x"), vec![1]);
        assert!(ac.find_all(b"yyy").is_empty());
    }

    #[test]
    fn empty_haystack() {
        let ac = AhoCorasick::new(&pats(&["a"]));
        assert!(ac.find_all(b"").is_empty());
    }

    #[test]
    fn repeated_pattern_matches_each_occurrence() {
        let ac = AhoCorasick::new(&pats(&["ab"]));
        let m = ac.find_all(b"abab");
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].end, 2);
        assert_eq!(m[1].end, 4);
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[vec![0x00, 0xff, 0x00]]);
        assert!(ac.find_first(&[0x01, 0x00, 0xff, 0x00, 0x02]).is_some());
    }

    #[test]
    fn identical_patterns_both_reported() {
        let ac = AhoCorasick::new(&pats(&["dup", "dup"]));
        let found = ac.matching_patterns(b"a dup here");
        assert_eq!(found, vec![0, 1]);
    }

    #[test]
    fn matches_against_reference_naive_search() {
        // Cross-check against naive substring search on pseudo-random data.
        let patterns = pats(&["abc", "bca", "aab", "ccc", "cab"]);
        let ac = AhoCorasick::new(&patterns);
        let mut text = Vec::new();
        let mut seed = 0x12345u32;
        for _ in 0..2000 {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            #[allow(clippy::cast_possible_truncation)] // reduced mod 3 below
            let byte = (seed >> 16) as u8;
            text.push(b'a' + byte % 3);
        }
        let got = ac.matching_patterns(&text);
        let want: Vec<usize> = patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| text.windows(p.len()).any(|w| w == p.as_slice()))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
    }
}
