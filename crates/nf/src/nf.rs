//! The network-function trait and processing context.
//!
//! An [`Nf`] does its real packet processing in [`Nf::process`] — that is
//! the *original* data path the paper's baselines measure. When the chain
//! runs under SpeedyBox, the platform hands each NF an
//! [`speedybox_mat::NfInstrument`] and only routes *initial* packets
//! through `process`; the NF records its per-flow behaviour through the
//! instrument so subsequent packets can take the consolidated fast path.

use std::fmt;

use speedybox_mat::{NfInstrument, OpCounter};
use speedybox_packet::{Fid, Packet};

/// What the NF decided to do with the packet on the original path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfVerdict {
    /// Pass the packet to the next NF.
    Forward,
    /// Discard the packet.
    Drop,
}

impl NfVerdict {
    /// True if the packet survives.
    #[must_use]
    pub fn survives(self) -> bool {
        matches!(self, NfVerdict::Forward)
    }
}

/// Per-invocation context handed to [`Nf::process`].
#[derive(Debug)]
pub struct NfContext<'a> {
    /// SpeedyBox instrumentation handle. `None` when the chain runs as the
    /// uninstrumented baseline ("Original" in the paper's figures); the NF
    /// must behave identically either way — recording is side-effect-free
    /// with respect to packet processing (§IV-B).
    pub instrument: Option<&'a NfInstrument>,
    /// Operation counter for cost accounting.
    pub ops: &'a mut OpCounter,
}

impl<'a> NfContext<'a> {
    /// A baseline context with no instrumentation.
    pub fn baseline(ops: &'a mut OpCounter) -> Self {
        Self { instrument: None, ops }
    }

    /// An instrumented context.
    pub fn instrumented(instrument: &'a NfInstrument, ops: &'a mut OpCounter) -> Self {
        Self { instrument: Some(instrument), ops }
    }
}

/// A network function in a service chain.
///
/// Object-safe: chains hold `Box<dyn Nf>`. Implementations live in this
/// crate's sibling modules; external NFs can implement the trait too.
pub trait Nf: Send {
    /// Short diagnostic name ("snort", "maglev", ...).
    fn name(&self) -> &str;

    /// Processes one packet on the original data path, mutating it in
    /// place, and returns the verdict. When `ctx.instrument` is present the
    /// packet is a flow-initial packet under SpeedyBox and the NF should
    /// record its per-flow header action, state functions and events.
    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict;

    /// Notification that a flow has closed (FIN/RST seen); the NF should
    /// release per-flow state. Default: nothing to release.
    fn flow_closed(&mut self, fid: Fid) {
        let _ = fid;
    }
}

impl fmt::Debug for dyn Nf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nf({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;

    impl Nf for Nop {
        fn name(&self) -> &str {
            "nop"
        }

        fn process(&mut self, _packet: &mut Packet, _ctx: &mut NfContext<'_>) -> NfVerdict {
            NfVerdict::Forward
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut nf: Box<dyn Nf> = Box::new(Nop);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = speedybox_packet::PacketBuilder::tcp().build();
        assert_eq!(nf.process(&mut p, &mut ctx), NfVerdict::Forward);
        assert_eq!(format!("{nf:?}"), "Nf(nop)");
        nf.flow_closed(Fid::new(1));
    }

    #[test]
    fn verdict_survival() {
        assert!(NfVerdict::Forward.survives());
        assert!(!NfVerdict::Drop.survives());
    }
}
