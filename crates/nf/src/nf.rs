//! The network-function trait and processing context.
//!
//! An [`Nf`] does its real packet processing in [`Nf::process`] — that is
//! the *original* data path the paper's baselines measure. When the chain
//! runs under SpeedyBox, the platform hands each NF an
//! [`speedybox_mat::NfInstrument`] and only routes *initial* packets
//! through `process`; the NF records its per-flow behaviour through the
//! instrument so subsequent packets can take the consolidated fast path.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use speedybox_mat::{NfInstrument, OpCounter};
use speedybox_packet::{Fid, Packet};

/// What the NF decided to do with the packet on the original path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfVerdict {
    /// Pass the packet to the next NF.
    Forward,
    /// Discard the packet.
    Drop,
}

impl NfVerdict {
    /// True if the packet survives.
    #[must_use]
    pub fn survives(self) -> bool {
        matches!(self, NfVerdict::Forward)
    }
}

/// Per-invocation context handed to [`Nf::process`].
#[derive(Debug)]
pub struct NfContext<'a> {
    /// SpeedyBox instrumentation handle. `None` when the chain runs as the
    /// uninstrumented baseline ("Original" in the paper's figures); the NF
    /// must behave identically either way — recording is side-effect-free
    /// with respect to packet processing (§IV-B).
    pub instrument: Option<&'a NfInstrument>,
    /// Operation counter for cost accounting.
    pub ops: &'a mut OpCounter,
}

impl<'a> NfContext<'a> {
    /// A baseline context with no instrumentation.
    pub fn baseline(ops: &'a mut OpCounter) -> Self {
        Self { instrument: None, ops }
    }

    /// An instrumented context.
    pub fn instrumented(instrument: &'a NfInstrument, ops: &'a mut OpCounter) -> Self {
        Self { instrument: Some(instrument), ops }
    }
}

/// An opaque, immutable capture of one NF's internal state at a packet
/// boundary.
///
/// The payload is type-erased so the platform's checkpoint/recovery
/// machinery can hold a uniform `Vec<Option<StateSnapshot>>` per chain
/// without knowing any NF's concrete state type. Each NF downcasts its own
/// snapshots back in [`Nf::restore_state`]; a snapshot handed to the wrong
/// NF simply fails to downcast and restore reports `false`.
///
/// Snapshots are cheap to clone (the payload is behind an `Arc`) and must
/// be *deep* captures: an NF whose live state sits in an
/// `Arc<Mutex<...>>` clones the contents, not the handle, so later
/// processing never mutates a taken snapshot.
#[derive(Clone)]
pub struct StateSnapshot {
    payload: Arc<dyn Any + Send + Sync>,
}

impl StateSnapshot {
    /// Wraps a concrete state capture.
    pub fn new<T: Any + Send + Sync>(state: T) -> Self {
        Self { payload: Arc::new(state) }
    }

    /// The concrete capture, if this snapshot holds a `T`.
    #[must_use]
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl fmt::Debug for StateSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StateSnapshot(..)")
    }
}

/// A network function in a service chain.
///
/// Object-safe: chains hold `Box<dyn Nf>`. Implementations live in this
/// crate's sibling modules; external NFs can implement the trait too.
pub trait Nf: Send {
    /// Short diagnostic name ("snort", "maglev", ...).
    fn name(&self) -> &str;

    /// Processes one packet on the original data path, mutating it in
    /// place, and returns the verdict. When `ctx.instrument` is present the
    /// packet is a flow-initial packet under SpeedyBox and the NF should
    /// record its per-flow header action, state functions and events.
    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict;

    /// Notification that a flow has closed (FIN/RST seen); the NF should
    /// release per-flow state. Default: nothing to release.
    fn flow_closed(&mut self, fid: Fid) {
        let _ = fid;
    }

    /// True if this NF keeps per-flow state that a crash would lose (NAT
    /// mappings, flow counters, connection tracking, ...). Stateless NFs
    /// keep the `false` default. An NF that returns `true` here but leaves
    /// [`Nf::snapshot_state`] unimplemented is flagged by the verifier
    /// (SBX013): its state is unrecoverable after a crash.
    fn has_flow_state(&self) -> bool {
        false
    }

    /// Captures the NF's internal state at the current packet boundary.
    /// Default: `None` (nothing to capture).
    fn snapshot_state(&self) -> Option<StateSnapshot> {
        None
    }

    /// Replaces the NF's internal state with a previously captured
    /// snapshot. Returns `true` if the snapshot was recognized and
    /// applied; `false` (the default) means the payload was foreign and
    /// the state is unchanged.
    fn restore_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let _ = snapshot;
        false
    }

    /// Simulates a crash-restart: drops all internal state, as a freshly
    /// exec'd NF process would start. Default: nothing to lose.
    fn crash(&mut self) {}
}

impl fmt::Debug for dyn Nf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nf({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;

    impl Nf for Nop {
        fn name(&self) -> &str {
            "nop"
        }

        fn process(&mut self, _packet: &mut Packet, _ctx: &mut NfContext<'_>) -> NfVerdict {
            NfVerdict::Forward
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut nf: Box<dyn Nf> = Box::new(Nop);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = speedybox_packet::PacketBuilder::tcp().build();
        assert_eq!(nf.process(&mut p, &mut ctx), NfVerdict::Forward);
        assert_eq!(format!("{nf:?}"), "Nf(nop)");
        nf.flow_closed(Fid::new(1));
    }

    #[test]
    fn verdict_survival() {
        assert!(NfVerdict::Forward.survives());
        assert!(!NfVerdict::Drop.survives());
    }

    #[test]
    fn stateless_defaults_decline_snapshots() {
        let mut nf: Box<dyn Nf> = Box::new(Nop);
        assert!(!nf.has_flow_state());
        assert!(nf.snapshot_state().is_none());
        assert!(!nf.restore_state(&StateSnapshot::new(7u32)));
        nf.crash(); // must be a no-op, not a panic
    }

    #[test]
    fn snapshot_downcasts_to_its_own_type_only() {
        let snap = StateSnapshot::new(vec![1u8, 2, 3]);
        assert_eq!(snap.downcast::<Vec<u8>>(), Some(&vec![1u8, 2, 3]));
        assert!(snap.downcast::<String>().is_none());
        // Cloning shares the payload.
        let dup = snap.clone();
        assert_eq!(dup.downcast::<Vec<u8>>(), Some(&vec![1u8, 2, 3]));
        assert_eq!(format!("{snap:?}"), "StateSnapshot(..)");
    }
}
