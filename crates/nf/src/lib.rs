//! Network functions for the SpeedyBox NFV framework.
//!
//! Implements the five NFs of the paper's evaluation (§VI-C, Table II) plus
//! the NFs used in its worked examples:
//!
//! | NF | Paper source | Here |
//! |---|---|---|
//! | Snort IDS | snort.org port | [`snort::SnortLite`] — rule parser + Aho–Corasick payload inspection |
//! | Maglev | reimplemented from the Maglev paper §3.4 | [`maglev::Maglev`] — consistent-hash LB with failure events |
//! | IPFilter | Click element | [`ipfilter::IpFilter`] — linear-scan ACL firewall |
//! | Monitor | common academic NF | [`monitor::Monitor`] — per-flow counters |
//! | MazuNAT | Click configuration | [`mazunat::MazuNat`] — dynamic NAPT |
//! | DOS Prevention (Fig 3) | illustration | [`dosguard::DosGuard`] — SYN-threshold drop events |
//! | Media Gateway (§IV-A) | gateway example | [`gateway::MediaGateway`] — DSCP marking + port-class routing |
//! | Quota limiter | Observation 2 showcase | [`ratelimiter::QuotaLimiter`] — per-flow byte budget with drop events |
//! | VPN (§IV-A1) | encap/decap example | [`vpn::VpnGateway`] — AH encap/decap |
//! | Synthetic (§VII-A2) | micro-benchmarks | [`synthetic::SyntheticNf`] |
//!
//! Every NF implements the [`Nf`] trait and performs its *real* work in
//! [`Nf::process`]; SpeedyBox instrumentation (recording header actions,
//! state functions and events through [`speedybox_mat::NfInstrument`]) is
//! confined to clearly delimited blocks marked
//! `SPEEDYBOX-INTEGRATION-BEGIN/END`, which is also how the Table II
//! "added LOC" metric is reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dosguard;
pub mod gateway;
pub mod inspect;
pub mod ipfilter;
pub mod maglev;
pub mod mazunat;
pub mod monitor;
pub mod nf;
pub mod ratelimiter;
pub mod regex;
pub mod snort;
pub mod synthetic;
pub mod vpn;

pub use inspect::AhoCorasick;
pub use nf::{Nf, NfContext, NfVerdict, StateSnapshot};
pub use regex::Regex;

/// Result alias re-exported for NF implementations.
pub type Result<T, E = speedybox_mat::MatError> = core::result::Result<T, E>;
