//! Maglev: Google's consistent-hashing software load balancer (paper §VI-C).
//!
//! Maglev is closed source; like the SpeedyBox authors we "implement our
//! Maglev NF logic by closely following the consistent hashing algorithm
//! presented in Section 3.4 of Maglev's paper": each backend gets a
//! permutation of the lookup-table slots derived from two hashes
//! (`offset`/`skip`), and backends take turns claiming their next preferred
//! empty slot until the table fills. Flows hash into the table; a
//! connection-tracking map pins established flows to their backend.
//!
//! The SpeedyBox-relevant behaviour is the *event*: when a backend fails,
//! established flows tracked to it must be re-routed — the header action
//! recorded for those flows changes at runtime (Observation 2, §V-A).

use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddrV4;
use std::sync::Arc;

use parking_lot::Mutex;
use speedybox_mat::event::RulePatch;
use speedybox_mat::HeaderAction;
use speedybox_packet::{Fid, HeaderField, Packet};

use crate::nf::{Nf, NfContext, NfVerdict, StateSnapshot};

/// A load-balancer backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    /// Stable name used for permutation hashing.
    pub name: String,
    /// Address traffic is steered to.
    pub addr: SocketAddrV4,
    /// Health flag; unhealthy backends receive no new or existing flows.
    pub healthy: bool,
}

fn hash_str(s: &str, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone)]
struct State {
    backends: Vec<Backend>,
    /// Lookup table mapping hash slots to backend indices; empty when no
    /// backend is healthy.
    table: Vec<usize>,
    table_size: usize,
    /// Connection tracking: flow -> backend index.
    connections: HashMap<Fid, usize>,
    /// What the SpeedyBox fast-path rule currently encodes for each
    /// instrumented flow: `Some(backend)` for a modify, `None` for a drop
    /// (load shed while no backend was healthy). The reroute event fires
    /// whenever this diverges from what the original path would pick *now*
    /// — covering backend failure, recovery after a total outage, and
    /// flows whose very first packet arrived while every backend was dead.
    rule_target: HashMap<Fid, Option<usize>>,
}

impl State {
    /// Maglev paper §3.4: populate the lookup table from per-backend
    /// permutations so every healthy backend gets an almost-equal share and
    /// changes disrupt few entries.
    fn rebuild_table(&mut self) {
        let m = self.table_size;
        let healthy: Vec<usize> =
            (0..self.backends.len()).filter(|&i| self.backends[i].healthy).collect();
        if healthy.is_empty() {
            self.table = Vec::new();
            return;
        }
        let mut offset_skip: Vec<(usize, usize)> = Vec::with_capacity(healthy.len());
        for &i in &healthy {
            let name = &self.backends[i].name;
            // `% m` bounds both values below the (usize) table size.
            #[allow(clippy::cast_possible_truncation)]
            let offset = (hash_str(name, 1) % m as u64) as usize;
            #[allow(clippy::cast_possible_truncation)]
            let skip = (hash_str(name, 2) % (m as u64 - 1)) as usize + 1;
            offset_skip.push((offset, skip));
        }
        let mut next = vec![0usize; healthy.len()];
        let mut table = vec![usize::MAX; m];
        let mut filled = 0;
        'outer: loop {
            for (bi, &backend) in healthy.iter().enumerate() {
                let (offset, skip) = offset_skip[bi];
                // Find this backend's next preferred empty slot.
                let mut c = (offset + next[bi] * skip) % m;
                while table[c] != usize::MAX {
                    next[bi] += 1;
                    c = (offset + next[bi] * skip) % m;
                }
                table[c] = backend;
                next[bi] += 1;
                filled += 1;
                if filled == m {
                    break 'outer;
                }
            }
        }
        self.table = table;
    }

    fn lookup(&self, fid: Fid) -> Option<usize> {
        if self.table.is_empty() {
            return None;
        }
        // `% len` bounds the slot below the (usize) table size.
        #[allow(clippy::cast_possible_truncation)]
        let slot = (u64::from(fid.value()).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            % self.table.len() as u64) as usize;
        Some(self.table[slot])
    }

    /// The backend for a flow: the tracked one if still healthy, otherwise
    /// a fresh table lookup (re-route), recorded in the tracker.
    fn assign(&mut self, fid: Fid) -> Option<usize> {
        if let Some(&b) = self.connections.get(&fid) {
            if self.backends[b].healthy {
                return Some(b);
            }
        }
        let b = self.lookup(fid)?;
        self.connections.insert(fid, b);
        Some(b)
    }

    /// [`State::assign`] without the tracker write: what the original path
    /// would pick for this flow right now. Used by the reroute event's
    /// condition, which must not mutate.
    fn preview(&self, fid: Fid) -> Option<usize> {
        if let Some(&b) = self.connections.get(&fid) {
            if self.backends[b].healthy {
                return Some(b);
            }
        }
        self.lookup(fid)
    }
}

/// The Maglev load-balancer NF.
///
/// ```
/// use speedybox_nf::maglev::Maglev;
///
/// let lb = Maglev::new(
///     vec![
///         ("a".to_owned(), "10.1.0.1:80".parse().unwrap()),
///         ("b".to_owned(), "10.1.0.2:80".parse().unwrap()),
///     ],
///     53,
/// );
/// // Every lookup-table slot is owned, shares are near-equal.
/// let shares = lb.table_shares();
/// assert_eq!(shares.values().sum::<usize>(), 53);
/// assert!(shares.values().max().unwrap() - shares.values().min().unwrap() <= 2);
/// ```
#[derive(Clone)]
pub struct Maglev {
    state: Arc<Mutex<State>>,
}

impl fmt::Debug for Maglev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Maglev")
            .field("backends", &st.backends.len())
            .field("table_size", &st.table_size)
            .field("connections", &st.connections.len())
            .finish()
    }
}

impl Maglev {
    /// Creates a Maglev NF over `backends` with a lookup table of
    /// `table_size` slots (should be a prime ≫ backend count, per the
    /// Maglev paper; 65537 in production, smaller in tests).
    ///
    /// # Panics
    /// Panics if `backends` is empty or `table_size < 2`.
    #[must_use]
    pub fn new(backends: Vec<(impl Into<String>, SocketAddrV4)>, table_size: usize) -> Self {
        assert!(!backends.is_empty(), "Maglev needs at least one backend");
        assert!(table_size >= 2, "lookup table needs at least two slots");
        let backends = backends
            .into_iter()
            .map(|(name, addr)| Backend { name: name.into(), addr, healthy: true })
            .collect();
        let mut state = State {
            backends,
            table: Vec::new(),
            table_size,
            connections: HashMap::new(),
            rule_target: HashMap::new(),
        };
        state.rebuild_table();
        Self { state: Arc::new(Mutex::new(state)) }
    }

    /// Marks a backend unhealthy and rebuilds the table. Established flows
    /// tracked to it are re-routed by the registered SpeedyBox events (or,
    /// on the original path, by the next `process` call).
    pub fn fail_backend(&self, name: &str) {
        let mut st = self.state.lock();
        if let Some(b) = st.backends.iter_mut().find(|b| b.name == name) {
            b.healthy = false;
        }
        st.rebuild_table();
    }

    /// Marks a backend healthy again and rebuilds the table.
    pub fn recover_backend(&self, name: &str) {
        let mut st = self.state.lock();
        if let Some(b) = st.backends.iter_mut().find(|b| b.name == name) {
            b.healthy = true;
        }
        st.rebuild_table();
    }

    /// The backend address currently assigned to a flow, if tracked.
    #[must_use]
    pub fn assigned_backend(&self, fid: Fid) -> Option<SocketAddrV4> {
        let st = self.state.lock();
        st.connections.get(&fid).map(|&b| st.backends[b].addr)
    }

    /// Number of tracked connections.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.state.lock().connections.len()
    }

    /// Registers the recurring reroute event for `fid`: it fires whenever
    /// the fast-path rule's recorded target (`rule_target`) no longer
    /// matches what the original path would pick for the flow — a failed
    /// tracked backend, a recovery ending a total outage, or a recovered
    /// preferred backend for a flow recorded as a load-shedding drop. The
    /// patch re-runs [`State::assign`] (the original path's choice,
    /// tracker update included) so both paths converge on the same
    /// backend.
    fn register_reroute_event(&self, fid: Fid, inst: &speedybox_mat::NfInstrument) {
        let cond_state = Arc::clone(&self.state);
        let update_state = Arc::clone(&self.state);
        inst.register_event_full(
            speedybox_mat::Event::new(
                fid,
                inst.nf(),
                "maglev.reroute",
                move |fid| {
                    let st = cond_state.lock();
                    st.rule_target.get(&fid).is_some_and(|t| *t != st.preview(fid))
                },
                move |fid| {
                    let mut st = update_state.lock();
                    match st.assign(fid) {
                        Some(b) => {
                            let addr = st.backends[b].addr;
                            st.rule_target.insert(fid, Some(b));
                            RulePatch::set_action(HeaderAction::modify2(
                                (HeaderField::DstIp, (*addr.ip()).into()),
                                (HeaderField::DstPort, addr.port().into()),
                            ))
                        }
                        None => {
                            st.rule_target.insert(fid, None);
                            RulePatch::set_action(HeaderAction::Drop)
                        }
                    }
                },
            )
            .recurring(),
        );
    }

    /// Distribution of lookup-table slots per healthy backend (for the
    /// balance tests).
    #[must_use]
    pub fn table_shares(&self) -> HashMap<String, usize> {
        let st = self.state.lock();
        let mut shares = HashMap::new();
        for &b in &st.table {
            *shares.entry(st.backends[b].name.clone()).or_insert(0) += 1;
        }
        shares
    }
}

impl Nf for Maglev {
    fn name(&self) -> &str {
        "maglev"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let fid = packet
            .fid()
            .unwrap_or_else(|| packet.five_tuple().map(|t| t.fid()).unwrap_or_default());
        ctx.ops.parses += 1;
        let backend = {
            let mut st = self.state.lock();
            ctx.ops.hash_lookups += 1;
            st.assign(fid).map(|b| {
                ctx.ops.hash_updates += 1;
                (b, st.backends[b].addr)
            })
        };
        let Some((backend_idx, backend_addr)) = backend else {
            // No healthy backend: shed load (and record the drop so the
            // fast path sheds too). The reroute event is still registered:
            // once a backend recovers, the original path resumes
            // forwarding, so the fast-path rule must be rewritten back
            // from drop to modify.
            ctx.ops.drops += 1;
            // SPEEDYBOX-INTEGRATION-BEGIN (maglev/shed: 5 lines)
            if let Some(inst) = ctx.instrument {
                inst.add_header_action(fid, HeaderAction::Drop, ctx.ops);
                self.state.lock().rule_target.insert(fid, None);
                self.register_reroute_event(fid, inst);
            }
            // SPEEDYBOX-INTEGRATION-END
            return NfVerdict::Drop;
        };
        let action = HeaderAction::modify2(
            (HeaderField::DstIp, (*backend_addr.ip()).into()),
            (HeaderField::DstPort, backend_addr.port().into()),
        );
        if !action.apply(packet, ctx.ops).unwrap_or(false) {
            return NfVerdict::Drop;
        }
        // SPEEDYBOX-INTEGRATION-BEGIN (maglev: 5 lines)
        if let Some(inst) = ctx.instrument {
            inst.add_header_action(fid, action, ctx.ops);
            self.state.lock().rule_target.insert(fid, Some(backend_idx));
            self.register_reroute_event(fid, inst);
        }
        // SPEEDYBOX-INTEGRATION-END
        NfVerdict::Forward
    }

    fn flow_closed(&mut self, fid: Fid) {
        let mut st = self.state.lock();
        st.connections.remove(&fid);
        st.rule_target.remove(&fid);
    }

    fn has_flow_state(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<StateSnapshot> {
        Some(StateSnapshot::new(self.state.lock().clone()))
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let Some(captured) = snapshot.downcast::<State>() else {
            return false;
        };
        *self.state.lock() = captured.clone();
        true
    }

    fn crash(&mut self) {
        // A restarted Maglev re-reads its backend config (all healthy) and
        // rebuilds the lookup table, but connection tracking is gone.
        let mut st = self.state.lock();
        st.connections.clear();
        st.rule_target.clear();
        for b in &mut st.backends {
            b.healthy = true;
        }
        st.rebuild_table();
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn backends(n: usize) -> Vec<(String, SocketAddrV4)> {
        (0..n)
            .map(|i| (format!("backend-{i}"), format!("10.1.0.{}:8080", i + 1).parse().unwrap()))
            .collect()
    }

    fn lb() -> Maglev {
        Maglev::new(backends(4), 251)
    }

    fn packet(src_port: u16) -> Packet {
        let mut p = PacketBuilder::tcp()
            .src(format!("10.0.0.1:{src_port}").parse().unwrap())
            .dst("10.99.99.99:80".parse().unwrap()) // VIP
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn table_is_fully_populated_and_balanced() {
        let lb = lb();
        let shares = lb.table_shares();
        assert_eq!(shares.len(), 4);
        let total: usize = shares.values().sum();
        assert_eq!(total, 251);
        // Maglev's guarantee: near-equal shares.
        let min = shares.values().min().unwrap();
        let max = shares.values().max().unwrap();
        assert!(max - min <= 2, "imbalanced table: {shares:?}");
    }

    #[test]
    fn rewrites_destination_to_backend() {
        let mut lb = lb();
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet(1000);
        assert_eq!(lb.process(&mut p, &mut ctx), NfVerdict::Forward);
        let dst = p.get_field(HeaderField::DstIp).unwrap().as_ipv4();
        assert_eq!(dst.octets()[..3], [10, 1, 0]);
        assert_eq!(p.get_field(HeaderField::DstPort).unwrap().as_port(), 8080);
        assert!(p.verify_checksums().unwrap());
    }

    #[test]
    fn flows_are_sticky() {
        let mut lb = lb();
        let mut ops = OpCounter::default();
        let mut first = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            lb.process(&mut first, &mut ctx);
        }
        let d1 = first.get_field(HeaderField::DstIp).unwrap().as_ipv4();
        for _ in 0..5 {
            let mut p = packet(1000);
            let mut ctx = NfContext::baseline(&mut ops);
            lb.process(&mut p, &mut ctx);
            assert_eq!(p.get_field(HeaderField::DstIp).unwrap().as_ipv4(), d1);
        }
        assert_eq!(lb.connection_count(), 1);
    }

    #[test]
    fn failure_reroutes_established_flow() {
        let mut lb = lb();
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            lb.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        let original = lb.assigned_backend(fid).unwrap();
        // Find and fail the assigned backend.
        let name = {
            let st = lb.state.lock();
            st.backends.iter().find(|b| b.addr == original).unwrap().name.clone()
        };
        lb.fail_backend(&name);
        let mut p2 = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            lb.process(&mut p2, &mut ctx);
        }
        let rerouted = lb.assigned_backend(fid).unwrap();
        assert_ne!(rerouted, original);
        assert_eq!(p2.get_field(HeaderField::DstIp).unwrap().as_ipv4(), *rerouted.ip());
    }

    #[test]
    fn failure_disrupts_few_other_slots() {
        let lb = lb();
        let before: Vec<SocketAddrV4> = {
            let st = lb.state.lock();
            st.table.iter().map(|&b| st.backends[b].addr).collect()
        };
        lb.fail_backend("backend-0");
        let after: Vec<SocketAddrV4> = {
            let st = lb.state.lock();
            st.table.iter().map(|&b| st.backends[b].addr).collect()
        };
        // Slots that didn't point at the failed backend should mostly be
        // unchanged (consistent hashing's whole point).
        let dead: SocketAddrV4 = "10.1.0.1:8080".parse().unwrap();
        let stable = before.iter().zip(&after).filter(|(b, a)| **b != dead && *b == *a).count();
        let unaffected_before = before.iter().filter(|b| **b != dead).count();
        assert!(
            stable as f64 >= unaffected_before as f64 * 0.8,
            "too much disruption: {stable}/{unaffected_before}"
        );
    }

    #[test]
    fn all_backends_down_drops() {
        let mut lb = Maglev::new(backends(1), 13);
        lb.fail_backend("backend-0");
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet(1000);
        assert_eq!(lb.process(&mut p, &mut ctx), NfVerdict::Drop);
    }

    #[test]
    fn recover_backend_restores_service() {
        let mut lb = Maglev::new(backends(1), 13);
        lb.fail_backend("backend-0");
        lb.recover_backend("backend-0");
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet(1000);
        assert_eq!(lb.process(&mut p, &mut ctx), NfVerdict::Forward);
    }

    #[test]
    fn flow_closed_releases_tracking() {
        let mut lb = lb();
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            lb.process(&mut p, &mut ctx);
        }
        assert_eq!(lb.connection_count(), 1);
        lb.flow_closed(p.fid().unwrap());
        assert_eq!(lb.connection_count(), 0);
    }

    #[test]
    fn total_outage_then_recovery_rewrites_drop_back_to_modify() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut lb = lb();
        let events = StdArc::new(EventTable::new());
        let inst = NfInstrument::new(StdArc::new(LocalMat::new(NfId::new(0))), events.clone());
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::instrumented(&inst, &mut ops);
            lb.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        // Kill every backend: the event must flip the rule to drop.
        for i in 0..4 {
            lb.fail_backend(&format!("backend-{i}"));
        }
        let fired = events.check(fid, &mut ops);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1.header_actions, Some(vec![HeaderAction::Drop]));
        // While the outage lasts the recurring event is quiescent.
        assert!(events.check(fid, &mut ops).is_empty());
        // First recovery: the rule must come back as a modify — exactly the
        // backend the original path would pick.
        lb.recover_backend("backend-2");
        let fired = events.check(fid, &mut ops);
        assert_eq!(fired.len(), 1, "recovery after a total outage must re-fire");
        match &fired[0].1.header_actions.as_ref().unwrap()[0] {
            HeaderAction::Modify(writes) => {
                let (_, ip) = writes.iter().find(|(f, _)| *f == HeaderField::DstIp).unwrap();
                assert_eq!(ip.as_ipv4(), "10.1.0.3".parse::<std::net::Ipv4Addr>().unwrap());
            }
            other => panic!("expected modify after recovery, got {other}"),
        }
        assert_eq!(lb.assigned_backend(fid).unwrap(), "10.1.0.3:8080".parse().unwrap());
    }

    #[test]
    fn flow_born_during_outage_recovers_when_backends_return() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut lb = lb();
        for i in 0..4 {
            lb.fail_backend(&format!("backend-{i}"));
        }
        let events = StdArc::new(EventTable::new());
        let inst = NfInstrument::new(StdArc::new(LocalMat::new(NfId::new(0))), events.clone());
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::instrumented(&inst, &mut ops);
            assert_eq!(lb.process(&mut p, &mut ctx), NfVerdict::Drop, "shed during outage");
        }
        let fid = p.fid().unwrap();
        // The load-shedding drop was recorded — and so was the event.
        assert!(events.check(fid, &mut ops).is_empty(), "quiescent while dead");
        lb.recover_backend("backend-1");
        let fired = events.check(fid, &mut ops);
        assert_eq!(fired.len(), 1, "the shed flow must be rewritten to a live backend");
        match &fired[0].1.header_actions.as_ref().unwrap()[0] {
            HeaderAction::Modify(_) => {}
            other => panic!("expected modify after recovery, got {other}"),
        }
    }

    #[test]
    fn event_registration_fires_on_failure() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut lb = lb();
        let events = StdArc::new(EventTable::new());
        let inst = NfInstrument::new(StdArc::new(LocalMat::new(NfId::new(0))), events.clone());
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::instrumented(&inst, &mut ops);
            lb.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        // Healthy: no trigger.
        assert!(events.check(fid, &mut ops).is_empty());
        // Fail the assigned backend: the event fires with a new modify.
        let original = lb.assigned_backend(fid).unwrap();
        let name = {
            let st = lb.state.lock();
            st.backends.iter().find(|b| b.addr == original).unwrap().name.clone()
        };
        lb.fail_backend(&name);
        let fired = events.check(fid, &mut ops);
        assert_eq!(fired.len(), 1);
        let patch = &fired[0].1;
        let actions = patch.header_actions.as_ref().unwrap();
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            HeaderAction::Modify(writes) => {
                let (_, ip) = writes.iter().find(|(f, _)| *f == HeaderField::DstIp).unwrap();
                assert_ne!(ip.as_ipv4(), *original.ip());
            }
            other => panic!("expected modify, got {other}"),
        }
        // Recurring event: still registered, but quiescent after reroute.
        assert!(events.check(fid, &mut ops).is_empty());
    }

    #[test]
    fn snapshot_restores_connection_tracking_and_health() {
        let mut lb = lb();
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            lb.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        let assigned = lb.assigned_backend(fid).unwrap();
        lb.fail_backend("backend-0");
        assert!(lb.has_flow_state());
        let snap = lb.snapshot_state().unwrap();
        lb.crash();
        assert_eq!(lb.connection_count(), 0, "crash loses connection tracking");
        assert_eq!(lb.table_shares().len(), 4, "restart sees all backends healthy");
        assert!(lb.restore_state(&snap));
        assert_eq!(lb.assigned_backend(fid), Some(assigned));
        assert_eq!(lb.table_shares().len(), 3, "backend-0's failure was part of the snapshot");
        assert!(!lb.restore_state(&StateSnapshot::new(0u8)));
    }
}
