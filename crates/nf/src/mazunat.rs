//! MazuNAT: a Click-style dynamic NAPT (paper §VI-C).
//!
//! "MazuNAT closely resembles the NAT module in Click that translates the
//! IP and port for flows ... MazuNAT sets each flow with a modify action."
//! We implement bidirectional NAPT: each new outbound flow gets a port
//! from the external port pool and its source IP/port rewritten, and reply
//! traffic addressed to the external IP is translated back to the mapped
//! internal endpoint (unsolicited inbound traffic is dropped). ICMP
//! handling is omitted, as in the paper.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;
use speedybox_mat::HeaderAction;
use speedybox_packet::{Fid, FiveTuple, HeaderField, Packet};

use crate::nf::{Nf, NfContext, NfVerdict, StateSnapshot};

/// One NAT translation entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// The flow's original (internal) 5-tuple.
    pub internal: FiveTuple,
    /// Allocated external port.
    pub external_port: u16,
}

#[derive(Debug, Clone)]
struct NatState {
    /// Forward map: flow -> translation.
    by_fid: HashMap<Fid, Mapping>,
    /// Reverse map: external port -> flow (for reply translation).
    by_port: HashMap<u16, Fid>,
    /// Next port to try.
    next_port: u16,
    /// Recycled ports from closed flows.
    free_ports: Vec<u16>,
    port_range: (u16, u16),
}

impl NatState {
    fn allocate_port(&mut self) -> Option<u16> {
        if let Some(p) = self.free_ports.pop() {
            return Some(p);
        }
        let (lo, hi) = self.port_range;
        let span = u32::from(hi - lo) + 1;
        for _ in 0..span {
            let p = self.next_port;
            self.next_port = if self.next_port >= hi { lo } else { self.next_port + 1 };
            if !self.by_port.contains_key(&p) {
                return Some(p);
            }
        }
        None
    }
}

/// The MazuNAT network function.
#[derive(Clone)]
pub struct MazuNat {
    external_ip: Ipv4Addr,
    state: Arc<Mutex<NatState>>,
}

impl fmt::Debug for MazuNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("MazuNat")
            .field("external_ip", &self.external_ip)
            .field("mappings", &st.by_fid.len())
            .finish()
    }
}

impl MazuNat {
    /// Creates a NAT translating to `external_ip`, allocating external
    /// ports from `port_range` (inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[must_use]
    pub fn new(external_ip: Ipv4Addr, port_range: (u16, u16)) -> Self {
        assert!(port_range.0 <= port_range.1, "empty NAT port range");
        Self {
            external_ip,
            state: Arc::new(Mutex::new(NatState {
                by_fid: HashMap::new(),
                by_port: HashMap::new(),
                next_port: port_range.0,
                free_ports: Vec::new(),
                port_range,
            })),
        }
    }

    /// The translation for a flow, if established.
    #[must_use]
    pub fn mapping(&self, fid: Fid) -> Option<Mapping> {
        self.state.lock().by_fid.get(&fid).copied()
    }

    /// Number of active translations.
    #[must_use]
    pub fn mapping_count(&self) -> usize {
        self.state.lock().by_fid.len()
    }

    /// The flow owning an external port (reply-direction lookup).
    #[must_use]
    pub fn flow_for_port(&self, port: u16) -> Option<Fid> {
        self.state.lock().by_port.get(&port).copied()
    }
}

impl Nf for MazuNat {
    fn name(&self) -> &str {
        "mazunat"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let Ok(tuple) = packet.five_tuple() else {
            ctx.ops.drops += 1;
            return NfVerdict::Drop;
        };
        ctx.ops.parses += 1;
        let fid = packet.fid().unwrap_or_else(|| tuple.fid());
        // Inbound (reply) direction: traffic addressed to the external IP
        // is translated back to the mapped internal endpoint; unknown
        // external ports are dropped, as a NAT must.
        if tuple.dst_ip == self.external_ip {
            let internal = {
                let st = self.state.lock();
                ctx.ops.hash_lookups += 1;
                st.by_port
                    .get(&tuple.dst_port)
                    .and_then(|owner| st.by_fid.get(owner))
                    .map(|m| (m.internal.src_ip, m.internal.src_port))
            };
            let Some((ip, port)) = internal else {
                ctx.ops.drops += 1;
                if let Some(inst) = ctx.instrument {
                    inst.add_header_action(fid, HeaderAction::Drop, ctx.ops);
                }
                return NfVerdict::Drop;
            };
            let action = HeaderAction::modify2(
                (HeaderField::DstIp, ip.into()),
                (HeaderField::DstPort, port.into()),
            );
            if !action.apply(packet, ctx.ops).unwrap_or(false) {
                return NfVerdict::Drop;
            }
            if let Some(inst) = ctx.instrument {
                inst.add_header_action(fid, action, ctx.ops);
            }
            return NfVerdict::Forward;
        }
        let external_port = {
            let mut st = self.state.lock();
            ctx.ops.hash_lookups += 1;
            match st.by_fid.get(&fid) {
                Some(m) => m.external_port,
                None => {
                    let Some(port) = st.allocate_port() else {
                        // Port pool exhausted: shed the flow (recording the
                        // drop so the fast path sheds too).
                        drop(st);
                        ctx.ops.drops += 1;
                        if let Some(inst) = ctx.instrument {
                            inst.add_header_action(fid, HeaderAction::Drop, ctx.ops);
                        }
                        return NfVerdict::Drop;
                    };
                    st.by_fid.insert(fid, Mapping { internal: tuple, external_port: port });
                    st.by_port.insert(port, fid);
                    ctx.ops.hash_updates += 2;
                    port
                }
            }
        };
        let action = HeaderAction::modify2(
            (HeaderField::SrcIp, self.external_ip.into()),
            (HeaderField::SrcPort, external_port.into()),
        );
        if !action.apply(packet, ctx.ops).unwrap_or(false) {
            return NfVerdict::Drop;
        }
        // SPEEDYBOX-INTEGRATION-BEGIN (mazunat: 4 lines)
        if let Some(inst) = ctx.instrument {
            inst.add_header_action(fid, action, ctx.ops);
        }
        // SPEEDYBOX-INTEGRATION-END
        NfVerdict::Forward
    }

    fn flow_closed(&mut self, fid: Fid) {
        let mut st = self.state.lock();
        if let Some(m) = st.by_fid.remove(&fid) {
            st.by_port.remove(&m.external_port);
            st.free_ports.push(m.external_port);
        }
    }

    fn has_flow_state(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<StateSnapshot> {
        Some(StateSnapshot::new(self.state.lock().clone()))
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let Some(captured) = snapshot.downcast::<NatState>() else {
            return false;
        };
        *self.state.lock() = captured.clone();
        true
    }

    fn crash(&mut self) {
        // A re-exec'd NAT keeps its configuration (external IP, port
        // range) but loses every translation and the allocator cursor.
        let mut st = self.state.lock();
        let lo = st.port_range.0;
        st.by_fid.clear();
        st.by_port.clear();
        st.free_ports.clear();
        st.next_port = lo;
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn nat() -> MazuNat {
        MazuNat::new(Ipv4Addr::new(198, 51, 100, 1), (50000, 50003))
    }

    fn packet(src_port: u16) -> Packet {
        let mut p = PacketBuilder::tcp()
            .src(format!("192.168.1.5:{src_port}").parse().unwrap())
            .dst("93.184.216.34:443".parse().unwrap())
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn rewrites_source() {
        let mut nat = nat();
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet(1000);
        assert_eq!(nat.process(&mut p, &mut ctx), NfVerdict::Forward);
        assert_eq!(
            p.get_field(HeaderField::SrcIp).unwrap().as_ipv4(),
            Ipv4Addr::new(198, 51, 100, 1)
        );
        let sp = p.get_field(HeaderField::SrcPort).unwrap().as_port();
        assert!((50000..=50003).contains(&sp));
        assert!(p.verify_checksums().unwrap());
    }

    #[test]
    fn same_flow_keeps_its_port() {
        let mut nat = nat();
        let mut ops = OpCounter::default();
        let mut p1 = packet(1000);
        let mut p2 = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p1, &mut ctx);
        }
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p2, &mut ctx);
        }
        assert_eq!(
            p1.get_field(HeaderField::SrcPort).unwrap().as_port(),
            p2.get_field(HeaderField::SrcPort).unwrap().as_port()
        );
        assert_eq!(nat.mapping_count(), 1);
    }

    #[test]
    fn different_flows_get_different_ports() {
        let mut nat = nat();
        let mut ops = OpCounter::default();
        let mut p1 = packet(1000);
        let mut p2 = packet(2000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p1, &mut ctx);
        }
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p2, &mut ctx);
        }
        assert_ne!(
            p1.get_field(HeaderField::SrcPort).unwrap().as_port(),
            p2.get_field(HeaderField::SrcPort).unwrap().as_port()
        );
    }

    #[test]
    fn port_pool_exhaustion_drops() {
        let mut nat = nat(); // 4 ports
        let mut ops = OpCounter::default();
        for i in 0..4 {
            let mut p = packet(1000 + i);
            let mut ctx = NfContext::baseline(&mut ops);
            assert_eq!(nat.process(&mut p, &mut ctx), NfVerdict::Forward);
        }
        let mut p = packet(9999);
        let mut ctx = NfContext::baseline(&mut ops);
        assert_eq!(nat.process(&mut p, &mut ctx), NfVerdict::Drop);
    }

    #[test]
    fn closed_flow_recycles_port() {
        let mut nat = nat();
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        let port = nat.mapping(fid).unwrap().external_port;
        nat.flow_closed(fid);
        assert_eq!(nat.mapping_count(), 0);
        assert!(nat.flow_for_port(port).is_none());
        // Recycled port is reused.
        let mut p2 = packet(2000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p2, &mut ctx);
        }
        assert_eq!(p2.get_field(HeaderField::SrcPort).unwrap().as_port(), port);
    }

    #[test]
    fn reverse_lookup_finds_flow() {
        let mut nat = nat();
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        let port = nat.mapping(fid).unwrap().external_port;
        assert_eq!(nat.flow_for_port(port), Some(fid));
    }

    #[test]
    fn reply_traffic_translates_back() {
        let mut nat = nat();
        let mut ops = OpCounter::default();
        // Outbound packet establishes the mapping.
        let mut out = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            assert_eq!(nat.process(&mut out, &mut ctx), NfVerdict::Forward);
        }
        let ext_port = out.get_field(HeaderField::SrcPort).unwrap().as_port();
        // Reply: server -> external ip:port.
        let mut reply = PacketBuilder::tcp()
            .src("93.184.216.34:443".parse().unwrap())
            .dst(format!("198.51.100.1:{ext_port}").parse().unwrap())
            .payload(b"response")
            .build();
        let rfid = reply.five_tuple().unwrap().fid();
        reply.set_fid(rfid);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            assert_eq!(nat.process(&mut reply, &mut ctx), NfVerdict::Forward);
        }
        assert_eq!(
            reply.get_field(HeaderField::DstIp).unwrap().as_ipv4(),
            Ipv4Addr::new(192, 168, 1, 5)
        );
        assert_eq!(reply.get_field(HeaderField::DstPort).unwrap().as_port(), 1000);
        assert!(reply.verify_checksums().unwrap());
    }

    #[test]
    fn unsolicited_inbound_is_dropped() {
        let mut nat = nat();
        let mut ops = OpCounter::default();
        let mut stray = PacketBuilder::tcp()
            .src("93.184.216.34:443".parse().unwrap())
            .dst("198.51.100.1:50002".parse().unwrap())
            .build();
        let fid = stray.five_tuple().unwrap().fid();
        stray.set_fid(fid);
        let mut ctx = NfContext::baseline(&mut ops);
        assert_eq!(nat.process(&mut stray, &mut ctx), NfVerdict::Drop);
    }

    #[test]
    fn bidirectional_fast_path_matches_baseline() {
        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};
        use std::sync::Arc as StdArc;

        // The reverse flow records its own (inbound) modify rule under its
        // own FID; repeated replies replay it identically.
        let mut nat = nat();
        let inst = NfInstrument::new(
            StdArc::new(LocalMat::new(NfId::new(0))),
            StdArc::new(EventTable::new()),
        );
        let mut ops = OpCounter::default();
        let mut out = packet(1000);
        {
            let mut ctx = NfContext::instrumented(&inst, &mut ops);
            nat.process(&mut out, &mut ctx);
        }
        let ext_port = out.get_field(HeaderField::SrcPort).unwrap().as_port();
        let mut reply = PacketBuilder::tcp()
            .src("93.184.216.34:443".parse().unwrap())
            .dst(format!("198.51.100.1:{ext_port}").parse().unwrap())
            .build();
        let rfid = reply.five_tuple().unwrap().fid();
        reply.set_fid(rfid);
        {
            let mut ctx = NfContext::instrumented(&inst, &mut ops);
            nat.process(&mut reply, &mut ctx);
        }
        let rule = inst.local_mat().rule(rfid).unwrap();
        match &rule.header_actions[0] {
            HeaderAction::Modify(writes) => {
                assert!(writes.iter().any(|(f, _)| *f == HeaderField::DstIp));
                assert!(writes.iter().any(|(f, _)| *f == HeaderField::DstPort));
            }
            other => panic!("expected inbound modify, got {other}"),
        }
    }

    #[test]
    fn snapshot_restores_mappings_and_allocator_cursor() {
        let mut nat = nat();
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        let port = nat.mapping(fid).unwrap().external_port;
        assert!(nat.has_flow_state());
        let snap = nat.snapshot_state().unwrap();
        // A second mapping after the checkpoint, then the crash.
        let mut p2 = packet(2000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p2, &mut ctx);
        }
        nat.crash();
        assert_eq!(nat.mapping_count(), 0, "crash drops every translation");
        assert!(nat.restore_state(&snap));
        assert_eq!(nat.mapping_count(), 1);
        assert_eq!(nat.mapping(fid).unwrap().external_port, port);
        assert_eq!(nat.flow_for_port(port), Some(fid));
        // The allocator cursor was restored too: re-processing the
        // post-checkpoint flow allocates the same port it got before.
        let prev2 = p2.get_field(HeaderField::SrcPort).unwrap().as_port();
        let mut p2_again = packet(2000);
        {
            let mut ctx = NfContext::baseline(&mut ops);
            nat.process(&mut p2_again, &mut ctx);
        }
        assert_eq!(p2_again.get_field(HeaderField::SrcPort).unwrap().as_port(), prev2);
        assert!(!nat.restore_state(&StateSnapshot::new("foreign")));
    }

    #[test]
    fn records_modify_action() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut nat = nat();
        let inst = NfInstrument::new(
            StdArc::new(LocalMat::new(NfId::new(0))),
            StdArc::new(EventTable::new()),
        );
        let mut ops = OpCounter::default();
        let mut p = packet(1000);
        let mut ctx = NfContext::instrumented(&inst, &mut ops);
        nat.process(&mut p, &mut ctx);
        let rule = inst.local_mat().rule(p.fid().unwrap()).unwrap();
        match &rule.header_actions[0] {
            HeaderAction::Modify(writes) => {
                assert!(writes.iter().any(|(f, _)| *f == HeaderField::SrcIp));
                assert!(writes.iter().any(|(f, _)| *f == HeaderField::SrcPort));
            }
            other => panic!("expected modify, got {other}"),
        }
    }
}
