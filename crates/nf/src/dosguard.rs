//! DosGuard: the paper's Fig 3 "DOS Prevention" NF.
//!
//! "The DOS Prevention NF detects a DOS attack by monitoring the number of
//! TCP SYN flag on a per-flow basis ... If the number of SYN flags seen
//! exceeds a threshold (flow1_cnt > 100), the Event Table triggers an event
//! to replace the modify action with a drop action."
//!
//! This NF exists primarily to exercise the Event Table end to end: its
//! state function counts SYNs (payload-`IGNORE`), and its registered event
//! flips the flow's header action to `drop` once the threshold is crossed.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use speedybox_mat::event::RulePatch;
use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::{HeaderAction, StateFunction};
use speedybox_packet::{Fid, Packet};

use crate::nf::{Nf, NfContext, NfVerdict, StateSnapshot};

/// The two per-flow maps a [`DosGuard`] checkpoint captures.
type DosGuardCapture = (HashMap<Fid, u64>, HashMap<Fid, bool>);

/// The DoS-prevention NF.
#[derive(Debug, Clone)]
pub struct DosGuard {
    syn_counts: Arc<Mutex<HashMap<Fid, u64>>>,
    threshold: u64,
    /// Flows already blocked on the original path (the fast path blocks
    /// through the event-installed drop action instead).
    blocked: Arc<Mutex<HashMap<Fid, bool>>>,
}

impl DosGuard {
    /// Creates a guard that blocks a flow after `threshold` SYN packets.
    #[must_use]
    pub fn new(threshold: u64) -> Self {
        Self {
            syn_counts: Arc::new(Mutex::new(HashMap::new())),
            threshold,
            blocked: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The SYN count observed for a flow.
    #[must_use]
    pub fn syn_count(&self, fid: Fid) -> u64 {
        self.syn_counts.lock().get(&fid).copied().unwrap_or(0)
    }

    /// True if the flow has crossed the threshold.
    #[must_use]
    pub fn is_blocked(&self, fid: Fid) -> bool {
        self.syn_count(fid) > self.threshold
    }

    fn observe(counts: &Mutex<HashMap<Fid, u64>>, fid: Fid, is_syn: bool) -> u64 {
        let mut map = counts.lock();
        let c = map.entry(fid).or_insert(0);
        if is_syn {
            *c += 1;
        }
        *c
    }
}

impl Nf for DosGuard {
    fn name(&self) -> &str {
        "dosguard"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let fid = packet
            .fid()
            .unwrap_or_else(|| packet.five_tuple().map(|t| t.fid()).unwrap_or_default());
        ctx.ops.parses += 1;
        let is_syn = packet.tcp_flags().syn();
        let count = Self::observe(&self.syn_counts, fid, is_syn);
        ctx.ops.state_updates += 1;
        let blocked = count > self.threshold;
        self.blocked.lock().insert(fid, blocked);
        // SPEEDYBOX-INTEGRATION-BEGIN (dosguard: 18 lines)
        if let Some(inst) = ctx.instrument {
            inst.add_header_action(
                fid,
                if blocked { HeaderAction::Drop } else { HeaderAction::Forward },
                ctx.ops,
            );
            let counts = Arc::clone(&self.syn_counts);
            inst.add_state_function_handle(
                fid,
                StateFunction::new("dosguard.syn_count", PayloadAccess::Ignore, move |sfctx| {
                    let is_syn = sfctx.packet.tcp_flags().syn();
                    Self::observe(&counts, sfctx.fid, is_syn);
                    sfctx.ops.state_updates += 1;
                }),
                ctx.ops,
            );
            let counts = Arc::clone(&self.syn_counts);
            let threshold = self.threshold;
            inst.register_event(
                fid,
                "dosguard.block",
                move |fid| counts.lock().get(&fid).copied().unwrap_or(0) > threshold,
                |_| RulePatch::set_action(HeaderAction::Drop),
            );
        }
        // SPEEDYBOX-INTEGRATION-END
        if blocked {
            ctx.ops.drops += 1;
            NfVerdict::Drop
        } else {
            NfVerdict::Forward
        }
    }

    fn flow_closed(&mut self, fid: Fid) {
        self.syn_counts.lock().remove(&fid);
        self.blocked.lock().remove(&fid);
    }

    fn has_flow_state(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<StateSnapshot> {
        let capture: DosGuardCapture =
            (self.syn_counts.lock().clone(), self.blocked.lock().clone());
        Some(StateSnapshot::new(capture))
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let Some((counts, blocked)) = snapshot.downcast::<DosGuardCapture>() else {
            return false;
        };
        *self.syn_counts.lock() = counts.clone();
        *self.blocked.lock() = blocked.clone();
        true
    }

    fn crash(&mut self) {
        self.syn_counts.lock().clear();
        self.blocked.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::{PacketBuilder, TcpFlags};

    use super::*;

    fn syn_packet() -> Packet {
        let mut p = PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(TcpFlags::SYN)
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    fn ack_packet() -> Packet {
        let mut p = PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(TcpFlags::ACK)
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn counts_only_syns() {
        let mut guard = DosGuard::new(100);
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut s = syn_packet();
        let mut a = ack_packet();
        guard.process(&mut s, &mut ctx);
        guard.process(&mut a, &mut ctx);
        assert_eq!(guard.syn_count(s.fid().unwrap()), 1);
    }

    #[test]
    fn blocks_after_threshold() {
        let mut guard = DosGuard::new(3);
        let mut ops = OpCounter::default();
        let mut verdicts = Vec::new();
        for _ in 0..6 {
            let mut p = syn_packet();
            let mut ctx = NfContext::baseline(&mut ops);
            verdicts.push(guard.process(&mut p, &mut ctx));
        }
        assert_eq!(
            verdicts,
            vec![
                NfVerdict::Forward,
                NfVerdict::Forward,
                NfVerdict::Forward,
                NfVerdict::Drop,
                NfVerdict::Drop,
                NfVerdict::Drop
            ]
        );
    }

    #[test]
    fn event_fires_past_threshold() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut guard = DosGuard::new(2);
        let events = StdArc::new(EventTable::new());
        let inst = NfInstrument::new(StdArc::new(LocalMat::new(NfId::new(0))), events.clone());
        let mut ops = OpCounter::default();
        let mut p = syn_packet();
        {
            let mut ctx = NfContext::instrumented(&inst, &mut ops);
            guard.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        // Below threshold: silent.
        assert!(events.check(fid, &mut ops).is_empty());
        // Drive the SYN count over the threshold via the recorded SF.
        let rule = inst.local_mat().rule(fid).unwrap();
        for _ in 0..3 {
            let mut sub = syn_packet();
            let mut sfctx = speedybox_mat::state_fn::SfContext {
                packet: &mut sub,
                fid,
                ops: &mut ops,
                len_adjust: 0,
            };
            rule.state_functions[0].invoke(&mut sfctx);
        }
        let fired = events.check(fid, &mut ops);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1.header_actions, Some(vec![HeaderAction::Drop]));
    }

    #[test]
    fn snapshot_restores_syn_counts_across_crash() {
        let mut guard = DosGuard::new(3);
        let mut ops = OpCounter::default();
        for _ in 0..2 {
            let mut p = syn_packet();
            let mut ctx = NfContext::baseline(&mut ops);
            guard.process(&mut p, &mut ctx);
        }
        let fid = syn_packet().fid().unwrap();
        let snap = guard.snapshot_state().unwrap();
        // Two more SYNs push the flow over the threshold, then the crash
        // forgets the attack entirely.
        for _ in 0..2 {
            let mut p = syn_packet();
            let mut ctx = NfContext::baseline(&mut ops);
            guard.process(&mut p, &mut ctx);
        }
        assert!(guard.is_blocked(fid));
        guard.crash();
        assert_eq!(guard.syn_count(fid), 0);
        assert!(guard.restore_state(&snap));
        assert_eq!(guard.syn_count(fid), 2, "restored to the checkpointed count");
        assert!(!guard.is_blocked(fid));
        assert!(!guard.restore_state(&StateSnapshot::new(1i64)));
    }

    #[test]
    fn flow_closed_resets() {
        let mut guard = DosGuard::new(1);
        let mut ops = OpCounter::default();
        let mut p = syn_packet();
        {
            let mut ctx = NfContext::baseline(&mut ops);
            guard.process(&mut p, &mut ctx);
        }
        let fid = p.fid().unwrap();
        guard.flow_closed(fid);
        assert_eq!(guard.syn_count(fid), 0);
    }
}
