//! SnortLite: a Snort-style intrusion detection NF (paper §VI-C).
//!
//! The paper ports Snort onto DPDK and casts its packet-inspection
//! functions as SpeedyBox state functions; modifying Snort took 27 lines.
//! `SnortLite` reproduces the behaviourally relevant core: a rule language
//! subset (action, protocol, ports, `content` patterns, `msg`),
//! multi-pattern payload inspection via [`crate::AhoCorasick`], per-flow
//! rule-candidate selection on the initial packet ("Snort assigns a rule
//! matching function for each flow as initial packet arrives", Observation
//! 1), and Pass/Alert/Log outputs used by the §VII-C1 equivalence tests.
//!
//! Snort never modifies packets, so its header action is `forward` and its
//! inspection is a payload-`READ` state function.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use parking_lot::Mutex;
use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::{HeaderAction, StateFunction};
use speedybox_packet::{Fid, Packet, Protocol};

use crate::inspect::AhoCorasick;
use crate::nf::{Nf, NfContext, NfVerdict, StateSnapshot};
use crate::regex::Regex;

/// Rule action, in Snort's classic three flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleAction {
    /// Ignore matching traffic (stop further rule evaluation).
    Pass,
    /// Raise an alert and log.
    Alert,
    /// Log without alerting.
    Log,
}

impl fmt::Display for RuleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleAction::Pass => f.write_str("pass"),
            RuleAction::Alert => f.write_str("alert"),
            RuleAction::Log => f.write_str("log"),
        }
    }
}

/// A port constraint: `any` or a specific port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortSpec {
    /// Matches every port.
    Any,
    /// Matches exactly this port.
    Port(u16),
}

impl PortSpec {
    fn matches(self, port: u16) -> bool {
        match self {
            PortSpec::Any => true,
            PortSpec::Port(p) => p == port,
        }
    }
}

impl FromStr for PortSpec {
    type Err = RuleParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "any" {
            Ok(PortSpec::Any)
        } else {
            s.parse::<u16>().map(PortSpec::Port).map_err(|_| RuleParseError::BadPort(s.to_owned()))
        }
    }
}

/// One `content` pattern with its Snort modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentSpec {
    /// The byte pattern.
    pub pattern: Vec<u8>,
    /// `nocase`: match case-insensitively.
    pub nocase: bool,
    /// `offset:N`: the match may start no earlier than byte N.
    pub offset: usize,
    /// `depth:N`: the match must lie within N bytes starting at `offset`.
    pub depth: Option<usize>,
}

impl ContentSpec {
    /// A plain case-sensitive content with no positional constraints.
    #[must_use]
    pub fn plain(pattern: &[u8]) -> Self {
        Self { pattern: pattern.to_vec(), nocase: false, offset: 0, depth: None }
    }

    /// True if the content matches `payload` under its modifiers.
    #[must_use]
    pub fn matches(&self, payload: &[u8]) -> bool {
        if self.pattern.is_empty() {
            return true;
        }
        let start = self.offset.min(payload.len());
        let end = match self.depth {
            Some(d) => (self.offset + d).min(payload.len()),
            None => payload.len(),
        };
        let window = &payload[start..end];
        if window.len() < self.pattern.len() {
            return false;
        }
        window.windows(self.pattern.len()).any(|w| {
            if self.nocase {
                w.eq_ignore_ascii_case(&self.pattern)
            } else {
                w == self.pattern.as_slice()
            }
        })
    }
}

/// A parsed SnortLite rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// What to do on match.
    pub action: RuleAction,
    /// Transport protocol the rule applies to.
    pub protocol: Protocol,
    /// Source-port constraint.
    pub src_port: PortSpec,
    /// Destination-port constraint.
    pub dst_port: PortSpec,
    /// All `content` specs; every one must match the payload.
    pub contents: Vec<ContentSpec>,
    /// All `pcre` patterns; every one must match the payload (the regular
    /// matching the paper highlights as beyond OVS, §II-B).
    pub pcres: Vec<Regex>,
    /// Human-readable message for alert/log output.
    pub msg: String,
}

impl Rule {
    /// True if the rule's header constraints accept this flow.
    #[must_use]
    pub fn matches_header(&self, proto: Protocol, src_port: u16, dst_port: u16) -> bool {
        self.protocol == proto && self.src_port.matches(src_port) && self.dst_port.matches(dst_port)
    }

    /// True if every content spec and every pcre matches the payload.
    #[must_use]
    pub fn matches_payload(&self, payload: &[u8]) -> bool {
        self.contents.iter().all(|c| c.matches(payload))
            && self.pcres.iter().all(|r| r.is_match(payload))
    }
}

/// Errors from parsing the rule language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleParseError {
    /// The line does not have the `action proto sport -> dport (opts)` shape.
    BadShape(String),
    /// Unknown action keyword.
    BadAction(String),
    /// Unknown protocol keyword.
    BadProtocol(String),
    /// Unparseable port.
    BadPort(String),
    /// A rule without any `content` option (SnortLite requires one).
    NoContent,
    /// A content modifier (`nocase`/`offset`/`depth`) with no preceding
    /// `content`.
    DanglingModifier(String),
    /// A `pcre` option with an invalid pattern.
    BadPcre(crate::regex::RegexError),
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleParseError::BadShape(l) => write!(f, "malformed rule line: {l}"),
            RuleParseError::BadAction(a) => write!(f, "unknown rule action: {a}"),
            RuleParseError::BadProtocol(p) => write!(f, "unknown protocol: {p}"),
            RuleParseError::BadPort(p) => write!(f, "bad port: {p}"),
            RuleParseError::NoContent => f.write_str("rule has no content pattern"),
            RuleParseError::DanglingModifier(m) => {
                write!(f, "content modifier without a content: {m}")
            }
            RuleParseError::BadPcre(e) => write!(f, "bad pcre: {e}"),
        }
    }
}

impl std::error::Error for RuleParseError {}

impl FromStr for Rule {
    type Err = RuleParseError;

    /// Parses one rule line, e.g.:
    ///
    /// ```text
    /// alert tcp any any -> any 80 (msg:"evil GET"; content:"evil";)
    /// ```
    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let bad = || RuleParseError::BadShape(line.to_owned());
        let (head, opts) = line.split_once('(').ok_or_else(bad)?;
        let opts = opts.trim_end().strip_suffix(')').ok_or_else(bad)?;
        let mut parts = head.split_whitespace();
        let action = match parts.next().ok_or_else(bad)? {
            "pass" => RuleAction::Pass,
            "alert" => RuleAction::Alert,
            "log" => RuleAction::Log,
            other => return Err(RuleParseError::BadAction(other.to_owned())),
        };
        let protocol = match parts.next().ok_or_else(bad)? {
            "tcp" => Protocol::Tcp,
            "udp" => Protocol::Udp,
            other => return Err(RuleParseError::BadProtocol(other.to_owned())),
        };
        let _src_ip = parts.next().ok_or_else(bad)?; // `any` (IP constraints unsupported)
        let src_port: PortSpec = parts.next().ok_or_else(bad)?.parse()?;
        if parts.next() != Some("->") {
            return Err(bad());
        }
        let _dst_ip = parts.next().ok_or_else(bad)?;
        let dst_port: PortSpec = parts.next().ok_or_else(bad)?.parse()?;

        let mut contents: Vec<ContentSpec> = Vec::new();
        let mut pcres: Vec<Regex> = Vec::new();
        let mut msg = String::new();
        for opt in opts.split(';') {
            let opt = opt.trim();
            if opt.is_empty() {
                continue;
            }
            // Flag options (no value), then key:value options. Modifiers
            // apply to the most recent content, as in Snort.
            if opt == "nocase" {
                contents
                    .last_mut()
                    .ok_or_else(|| RuleParseError::DanglingModifier("nocase".into()))?
                    .nocase = true;
                continue;
            }
            let (key, value) = opt.split_once(':').ok_or_else(bad)?;
            let value = value.trim().trim_matches('"');
            match key.trim() {
                "content" => contents.push(ContentSpec::plain(value.as_bytes())),
                "pcre" => pcres.push(Regex::new(value).map_err(RuleParseError::BadPcre)?),
                "msg" => msg = value.to_owned(),
                "offset" => {
                    let n = value.parse().map_err(|_| bad())?;
                    contents
                        .last_mut()
                        .ok_or_else(|| RuleParseError::DanglingModifier("offset".into()))?
                        .offset = n;
                }
                "depth" => {
                    let n = value.parse().map_err(|_| bad())?;
                    contents
                        .last_mut()
                        .ok_or_else(|| RuleParseError::DanglingModifier("depth".into()))?
                        .depth = Some(n);
                }
                _ => {} // unknown options tolerated, as in Snort
            }
        }
        if contents.is_empty() && pcres.is_empty() {
            return Err(RuleParseError::NoContent);
        }
        Ok(Rule { action, protocol, src_port, dst_port, contents, pcres, msg })
    }
}

/// One line of IDS output, recorded for the equivalence tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The action that produced the entry (Alert or Log).
    pub action: RuleAction,
    /// The rule message.
    pub msg: String,
    /// The matched flow.
    pub fid: Fid,
}

/// Shared inspection state: automaton, rules and output log.
#[derive(Debug)]
struct Engine {
    rules: Vec<Rule>,
    /// One automaton over all rules' first content patterns; rule
    /// confirmation checks the remaining patterns.
    automaton: AhoCorasick,
    /// Pattern index -> rule index.
    pattern_rule: Vec<usize>,
    log: Mutex<Vec<LogEntry>>,
}

impl Engine {
    fn new(rules: Vec<Rule>) -> Self {
        // The Aho-Corasick prefilter covers case-sensitive contents; a
        // rule with at least one such content can be fast-rejected when
        // none of its patterns appear anywhere in the payload. Rules whose
        // contents are all `nocase` skip the prefilter and always go to
        // confirmation.
        let mut patterns = Vec::new();
        let mut pattern_rule = Vec::new();
        for (ri, rule) in rules.iter().enumerate() {
            for content in &rule.contents {
                if !content.nocase {
                    patterns.push(content.pattern.clone());
                    pattern_rule.push(ri);
                }
            }
        }
        let automaton = AhoCorasick::new(&patterns);
        Self { rules, automaton, pattern_rule, log: Mutex::new(Vec::new()) }
    }

    /// Inspects a payload against the candidate rule set; returns the first
    /// matching rule index (rule order = priority, as in Snort).
    fn inspect(&self, payload: &[u8], candidates: &[usize]) -> Option<usize> {
        let hits = self.automaton.matching_patterns(payload);
        let mut prefiltered: Vec<usize> = hits.iter().map(|&p| self.pattern_rule[p]).collect();
        prefiltered.sort_unstable();
        prefiltered.dedup();
        candidates.iter().copied().find(|&ri| {
            let rule = &self.rules[ri];
            let has_cs_content = rule.contents.iter().any(|c| !c.nocase);
            if has_cs_content && !prefiltered.contains(&ri) {
                return false; // fast reject: no pattern appeared at all
            }
            rule.matches_payload(payload)
        })
    }

    fn record(&self, rule: &Rule, fid: Fid) {
        match rule.action {
            RuleAction::Pass => {}
            RuleAction::Alert | RuleAction::Log => {
                self.log.lock().push(LogEntry { action: rule.action, msg: rule.msg.clone(), fid });
            }
        }
    }
}

/// The Snort-style IDS network function.
#[derive(Debug, Clone)]
pub struct SnortLite {
    engine: Arc<Engine>,
}

impl SnortLite {
    /// Builds the IDS from parsed rules.
    #[must_use]
    pub fn new(rules: Vec<Rule>) -> Self {
        Self { engine: Arc::new(Engine::new(rules)) }
    }

    /// Builds the IDS from rule text, one rule per line; `#` comments and
    /// blank lines are skipped.
    ///
    /// # Errors
    /// Returns the first parse failure.
    pub fn from_rules_text(text: &str) -> Result<Self, RuleParseError> {
        let rules = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(Rule::from_str)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(rules))
    }

    /// Snapshot of the alert/log output (for the §VII-C equivalence tests).
    #[must_use]
    pub fn log(&self) -> Vec<LogEntry> {
        self.engine.log.lock().clone()
    }

    /// Clears the output log.
    pub fn clear_log(&self) {
        self.engine.log.lock().clear();
    }

    /// Number of loaded rules.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.engine.rules.len()
    }

    /// Selects the rules whose header constraints accept this flow — the
    /// per-flow "rule matching function" Snort assigns at flow setup.
    fn candidates(&self, packet: &Packet) -> Vec<usize> {
        let Ok(t) = packet.five_tuple() else { return Vec::new() };
        self.engine
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.matches_header(t.protocol, t.src_port, t.dst_port))
            .map(|(i, _)| i)
            .collect()
    }
}

impl Nf for SnortLite {
    fn name(&self) -> &str {
        "snort"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        // Original Snort data path: decode, update per-flow tracking state
        // (Snort's stream/flowbits bookkeeping runs on every packet),
        // select candidate rules (header match), then inspect the payload.
        // The inspection callback is the only part the Local MAT records —
        // the per-packet scaffolding is what consolidation removes.
        ctx.ops.parses += 1;
        ctx.ops.hash_lookups += 1;
        ctx.ops.hash_updates += 1;
        ctx.ops.state_updates += 1;
        let candidates = self.candidates(packet);
        ctx.ops.acl_rules_scanned += self.engine.rules.len() as u64;
        let payload = packet.payload().unwrap_or(&[]);
        ctx.ops.payload_bytes_scanned += payload.len() as u64;
        let fid = packet.fid().unwrap_or_default();
        if let Some(ri) = self.engine.inspect(payload, &candidates) {
            self.engine.record(&self.engine.rules[ri], fid);
        }
        // SPEEDYBOX-INTEGRATION-BEGIN (snort: 14 lines)
        if let Some(inst) = ctx.instrument {
            let fid = inst.extract_fid(packet).unwrap_or_default();
            inst.add_header_action(fid, HeaderAction::Forward, ctx.ops);
            let engine = Arc::clone(&self.engine);
            let flow_candidates = candidates;
            inst.add_state_function_handle(
                fid,
                StateFunction::new("snort.inspect", PayloadAccess::Read, move |sfctx| {
                    let payload = sfctx.packet.payload().unwrap_or(&[]);
                    sfctx.ops.payload_bytes_scanned += payload.len() as u64;
                    if let Some(ri) = engine.inspect(payload, &flow_candidates) {
                        engine.record(&engine.rules[ri], sfctx.fid);
                    }
                }),
                ctx.ops,
            );
        }
        // SPEEDYBOX-INTEGRATION-END
        NfVerdict::Forward
    }

    fn has_flow_state(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<StateSnapshot> {
        Some(StateSnapshot::new(self.engine.log.lock().clone()))
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let Some(log) = snapshot.downcast::<Vec<LogEntry>>() else {
            return false;
        };
        *self.engine.log.lock() = log.clone();
        true
    }

    fn crash(&mut self) {
        // Rules and automaton are configuration and survive a re-exec;
        // the accumulated alert/log output does not.
        self.engine.log.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use speedybox_packet::PacketBuilder;

    use super::*;

    const RULES: &str = r#"
        # SnortLite test rules
        pass tcp any any -> any any (content:"healthcheck";)
        alert tcp any any -> any 80 (msg:"evil GET"; content:"evil";)
        log udp any any -> any any (msg:"dns query"; content:"dnsq";)
        alert tcp any any -> any any (msg:"two-part"; content:"part1"; content:"part2";)
    "#;

    fn ids() -> SnortLite {
        SnortLite::from_rules_text(RULES).unwrap()
    }

    fn tcp_packet(dst_port: u16, payload: &[u8]) -> Packet {
        let mut p = PacketBuilder::tcp()
            .src("10.0.0.1:1234".parse().unwrap())
            .dst(format!("10.0.0.2:{dst_port}").parse().unwrap())
            .payload(payload)
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn parses_rules() {
        assert_eq!(ids().rule_count(), 4);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!("garbage".parse::<Rule>(), Err(RuleParseError::BadShape(_))));
        assert!(matches!(
            "explode tcp any any -> any any (content:\"x\";)".parse::<Rule>(),
            Err(RuleParseError::BadAction(_))
        ));
        assert!(matches!(
            "alert icmp any any -> any any (content:\"x\";)".parse::<Rule>(),
            Err(RuleParseError::BadProtocol(_))
        ));
        assert!(matches!(
            "alert tcp any any -> any any (msg:\"no content\";)".parse::<Rule>(),
            Err(RuleParseError::NoContent)
        ));
        assert!(matches!(
            "alert tcp any nope -> any any (content:\"x\";)".parse::<Rule>(),
            Err(RuleParseError::BadPort(_))
        ));
    }

    #[test]
    fn pcre_rule_matches_regular_patterns() {
        let mut nf = SnortLite::from_rules_text(
            r#"alert tcp any any -> any any (msg:"traversal"; pcre:"/(\.\./)+/";)"#,
        )
        .unwrap();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut hit = tcp_packet(80, b"GET /../../etc/passwd");
        nf.process(&mut hit, &mut ctx);
        assert_eq!(nf.log().len(), 1);
        assert_eq!(nf.log()[0].msg, "traversal");
        nf.clear_log();
        let mut miss = tcp_packet(80, b"GET /index.html");
        nf.process(&mut miss, &mut ctx);
        assert!(nf.log().is_empty());
    }

    #[test]
    fn pcre_combines_with_content() {
        // content prefilters, pcre confirms.
        let mut nf = SnortLite::from_rules_text(
            r#"alert tcp any any -> any any (msg:"sqli"; content:"union"; pcre:"/union\s+select/";)"#,
        )
        .unwrap();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut hit = tcp_packet(80, b"x' union  select * from users");
        nf.process(&mut hit, &mut ctx);
        assert_eq!(nf.log().len(), 1);
        nf.clear_log();
        // content present but pcre not satisfied.
        let mut miss = tcp_packet(80, b"state of the union address");
        nf.process(&mut miss, &mut ctx);
        assert!(nf.log().is_empty());
    }

    #[test]
    fn bad_pcre_is_a_parse_error() {
        assert!(matches!(
            r#"alert tcp any any -> any any (pcre:"/(unclosed/";)"#.parse::<Rule>(),
            Err(RuleParseError::BadPcre(_))
        ));
    }

    #[test]
    fn pcre_only_rule_is_accepted() {
        let rule: Rule =
            r#"log tcp any any -> any any (msg:"digits"; pcre:"/\d\d\d/";)"#.parse().unwrap();
        assert!(rule.matches_payload(b"abc123"));
        assert!(!rule.matches_payload(b"abc12"));
    }

    #[test]
    fn nocase_content_matches_any_casing() {
        let rule: Rule =
            r#"alert tcp any any -> any any (msg:"nc"; content:"EvIl"; nocase;)"#.parse().unwrap();
        assert!(rule.matches_payload(b"all evil here"));
        assert!(rule.matches_payload(b"ALL EVIL HERE"));
        assert!(rule.matches_payload(b"eViL"));
        let cs: Rule =
            r#"alert tcp any any -> any any (msg:"cs"; content:"EvIl";)"#.parse().unwrap();
        assert!(!cs.matches_payload(b"all evil here"));
        assert!(cs.matches_payload(b"EvIl"));
    }

    #[test]
    fn offset_and_depth_constrain_match_window() {
        let rule: Rule =
            r#"alert tcp any any -> any any (content:"GET"; offset:4; depth:8;)"#.parse().unwrap();
        // Match must start at byte >= 4 and lie within [4, 12).
        assert!(!rule.matches_payload(b"GET xxxxxxxx"), "match at 0 violates offset");
        assert!(rule.matches_payload(b"xxxxGETxxxxx"));
        assert!(rule.matches_payload(b"xxxxxxxxxGET"), "starts at 9, ends at 12 = offset+depth");
        assert!(!rule.matches_payload(b"xxxxxxxxxxGET"), "ends past offset+depth");
        assert!(!rule.matches_payload(b"xx"), "window shorter than pattern");
    }

    #[test]
    fn dangling_modifier_is_rejected() {
        assert!(matches!(
            "alert tcp any any -> any any (nocase; content:\"x\";)".parse::<Rule>(),
            Err(RuleParseError::DanglingModifier(_))
        ));
        assert!(matches!(
            "alert tcp any any -> any any (offset:3; content:\"x\";)".parse::<Rule>(),
            Err(RuleParseError::DanglingModifier(_))
        ));
    }

    #[test]
    fn all_nocase_rule_still_fires_through_engine() {
        let mut nf = SnortLite::from_rules_text(
            r#"alert tcp any any -> any any (msg:"shout"; content:"ATTACK"; nocase;)"#,
        )
        .unwrap();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = tcp_packet(80, b"a quiet attack happens");
        nf.process(&mut p, &mut ctx);
        assert_eq!(nf.log().len(), 1);
        assert_eq!(nf.log()[0].msg, "shout");
    }

    #[test]
    fn mixed_case_sensitive_and_nocase_contents() {
        let mut nf = SnortLite::from_rules_text(
            r#"alert tcp any any -> any any (msg:"mix"; content:"hdr"; content:"BODY"; nocase;)"#,
        )
        .unwrap();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        // Case-sensitive "hdr" present, nocase "BODY" matched as "body".
        let mut hit = tcp_packet(80, b"hdr then body");
        nf.process(&mut hit, &mut ctx);
        assert_eq!(nf.log().len(), 1);
        nf.clear_log();
        // "HDR" fails the case-sensitive content even though body matches.
        let mut miss = tcp_packet(80, b"HDR then body");
        nf.process(&mut miss, &mut ctx);
        assert!(nf.log().is_empty());
    }

    #[test]
    fn alert_rule_fires_on_matching_port_and_content() {
        let mut nf = ids();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = tcp_packet(80, b"GET /evil HTTP/1.1");
        assert_eq!(nf.process(&mut p, &mut ctx), NfVerdict::Forward);
        let log = nf.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].action, RuleAction::Alert);
        assert_eq!(log[0].msg, "evil GET");
    }

    #[test]
    fn alert_rule_respects_port_constraint() {
        let mut nf = ids();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = tcp_packet(8080, b"GET /evil HTTP/1.1");
        nf.process(&mut p, &mut ctx);
        assert!(nf.log().is_empty(), "port-80 rule must not fire on 8080");
    }

    #[test]
    fn pass_rule_suppresses_output() {
        let mut nf = ids();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = tcp_packet(80, b"healthcheck evil");
        nf.process(&mut p, &mut ctx);
        // The pass rule is first and wins; no alert for "evil".
        assert!(nf.log().is_empty());
    }

    #[test]
    fn multi_content_rule_requires_all_patterns() {
        let mut nf = ids();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = tcp_packet(9999, b"only part1 here");
        nf.process(&mut p, &mut ctx);
        assert!(nf.log().is_empty());
        let mut p2 = tcp_packet(9999, b"part1 and part2");
        nf.process(&mut p2, &mut ctx);
        assert_eq!(nf.log().len(), 1);
        assert_eq!(nf.log()[0].msg, "two-part");
    }

    #[test]
    fn udp_log_rule() {
        let mut nf = ids();
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = PacketBuilder::udp()
            .src("10.0.0.1:5000".parse().unwrap())
            .dst("10.0.0.2:53".parse().unwrap())
            .payload(b"dnsq example.com")
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        nf.process(&mut p, &mut ctx);
        let log = nf.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].action, RuleAction::Log);
    }

    #[test]
    fn instrumented_records_forward_and_read_sf() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut nf = ids();
        let inst = NfInstrument::new(
            StdArc::new(LocalMat::new(NfId::new(0))),
            StdArc::new(EventTable::new()),
        );
        let mut ops = speedybox_mat::OpCounter::default();
        let mut ctx = NfContext::instrumented(&inst, &mut ops);
        let mut p = tcp_packet(80, b"clean");
        nf.process(&mut p, &mut ctx);
        let fid = p.fid().unwrap();
        let rule = inst.local_mat().rule(fid).unwrap();
        assert_eq!(rule.header_actions, vec![HeaderAction::Forward]);
        assert_eq!(rule.state_functions.len(), 1);
        assert_eq!(rule.state_functions[0].access(), PayloadAccess::Read);
    }

    #[test]
    fn recorded_sf_behaves_like_original() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::state_fn::SfContext;
        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut nf = ids();
        let inst = NfInstrument::new(
            StdArc::new(LocalMat::new(NfId::new(0))),
            StdArc::new(EventTable::new()),
        );
        let mut ops = speedybox_mat::OpCounter::default();
        // Initial packet: clean payload, records the SF.
        let mut initial = tcp_packet(80, b"clean");
        let mut ctx = NfContext::instrumented(&inst, &mut ops);
        nf.process(&mut initial, &mut ctx);
        nf.clear_log();
        // Subsequent packet with malicious payload, run through the
        // recorded state function only (fast path).
        let fid = initial.fid().unwrap();
        let rule = inst.local_mat().rule(fid).unwrap();
        let mut subsequent = tcp_packet(80, b"an evil payload");
        let mut sfctx = SfContext { packet: &mut subsequent, fid, ops: &mut ops, len_adjust: 0 };
        rule.state_functions[0].invoke(&mut sfctx);
        let log = nf.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].msg, "evil GET");
    }
}
