//! Monitor: a per-flow packet/byte counter NF (paper §VI-C).
//!
//! "It maintains packet counters for each flow, and sets each flow with a
//! forward action and a state function to maintain the associated
//! counter." The counter state function ignores the payload
//! (`PayloadAccess::Ignore`), which is what lets it parallelize with
//! Snort's payload-READ inspection in the Fig 6 chain.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::{HeaderAction, StateFunction};
use speedybox_packet::{Fid, Packet};

use crate::nf::{Nf, NfContext, NfVerdict, StateSnapshot};

/// Per-flow traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCounters {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen (full frame length).
    pub bytes: u64,
}

/// The network-monitor NF.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    counters: Arc<Mutex<HashMap<Fid, FlowCounters>>>,
}

impl Monitor {
    /// Creates a monitor with no counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters for a flow, if any packets were seen.
    #[must_use]
    pub fn counters(&self, fid: Fid) -> Option<FlowCounters> {
        self.counters.lock().get(&fid).copied()
    }

    /// A snapshot of all counters (for the §VII-C3 equivalence comparison).
    #[must_use]
    pub fn snapshot(&self) -> HashMap<Fid, FlowCounters> {
        self.counters.lock().clone()
    }

    /// Number of tracked flows.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.counters.lock().len()
    }

    fn count(counters: &Mutex<HashMap<Fid, FlowCounters>>, fid: Fid, frame_len: usize) {
        let mut map = counters.lock();
        let c = map.entry(fid).or_default();
        c.packets += 1;
        c.bytes += frame_len as u64;
    }
}

impl Nf for Monitor {
    fn name(&self) -> &str {
        "monitor"
    }

    fn process(&mut self, packet: &mut Packet, ctx: &mut NfContext<'_>) -> NfVerdict {
        let fid = packet
            .fid()
            .unwrap_or_else(|| packet.five_tuple().map(|t| t.fid()).unwrap_or_default());
        ctx.ops.parses += 1;
        Self::count(&self.counters, fid, packet.len());
        ctx.ops.state_updates += 1;
        // SPEEDYBOX-INTEGRATION-BEGIN (monitor: 11 lines)
        if let Some(inst) = ctx.instrument {
            inst.add_header_action(fid, HeaderAction::Forward, ctx.ops);
            let counters = Arc::clone(&self.counters);
            inst.add_state_function_handle(
                fid,
                // `frame_len()` (not `packet.len()`): on the fast path the
                // packet is already in egress form, and the positional
                // adjustment keeps byte counts exact when the monitor sits
                // inside an annihilated encap/decap window.
                StateFunction::new("monitor.count", PayloadAccess::Ignore, move |sfctx| {
                    Self::count(&counters, sfctx.fid, sfctx.frame_len());
                    sfctx.ops.state_updates += 1;
                }),
                ctx.ops,
            );
        }
        // SPEEDYBOX-INTEGRATION-END
        NfVerdict::Forward
    }

    fn flow_closed(&mut self, fid: Fid) {
        self.counters.lock().remove(&fid);
    }

    fn has_flow_state(&self) -> bool {
        true
    }

    fn snapshot_state(&self) -> Option<StateSnapshot> {
        Some(StateSnapshot::new(self.counters.lock().clone()))
    }

    fn restore_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let Some(map) = snapshot.downcast::<HashMap<Fid, FlowCounters>>() else {
            return false;
        };
        *self.counters.lock() = map.clone();
        true
    }

    fn crash(&mut self) {
        self.counters.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::OpCounter;
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn packet(src_port: u16, payload: &[u8]) -> Packet {
        let mut p = PacketBuilder::tcp()
            .src(format!("10.0.0.1:{src_port}").parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(payload)
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        p
    }

    #[test]
    fn counts_packets_and_bytes() {
        let mut mon = Monitor::new();
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p1 = packet(1000, b"aaaa");
        let mut p2 = packet(1000, b"bbbbbbbb");
        mon.process(&mut p1, &mut ctx);
        mon.process(&mut p2, &mut ctx);
        let c = mon.counters(p1.fid().unwrap()).unwrap();
        assert_eq!(c.packets, 2);
        assert_eq!(c.bytes, (p1.len() + p2.len()) as u64);
    }

    #[test]
    fn flows_counted_separately() {
        let mut mon = Monitor::new();
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut a = packet(1000, b"x");
        let mut b = packet(2000, b"x");
        mon.process(&mut a, &mut ctx);
        mon.process(&mut b, &mut ctx);
        assert_eq!(mon.flow_count(), 2);
        assert_eq!(mon.counters(a.fid().unwrap()).unwrap().packets, 1);
    }

    #[test]
    fn recorded_sf_counts_like_original() {
        use std::sync::Arc as StdArc;

        use speedybox_mat::state_fn::SfContext;
        use speedybox_mat::{EventTable, LocalMat, NfId, NfInstrument};

        let mut mon = Monitor::new();
        let inst = NfInstrument::new(
            StdArc::new(LocalMat::new(NfId::new(0))),
            StdArc::new(EventTable::new()),
        );
        let mut ops = OpCounter::default();
        let mut initial = packet(1000, b"init");
        {
            let mut ctx = NfContext::instrumented(&inst, &mut ops);
            mon.process(&mut initial, &mut ctx);
        }
        let fid = initial.fid().unwrap();
        let rule = inst.local_mat().rule(fid).unwrap();
        assert_eq!(rule.header_actions, vec![HeaderAction::Forward]);
        assert_eq!(rule.state_functions[0].access(), PayloadAccess::Ignore);
        // Fast-path invocation updates the same counters.
        let mut sub = packet(1000, b"sub");
        let mut sfctx = SfContext { packet: &mut sub, fid, ops: &mut ops, len_adjust: 0 };
        rule.state_functions[0].invoke(&mut sfctx);
        assert_eq!(mon.counters(fid).unwrap().packets, 2);
    }

    #[test]
    fn flow_closed_releases_state() {
        let mut mon = Monitor::new();
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet(1000, b"x");
        mon.process(&mut p, &mut ctx);
        mon.flow_closed(p.fid().unwrap());
        assert_eq!(mon.flow_count(), 0);
    }

    #[test]
    fn unknown_flow_has_no_counters() {
        let mon = Monitor::new();
        assert!(mon.counters(Fid::new(123)).is_none());
    }

    #[test]
    fn snapshot_restores_counters_after_crash() {
        let mut mon = Monitor::new();
        let mut ops = OpCounter::default();
        let mut ctx = NfContext::baseline(&mut ops);
        let mut p = packet(1000, b"counted");
        mon.process(&mut p, &mut ctx);
        let fid = p.fid().unwrap();
        assert!(mon.has_flow_state());
        let snap = mon.snapshot_state().unwrap();
        // More traffic after the checkpoint, then a crash wipes everything.
        let mut p2 = packet(1000, b"post-checkpoint");
        mon.process(&mut p2, &mut ctx);
        mon.crash();
        assert_eq!(mon.flow_count(), 0);
        assert!(mon.restore_state(&snap));
        let c = mon.counters(fid).unwrap();
        assert_eq!(c.packets, 1, "restored to the checkpoint, not the crash point");
        // A foreign snapshot is rejected and leaves state alone.
        assert!(!mon.restore_state(&StateSnapshot::new(42u64)));
        assert_eq!(mon.counters(fid).unwrap().packets, 1);
    }
}
