//! A small regular-expression engine for payload inspection.
//!
//! The paper's §II-B motivates NFV consolidation over OVS-style caches
//! precisely because "the Snort IDS requires regular matching to inspect
//! packet payload, which is not supported in standard OVS". This module
//! provides that regular matching for [`crate::snort`]'s `pcre` option:
//! a classic Thompson-construction NFA simulated breadth-first, so
//! matching is linear in the payload (no backtracking blow-ups from
//! adversarial payloads — an IDS must not be DoS-able by its own matcher).
//!
//! Supported syntax: literals, `.`, character classes `[a-z]`/`[^…]`,
//! escapes (`\d \D \w \W \s \S \n \r \t \\` and escaped metacharacters),
//! grouping `(...)`, alternation `|`, repetition `* + ?`, and anchors
//! `^`/`$`. Matching is unanchored unless anchored explicitly.

use std::fmt;

/// A compiled regular expression.
///
/// ```
/// use speedybox_nf::Regex;
///
/// let re = Regex::new(r"/union\s+select/")?; // Snort-style delimiters OK
/// assert!(re.is_match(b"x' union  select *"));
/// assert!(!re.is_match(b"state of the union"));
/// # Ok::<(), speedybox_nf::regex::RegexError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    program: Vec<Inst>,
    pattern: String,
    anchored_start: bool,
}

/// Errors from compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Unbalanced parenthesis.
    UnbalancedParen,
    /// Unterminated character class.
    UnterminatedClass,
    /// A repetition operator with nothing to repeat.
    NothingToRepeat,
    /// Trailing backslash.
    DanglingEscape,
    /// Empty pattern (matches everything; almost certainly a rule bug).
    Empty,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::UnbalancedParen => f.write_str("unbalanced parenthesis"),
            RegexError::UnterminatedClass => f.write_str("unterminated character class"),
            RegexError::NothingToRepeat => f.write_str("repetition with nothing to repeat"),
            RegexError::DanglingEscape => f.write_str("trailing backslash"),
            RegexError::Empty => f.write_str("empty pattern"),
        }
    }
}

impl std::error::Error for RegexError {}

/// A 256-bit byte-set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ByteSet([u64; 4]);

impl ByteSet {
    fn empty() -> Self {
        ByteSet([0; 4])
    }

    fn add(&mut self, b: u8) {
        self.0[(b >> 6) as usize] |= 1 << (b & 63);
    }

    fn add_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.add(b);
        }
    }

    fn contains(&self, b: u8) -> bool {
        self.0[(b >> 6) as usize] & (1 << (b & 63)) != 0
    }

    fn negate(&mut self) {
        for w in &mut self.0 {
            *w = !*w;
        }
    }

    fn any() -> Self {
        let mut s = ByteSet::empty();
        s.negate();
        s
    }
}

/// NFA instructions (Thompson-style program).
#[derive(Debug, Clone, Copy)]
enum Inst {
    /// Match one byte in the set, advance.
    Byte(ByteSet),
    /// Unconditional jump.
    Jmp(usize),
    /// Fork into two paths.
    Split(usize, usize),
    /// Assert end of input.
    EndAnchor,
    /// Accept.
    Match,
}

// ---- parser: pattern -> AST ----

#[derive(Debug, Clone)]
enum Ast {
    Byte(ByteSet),
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
    EndAnchor,
    Epsilon,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut lhs = self.parse_concat()?;
        while self.peek() == Some(b'|') {
            self.bump();
            let rhs = self.parse_concat()?;
            lhs = Ast::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Epsilon,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        match self.peek() {
            Some(b'*') => {
                self.bump();
                Self::repeatable(&atom)?;
                Ok(Ast::Star(Box::new(atom)))
            }
            Some(b'+') => {
                self.bump();
                Self::repeatable(&atom)?;
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some(b'?') => {
                self.bump();
                Self::repeatable(&atom)?;
                Ok(Ast::Quest(Box::new(atom)))
            }
            _ => Ok(atom),
        }
    }

    fn repeatable(ast: &Ast) -> Result<(), RegexError> {
        match ast {
            Ast::Epsilon | Ast::EndAnchor => Err(RegexError::NothingToRepeat),
            _ => Ok(()),
        }
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump().expect("caller checked peek") {
            b'(' => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return Err(RegexError::UnbalancedParen);
                }
                Ok(inner)
            }
            b')' => Err(RegexError::UnbalancedParen),
            b'[' => self.parse_class(),
            b'.' => Ok(Ast::Byte(ByteSet::any())),
            b'$' => Ok(Ast::EndAnchor),
            b'*' | b'+' | b'?' => Err(RegexError::NothingToRepeat),
            b'\\' => {
                let set = self.parse_escape()?;
                Ok(Ast::Byte(set))
            }
            b => {
                let mut set = ByteSet::empty();
                set.add(b);
                Ok(Ast::Byte(set))
            }
        }
    }

    fn parse_escape(&mut self) -> Result<ByteSet, RegexError> {
        let Some(b) = self.bump() else { return Err(RegexError::DanglingEscape) };
        let mut set = ByteSet::empty();
        match b {
            b'd' => set.add_range(b'0', b'9'),
            b'D' => {
                set.add_range(b'0', b'9');
                set.negate();
            }
            b'w' => {
                set.add_range(b'a', b'z');
                set.add_range(b'A', b'Z');
                set.add_range(b'0', b'9');
                set.add(b'_');
            }
            b'W' => {
                set.add_range(b'a', b'z');
                set.add_range(b'A', b'Z');
                set.add_range(b'0', b'9');
                set.add(b'_');
                set.negate();
            }
            b's' => {
                for c in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                    set.add(c);
                }
            }
            b'S' => {
                for c in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                    set.add(c);
                }
                set.negate();
            }
            b'n' => set.add(b'\n'),
            b'r' => set.add(b'\r'),
            b't' => set.add(b'\t'),
            b'0' => set.add(0),
            other => set.add(other), // escaped metacharacter or literal
        }
        Ok(set)
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let mut set = ByteSet::empty();
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut first = true;
        loop {
            let Some(b) = self.bump() else { return Err(RegexError::UnterminatedClass) };
            match b {
                b']' if !first => break,
                b'\\' => {
                    let esc = self.parse_escape()?;
                    for i in 0..=255u8 {
                        if esc.contains(i) {
                            set.add(i);
                        }
                    }
                }
                lo => {
                    // Range `a-z` (a literal `-` at the end is itself).
                    if self.peek() == Some(b'-')
                        && self.bytes.get(self.pos + 1).is_some_and(|&n| n != b']')
                    {
                        self.bump(); // '-'
                        let Some(hi) = self.bump() else {
                            return Err(RegexError::UnterminatedClass);
                        };
                        set.add_range(lo.min(hi), lo.max(hi));
                    } else {
                        set.add(lo);
                    }
                }
            }
            first = false;
        }
        if negated {
            set.negate();
        }
        Ok(Ast::Byte(set))
    }
}

// ---- compiler: AST -> program ----

fn compile(ast: &Ast, program: &mut Vec<Inst>) {
    match ast {
        Ast::Epsilon => {}
        Ast::Byte(set) => program.push(Inst::Byte(*set)),
        Ast::EndAnchor => program.push(Inst::EndAnchor),
        Ast::Concat(items) => {
            for item in items {
                compile(item, program);
            }
        }
        Ast::Alt(a, b) => {
            let split = program.len();
            program.push(Inst::Split(0, 0)); // patched
            compile(a, program);
            let jmp = program.len();
            program.push(Inst::Jmp(0)); // patched
            let b_start = program.len();
            compile(b, program);
            let end = program.len();
            program[split] = Inst::Split(split + 1, b_start);
            program[jmp] = Inst::Jmp(end);
        }
        Ast::Star(inner) => {
            let split = program.len();
            program.push(Inst::Split(0, 0));
            compile(inner, program);
            program.push(Inst::Jmp(split));
            let end = program.len();
            program[split] = Inst::Split(split + 1, end);
        }
        Ast::Plus(inner) => {
            let start = program.len();
            compile(inner, program);
            let split = program.len();
            program.push(Inst::Split(start, split + 1));
        }
        Ast::Quest(inner) => {
            let split = program.len();
            program.push(Inst::Split(0, 0));
            compile(inner, program);
            let end = program.len();
            program[split] = Inst::Split(split + 1, end);
        }
    }
}

impl Regex {
    /// Compiles a pattern. Snort-style `/.../ ` delimiters are accepted
    /// and stripped.
    ///
    /// # Errors
    /// Returns [`RegexError`] for malformed patterns.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        let trimmed =
            pattern.strip_prefix('/').and_then(|p| p.strip_suffix('/')).unwrap_or(pattern);
        if trimmed.is_empty() {
            return Err(RegexError::Empty);
        }
        let (anchored_start, body) = match trimmed.strip_prefix('^') {
            Some(rest) => (true, rest),
            None => (false, trimmed),
        };
        let mut parser = Parser { bytes: body.as_bytes(), pos: 0 };
        let ast = parser.parse_alt()?;
        if parser.pos != body.len() {
            // Leftover input means an unmatched ')'.
            return Err(RegexError::UnbalancedParen);
        }
        let mut program = Vec::new();
        compile(&ast, &mut program);
        program.push(Inst::Match);
        Ok(Self { program, pattern: pattern.to_owned(), anchored_start })
    }

    /// The original pattern text.
    #[must_use]
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// True if the pattern matches anywhere in `haystack` (or at the start
    /// only, when the pattern is `^`-anchored).
    ///
    /// Runs in `O(len(haystack) × program size)` — no backtracking.
    #[must_use]
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut current = vec![false; self.program.len()];
        let mut next = vec![false; self.program.len()];
        let mut matched_empty = false;
        self.add_thread(0, haystack.is_empty(), &mut current, &mut matched_empty);
        if matched_empty {
            return true;
        }
        for (i, &byte) in haystack.iter().enumerate() {
            let at_end_after = i + 1 == haystack.len();
            // Unanchored search: a new attempt starts at every offset.
            if !self.anchored_start {
                let mut dummy = false;
                self.add_thread(0, false, &mut current, &mut dummy);
            }
            let mut any_match = false;
            for (pc, &live) in current.iter().enumerate() {
                if !live {
                    continue;
                }
                if let Inst::Byte(set) = self.program[pc] {
                    if set.contains(byte) {
                        self.add_thread(pc + 1, at_end_after, &mut next, &mut any_match);
                    }
                }
            }
            if any_match {
                return true;
            }
            std::mem::swap(&mut current, &mut next);
            next.iter_mut().for_each(|t| *t = false);
        }
        // A final attempt at the end-of-input position catches patterns
        // that match the empty string only there (e.g. `x$|$`-style
        // alternations or `a*$` on a haystack with no `a`s).
        if !self.anchored_start && !haystack.is_empty() {
            let mut matched = false;
            let mut end_threads = vec![false; self.program.len()];
            self.add_thread(0, true, &mut end_threads, &mut matched);
            if matched {
                return true;
            }
        }
        false
    }

    /// Adds a thread at `pc`, following epsilon transitions; sets `matched`
    /// if an accepting state is reachable. `at_end` reports whether the
    /// read head is at the end of input (for `$`).
    fn add_thread(&self, pc: usize, at_end: bool, threads: &mut [bool], matched: &mut bool) {
        if pc >= self.program.len() || threads[pc] {
            return;
        }
        match self.program[pc] {
            Inst::Byte(_) => threads[pc] = true,
            Inst::Jmp(t) => self.add_thread(t, at_end, threads, matched),
            Inst::Split(a, b) => {
                threads[pc] = true; // visited marker to cut cycles
                self.add_thread(a, at_end, threads, matched);
                self.add_thread(b, at_end, threads, matched);
            }
            Inst::EndAnchor => {
                threads[pc] = true;
                if at_end {
                    self.add_thread(pc + 1, at_end, threads, matched);
                }
            }
            Inst::Match => *matched = true,
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/", self.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, hay: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(hay.as_bytes())
    }

    #[test]
    fn literals() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab c"));
        assert!(m("a", "a"));
        assert!(!m("a", ""));
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a!c"));
        assert!(!m("a.c", "ac"));
        assert!(m("[abc]+", "zzbzz"));
        assert!(m("[a-f0-9]+", "deadbeef"));
        assert!(!m("[a-f]", "xyz"));
        assert!(m("[^0-9]", "a"));
        assert!(!m("[^0-9]+", "123"));
        assert!(m("[-x]", "-"), "literal dash at class end");
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d+", "port 8080"));
        assert!(!m(r"\d", "no digits"));
        assert!(m(r"\w+", "under_score"));
        assert!(m(r"\s", "a b"));
        assert!(m(r"\.", "a.b"));
        assert!(!m(r"\.", "ab"));
        assert!(m(r"a\\b", r"a\b"));
        assert!(m(r"\S+", "x"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("cat|dog", "catnip"));
        assert!(!m("cat|dog", "bird"));
        assert!(m("(ab)+", "ababab"));
        assert!(m("a(b|c)d", "acd"));
        assert!(!m("a(b|c)d", "aed"));
        assert!(m("(a|b)(c|d)", "bd"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("xyz$", "wxyz"));
        assert!(!m("xyz$", "xyza"));
        assert!(m("^only$", "only"));
        assert!(!m("^only$", "only more"));
    }

    #[test]
    fn empty_match_at_end_of_input() {
        assert!(m("$", "abc"), "bare end anchor matches the empty suffix");
        assert!(m("a*$", "bbb"), "a*$ matches empty at end");
        assert!(m("x?$", "abc"));
        assert!(!m("^$", "abc"), "anchored-empty must not match nonempty input");
        assert!(m("^$", ""));
    }

    #[test]
    fn snort_style_delimiters() {
        let r = Regex::new("/evil[0-9]+/").unwrap();
        assert!(r.is_match(b"GET /evil123 HTTP"));
        assert!(!r.is_match(b"GET /evil HTTP"));
        assert_eq!(r.pattern(), "/evil[0-9]+/");
    }

    #[test]
    fn ids_relevant_patterns() {
        // Shellcode-ish NOP sled.
        let sled = Regex::new(r"\x90*AAAA").unwrap();
        let _ = sled; // \x not supported: 'x' literal — verify it compiles
                      // SQL injection heuristic.
        assert!(m(r"union\s+select", "x' UNION  select".to_lowercase().as_str()));
        // Directory traversal.
        assert!(m(r"(\.\./)+", "GET /../../etc/passwd"));
        // Long digit run (card-number-ish).
        assert!(m(r"\d\d\d\d\d\d\d\d", "id=12345678x"));
    }

    #[test]
    fn no_backtracking_blowup() {
        // Classic catastrophic-backtracking pattern: linear here.
        let r = Regex::new("(a+)+b").unwrap();
        let hay = vec![b'a'; 10_000];
        let start = std::time::Instant::now();
        assert!(!r.is_match(&hay));
        assert!(start.elapsed().as_secs() < 2, "must not blow up");
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Regex::new("(abc").unwrap_err(), RegexError::UnbalancedParen);
        assert_eq!(Regex::new("abc)").unwrap_err(), RegexError::UnbalancedParen);
        assert_eq!(Regex::new("[abc").unwrap_err(), RegexError::UnterminatedClass);
        assert_eq!(Regex::new("*a").unwrap_err(), RegexError::NothingToRepeat);
        assert_eq!(Regex::new("a|*").unwrap_err(), RegexError::NothingToRepeat);
        assert_eq!(Regex::new("abc\\").unwrap_err(), RegexError::DanglingEscape);
        assert_eq!(Regex::new("").unwrap_err(), RegexError::Empty);
        assert_eq!(Regex::new("//").unwrap_err(), RegexError::Empty);
    }

    #[test]
    fn binary_payloads() {
        let r = Regex::new("ab").unwrap();
        let mut hay = vec![0u8, 255, 7];
        hay.extend_from_slice(b"ab");
        assert!(r.is_match(&hay));
    }

    #[test]
    fn empty_haystack() {
        assert!(!m("a", ""));
        assert!(m("a*", ""));
        assert!(m("a?", ""));
    }
}
