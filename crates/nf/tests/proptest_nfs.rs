//! Property-based tests for the NF library's core data structures.

use std::collections::HashSet;
use std::net::SocketAddrV4;

use proptest::prelude::*;
use speedybox_mat::OpCounter;
use speedybox_nf::maglev::Maglev;
use speedybox_nf::mazunat::MazuNat;
use speedybox_nf::{AhoCorasick, Nf, NfContext, Regex};
use speedybox_packet::{HeaderField, Packet, PacketBuilder};

fn backends(n: usize) -> Vec<(String, SocketAddrV4)> {
    (0..n)
        .map(|i| {
            (
                format!("backend-{i}"),
                format!("10.1.{}.{}:8080", i / 250, (i % 250) + 1).parse().unwrap(),
            )
        })
        .collect()
}

/// Primes for the Maglev table size, as the Maglev paper requires.
const PRIMES: [usize; 5] = [53, 101, 211, 251, 509];

proptest! {
    /// The Maglev lookup table is always fully populated and near-balanced
    /// ("almost-equal share" is Maglev's core guarantee).
    #[test]
    fn maglev_table_balanced(
        n_backends in 1usize..12,
        prime_idx in 0usize..PRIMES.len(),
    ) {
        let m = PRIMES[prime_idx];
        prop_assume!(m > n_backends * 4);
        let lb = Maglev::new(backends(n_backends), m);
        let shares = lb.table_shares();
        prop_assert_eq!(shares.len(), n_backends);
        let total: usize = shares.values().sum();
        prop_assert_eq!(total, m);
        let min = *shares.values().min().unwrap();
        let max = *shares.values().max().unwrap();
        // Maglev's populate guarantees a spread of at most ~1 slot per
        // round; allow 2 for rounding.
        prop_assert!(max - min <= 2, "spread {min}..{max} over {m} slots");
    }

    /// Failing one backend disrupts only slots that pointed at it (the
    /// consistent-hashing minimal-disruption property, within tolerance).
    #[test]
    fn maglev_failure_disruption_bounded(
        n_backends in 3usize..8,
        victim in 0usize..3,
    ) {
        let lb = Maglev::new(backends(n_backends), 251);
        let before = lb.table_shares();
        let name = format!("backend-{victim}");
        let moved_budget = before[&name];
        let lb2 = Maglev::new(backends(n_backends), 251);
        lb2.fail_backend(&name);
        let after = lb2.table_shares();
        prop_assert!(!after.contains_key(&name));
        // Every surviving backend keeps at least its previous share
        // (slots only flow *from* the victim, modulo small reshuffles).
        for (b, &share) in &after {
            let prev = before[b];
            prop_assert!(
                share + moved_budget >= prev && share >= prev.saturating_sub(moved_budget / 2),
                "{b}: {prev} -> {share} with budget {moved_budget}"
            );
        }
    }

    /// NAT port allocations are unique, in range, and the reverse map is
    /// consistent — across arbitrary interleavings of opens and closes.
    #[test]
    fn nat_mappings_bijective(ops_seq in prop::collection::vec((0u16..64, prop::bool::ANY), 1..80)) {
        let mut nat = MazuNat::new("198.51.100.1".parse().unwrap(), (50000, 50200));
        let mut open: HashSet<u16> = HashSet::new();
        for (flow, close) in ops_seq {
            let src: SocketAddrV4 = format!("192.168.0.7:{}", 1000 + flow).parse().unwrap();
            let mut p = PacketBuilder::tcp()
                .src(src)
                .dst("93.184.216.34:443".parse().unwrap())
                .build();
            let fid = p.five_tuple().unwrap().fid();
            p.set_fid(fid);
            if close {
                nat.flow_closed(fid);
                open.remove(&flow);
            } else {
                let mut counter = OpCounter::default();
                let mut ctx = NfContext::baseline(&mut counter);
                let verdict = nat.process(&mut p, &mut ctx);
                prop_assert!(verdict.survives(), "port pool is large enough");
                open.insert(flow);
                let port = p.get_field(HeaderField::SrcPort).unwrap().as_port();
                prop_assert!((50000..=50200).contains(&port));
                prop_assert_eq!(nat.flow_for_port(port), Some(fid), "reverse map consistent");
            }
        }
        prop_assert_eq!(nat.mapping_count(), open.len());
    }

    /// Aho-Corasick agrees with naive substring search on arbitrary
    /// patterns and haystacks.
    #[test]
    fn aho_corasick_matches_naive(
        patterns in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..6), 1..6),
        haystack in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let ac = AhoCorasick::new(&patterns);
        let got = ac.matching_patterns(&haystack);
        let want: Vec<usize> = patterns
            .iter()
            .enumerate()
            .filter(|(_, p)| haystack.windows(p.len()).any(|w| w == p.as_slice()))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The regex compiler is total (arbitrary patterns either compile or
    /// return an error, never panic), and matching never panics.
    #[test]
    fn regex_compile_and_match_total(pattern in ".{0,40}", hay in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&hay);
            let _ = re.is_match(b"");
        }
    }

    /// A regex built from escaped literal bytes matches exactly the
    /// haystacks that contain that literal.
    #[test]
    fn regex_literal_equals_substring_search(
        lit in prop::collection::vec(prop::sample::select(b"abcxyz01".to_vec()), 1..6),
        hay in prop::collection::vec(prop::sample::select(b"abcxyz01".to_vec()), 0..60),
    ) {
        let pattern: String = lit.iter().map(|&b| b as char).collect();
        let re = Regex::new(&pattern).unwrap();
        let expect = hay.windows(lit.len()).any(|w| w == lit.as_slice());
        prop_assert_eq!(re.is_match(&hay), expect);
    }

    /// Matching is linear-ish: nested quantifiers over long inputs finish
    /// fast (no catastrophic backtracking by construction).
    #[test]
    fn regex_no_blowup(n in 100usize..2000) {
        let re = Regex::new("(a|aa)+c").unwrap();
        let hay = vec![b'a'; n];
        let start = std::time::Instant::now();
        prop_assert!(!re.is_match(&hay));
        prop_assert!(start.elapsed().as_millis() < 500);
    }

    /// The rule parser never panics on arbitrary input and round-trips the
    /// rules it accepts through header matching sensibly.

    #[test]
    fn snort_rule_parser_total(line in ".{0,200}") {
        let _ = line.parse::<speedybox_nf::snort::Rule>();
    }

    /// Maglev flow assignment is sticky under arbitrary packet orders:
    /// the same flow always reaches the same backend while it is healthy.
    #[test]
    fn maglev_stickiness(ports in prop::collection::vec(1000u16..1032, 1..40)) {
        let mut lb = Maglev::new(backends(5), 251);
        let mut assigned: std::collections::HashMap<u16, std::net::Ipv4Addr> =
            std::collections::HashMap::new();
        for port in ports {
            let mut p: Packet = PacketBuilder::tcp()
                .src(format!("10.0.0.1:{port}").parse().unwrap())
                .dst("10.99.99.99:80".parse().unwrap())
                .build();
            let fid = p.five_tuple().unwrap().fid();
            p.set_fid(fid);
            let mut counter = OpCounter::default();
            let mut ctx = NfContext::baseline(&mut counter);
            prop_assert!(lb.process(&mut p, &mut ctx).survives());
            let dst = p.get_field(HeaderField::DstIp).unwrap().as_ipv4();
            if let Some(&prev) = assigned.get(&port) {
                prop_assert_eq!(dst, prev, "flow on port {} moved", port);
            } else {
                assigned.insert(port, dst);
            }
        }
    }
}
