//! Fig 8: long service chains.
//!
//! "We use a chain with 1-9 IPFilters ... Note that in OpenNetVM, we can
//! only support a maximum chain length of 5, limited by the number of
//! cores on our testbed; for BESS, there is no such limit."
//!
//! Paper anchors: SpeedyBox latency is "nearly irrelevant to the chain
//! length"; original latency grows linearly; BESS rate collapses with
//! length while SpeedyBox holds it; ONVM rate is flat either way.

use std::fmt;

use speedybox_platform::chains::ipfilter_chain;
use speedybox_stats::Table;

use crate::harness::{flow_packets, steady_state, Env, Runner};

/// ACL rules per IPFilter.
pub const ACL_RULES: usize = 200;
/// Packets measured per configuration.
pub const PACKETS: usize = 200;
/// Maximum ONVM chain length (core-count limit on the paper's testbed).
pub const ONVM_MAX: usize = 5;
/// Maximum BESS chain length.
pub const BESS_MAX: usize = 9;

/// One point.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Point {
    /// Chain length.
    pub n: usize,
    /// Latency, µs.
    pub latency_us: f64,
    /// Rate, Mpps.
    pub rate_mpps: f64,
}

/// One series.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// Environment.
    pub env: Env,
    /// SpeedyBox enabled?
    pub speedybox: bool,
    /// Points for the lengths this environment supports.
    pub points: Vec<Fig8Point>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// All four series.
    pub series: Vec<Fig8Series>,
}

fn series(env: Env, speedybox: bool) -> Fig8Series {
    let max = match env {
        Env::Bess => BESS_MAX,
        Env::Onvm => ONVM_MAX,
    };
    let points = (1..=max)
        .map(|n| {
            let mut runner = Runner::new(env, ipfilter_chain(n, ACL_RULES), speedybox);
            let model = *runner.model();
            let pkts = flow_packets(PACKETS + 1, 2300, 10);
            let mut iter = pkts.into_iter();
            let _warmup = runner.process(iter.next().expect("nonempty"));
            let stats = runner.run(iter);
            let ss = steady_state(&stats, &model);
            Fig8Point { n, latency_us: ss.latency_us, rate_mpps: runner.rate_mpps(&stats) }
        })
        .collect();
    Fig8Series { env, speedybox, points }
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig8 {
    let mut all = Vec::new();
    for env in [Env::Bess, Env::Onvm] {
        for sbox in [false, true] {
            all.push(series(env, sbox));
        }
    }
    Fig8 { series: all }
}

impl Fig8 {
    /// Finds a series.
    #[must_use]
    pub fn get(&self, env: Env, speedybox: bool) -> &Fig8Series {
        self.series
            .iter()
            .find(|s| s.env == env && s.speedybox == speedybox)
            .expect("all four series present")
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 8 — service chains of length 1-9 (ONVM capped at 5 by core count)\n")?;
        let cell = |s: &Fig8Series, n: usize, rate: bool| -> String {
            s.points
                .iter()
                .find(|p| p.n == n)
                .map(|p| {
                    if rate {
                        format!("{:.2}", p.rate_mpps)
                    } else {
                        format!("{:.2}", p.latency_us)
                    }
                })
                .unwrap_or_else(|| "—".to_owned())
        };
        for (title, rate) in [("processing latency (us)", false), ("processing rate (Mpps)", true)]
        {
            writeln!(f, "{title}")?;
            let mut t = Table::new(vec!["len", "BESS", "BESS w/ SBox", "ONVM", "ONVM w/ SBox"]);
            for n in 1..=BESS_MAX {
                t.row(vec![
                    n.to_string(),
                    cell(self.get(Env::Bess, false), n, rate),
                    cell(self.get(Env::Bess, true), n, rate),
                    cell(self.get(Env::Onvm, false), n, rate),
                    cell(self.get(Env::Onvm, true), n, rate),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        writeln!(
            f,
            "paper: SpeedyBox latency ~flat in chain length; original grows; ONVM rate flat"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run();
        let bess_orig = fig.get(Env::Bess, false);
        let bess_sbox = fig.get(Env::Bess, true);
        let onvm_orig = fig.get(Env::Onvm, false);
        let onvm_sbox = fig.get(Env::Onvm, true);

        // Original latency grows roughly linearly with length.
        let l1 = bess_orig.points[0].latency_us;
        let l9 = bess_orig.points[8].latency_us;
        assert!(l9 > 6.0 * l1, "BESS original latency must grow: {l1} -> {l9}");

        // SpeedyBox latency is ~flat (within 20% from 1 to 9 NFs).
        let s1 = bess_sbox.points[0].latency_us;
        let s9 = bess_sbox.points[8].latency_us;
        assert!(s9 < 1.2 * s1, "SpeedyBox latency must stay flat: {s1} -> {s9}");

        // At length 9 the gap is large.
        assert!(l9 > 4.0 * s9, "long chains: SpeedyBox wins big ({l9} vs {s9})");

        // ONVM rates ~flat for both (pipelined).
        let r1 = onvm_orig.points[0].rate_mpps;
        let r5 = onvm_orig.points[4].rate_mpps;
        assert!((r5 - r1).abs() / r1 < 0.2, "ONVM original rate flat: {r1} vs {r5}");
        let sr1 = onvm_sbox.points[0].rate_mpps;
        let sr5 = onvm_sbox.points[4].rate_mpps;
        assert!((sr5 - sr1).abs() / sr1 < 0.2, "ONVM SBox rate flat: {sr1} vs {sr5}");

        // BESS with SpeedyBox maintains rate while the original collapses.
        let br1 = fig.get(Env::Bess, false).points[0].rate_mpps;
        let br9 = fig.get(Env::Bess, false).points[8].rate_mpps;
        assert!(br9 < 0.3 * br1, "BESS original rate collapses with length");
        let bs1 = fig.get(Env::Bess, true).points[0].rate_mpps;
        let bs9 = fig.get(Env::Bess, true).points[8].rate_mpps;
        assert!(bs9 > 0.8 * bs1, "BESS SBox rate holds with length");

        // ONVM stops at 5.
        assert_eq!(onvm_orig.points.len(), ONVM_MAX);
        assert_eq!(bess_orig.points.len(), BESS_MAX);
    }
}
