//! Table II: lines of code to integrate each NF into SpeedyBox.
//!
//! The paper reports the LOC added to each (C) NF to record its behaviour
//! through the SpeedyBox APIs — e.g. 27 lines for Snort (+2.4 %). Our NFs
//! are Rust, so absolute numbers differ, but the *claim* — integration is
//! a few dozen lines, a small percentage of each NF — is checked against
//! the actual sources: every NF keeps its instrumentation inside
//! `SPEEDYBOX-INTEGRATION-BEGIN/END` markers, and this experiment counts
//! those lines directly from the committed code.

use std::fmt;

use speedybox_stats::Table;

/// Source of one NF, embedded at compile time.
const SOURCES: &[(&str, &str)] = &[
    ("Snort", include_str!("../../../nf/src/snort.rs")),
    ("Maglev", include_str!("../../../nf/src/maglev.rs")),
    ("IPFilter", include_str!("../../../nf/src/ipfilter.rs")),
    ("Monitor", include_str!("../../../nf/src/monitor.rs")),
    ("MazuNAT", include_str!("../../../nf/src/mazunat.rs")),
];

/// One NF's line counts.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// NF name.
    pub nf: String,
    /// Core-functionality LOC (non-blank, non-comment, tests excluded,
    /// integration excluded).
    pub core_loc: usize,
    /// Integration LOC (inside the marker blocks).
    pub added_loc: usize,
}

impl Table2Row {
    /// Integration overhead as a percentage of core LOC.
    #[must_use]
    pub fn overhead_pct(&self) -> f64 {
        if self.core_loc == 0 {
            0.0
        } else {
            self.added_loc as f64 / self.core_loc as f64 * 100.0
        }
    }
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// One row per NF.
    pub rows: Vec<Table2Row>,
}

/// Counts code lines, splitting integration-marker blocks from the rest.
/// Blank lines, `//` comments and everything from `#[cfg(test)]` on are
/// excluded from both counts.
fn count(source: &str) -> (usize, usize) {
    let mut core = 0;
    let mut added = 0;
    let mut in_block = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.contains("SPEEDYBOX-INTEGRATION-BEGIN") {
            in_block = true;
            continue;
        }
        if trimmed.contains("SPEEDYBOX-INTEGRATION-END") {
            in_block = false;
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        if in_block {
            added += 1;
        } else {
            core += 1;
        }
    }
    (core, added)
}

/// Runs the experiment (pure source analysis; no packets involved).
#[must_use]
pub fn run() -> Table2 {
    let rows = SOURCES
        .iter()
        .map(|(nf, src)| {
            let (core_loc, added_loc) = count(src);
            Table2Row { nf: (*nf).to_owned(), core_loc, added_loc }
        })
        .collect();
    Table2 { rows }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II — LOC to integrate each NF into SpeedyBox (this repo's sources)\n")?;
        let mut t = Table::new(vec!["Network Function", "Core LOC", "Added LOC", "overhead"]);
        for r in &self.rows {
            t.row(vec![
                r.nf.clone(),
                r.core_loc.to_string(),
                r.added_loc.to_string(),
                format!("+{:.1}%", r.overhead_pct()),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "paper (C sources): Snort 1129/+27 (2.4%), Maglev 141/+23, IPFilter 110/+20,")?;
        writeln!(f, "                   Monitor 223/+19, MazuNAT 358/+20")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_nf_has_bounded_integration_cost() {
        let t = run();
        assert_eq!(t.rows.len(), 5);
        for r in &t.rows {
            assert!(r.added_loc > 0, "{} must actually integrate", r.nf);
            assert!(
                r.added_loc <= 35,
                "{}: {} added lines — the paper's claim is 'a few dozen'",
                r.nf,
                r.added_loc
            );
            assert!(r.core_loc > 50, "{}: core should be substantial", r.nf);
            assert!(
                r.overhead_pct() < 25.0,
                "{}: overhead {:.1}% too high",
                r.nf,
                r.overhead_pct()
            );
        }
    }

    #[test]
    fn counter_excludes_comments_and_tests() {
        let src = "// comment\nfn a() {}\n\n#[cfg(test)]\nmod tests { fn x() {} }\n";
        assert_eq!(count(src), (1, 0));
        let src2 = "fn a() {}\n// SPEEDYBOX-INTEGRATION-BEGIN\nlet x = 1;\nlet y = 2;\n// SPEEDYBOX-INTEGRATION-END\n";
        assert_eq!(count(src2), (1, 2));
    }
}
