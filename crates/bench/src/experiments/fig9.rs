//! Fig 9: CDF of flow processing time on real-world service chains over a
//! (synthetic) datacenter trace.
//!
//! "We measure the flow processing time as the aggregated time spent
//! processing all packets in a flow ... We use the popular datacenter
//! trace as the input traffic. Since the payloads in the trace are null
//! for anonymization, we synthesize the testing traffic with customized
//! payloads according to the inspection rules in Snort."
//!
//! Chain 1: MazuNAT → Maglev → Monitor → IPFilter (p50 −39.6 % BESS,
//! −40.2 % ONVM). Chain 2: IPFilter → Snort → Monitor (p50 −41.3 % BESS,
//! −34.2 % ONVM).

use std::collections::HashMap;
use std::fmt;

use speedybox_packet::Fid;
use speedybox_platform::chains::{chain1, chain2};
use speedybox_stats::{table::pct_change, Cdf, Table};
use speedybox_traffic::{Workload, WorkloadConfig};

use crate::harness::{Env, Runner};

/// Flows in the synthetic trace.
pub const FLOWS: usize = 400;

/// Which evaluation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chain {
    /// MazuNAT → Maglev → Monitor → IPFilter.
    Chain1,
    /// IPFilter → Snort → Monitor.
    Chain2,
}

impl Chain {
    /// Figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Chain::Chain1 => "Chain 1 (MazuNAT+Maglev+Monitor+IPFilter)",
            Chain::Chain2 => "Chain 2 (IPFilter+Snort+Monitor)",
        }
    }
}

/// One CDF series.
#[derive(Debug, Clone)]
pub struct Fig9Series {
    /// Chain.
    pub chain: Chain,
    /// Environment.
    pub env: Env,
    /// SpeedyBox enabled?
    pub speedybox: bool,
    /// Per-flow processing time CDF (µs).
    pub cdf: Cdf,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// All eight series (2 chains × 2 envs × 2 modes).
    pub series: Vec<Fig9Series>,
}

fn trace() -> Workload {
    Workload::generate(&WorkloadConfig {
        flows: FLOWS,
        median_packets: 8.0,
        sigma: 1.2,
        payload_len: 200,
        suspicious_fraction: 0.15,
        seed: 0xf19_9999,
        ..WorkloadConfig::default()
    })
}

fn flow_times(chain: Chain, env: Env, speedybox: bool, w: &Workload) -> Cdf {
    let nfs = match chain {
        Chain::Chain1 => chain1(8).0,
        Chain::Chain2 => chain2().0,
    };
    let mut runner = Runner::new(env, nfs, speedybox);
    let model = *runner.model();
    let mut per_flow: HashMap<Fid, u64> = HashMap::new();
    for (_, pkt) in &w.arrivals {
        let fid = pkt.five_tuple().unwrap().fid();
        let out = runner.process(pkt.clone());
        *per_flow.entry(fid).or_insert(0) += out.latency_cycles;
    }
    Cdf::new(per_flow.values().map(|&c| model.micros(c)))
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig9 {
    let w = trace();
    let mut series = Vec::new();
    for chain in [Chain::Chain1, Chain::Chain2] {
        for env in [Env::Bess, Env::Onvm] {
            for sbox in [false, true] {
                series.push(Fig9Series {
                    chain,
                    env,
                    speedybox: sbox,
                    cdf: flow_times(chain, env, sbox, &w),
                });
            }
        }
    }
    Fig9 { series }
}

impl Fig9 {
    /// Finds a series.
    #[must_use]
    pub fn get(&self, chain: Chain, env: Env, speedybox: bool) -> &Fig9Series {
        self.series
            .iter()
            .find(|s| s.chain == chain && s.env == env && s.speedybox == speedybox)
            .expect("all eight series present")
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 9 — CDF of flow processing time, synthetic DC trace ({FLOWS} flows)\n")?;
        for chain in [Chain::Chain1, Chain::Chain2] {
            writeln!(f, "{}", chain.label())?;
            let mut t = Table::new(vec!["percentile", "p25", "p50", "p75", "p90", "p99"]);
            for env in [Env::Bess, Env::Onvm] {
                for sbox in [false, true] {
                    let s = self.get(chain, env, sbox);
                    let name = if sbox {
                        format!("{} w/ SBox (us)", env.label())
                    } else {
                        format!("{} (us)", env.label())
                    };
                    t.row(
                        std::iter::once(name)
                            .chain(
                                [0.25, 0.5, 0.75, 0.9, 0.99]
                                    .iter()
                                    .map(|&p| format!("{:.1}", s.cdf.value_at(p))),
                            )
                            .collect(),
                    );
                }
            }
            writeln!(f, "{t}")?;
            for env in [Env::Bess, Env::Onvm] {
                let o = self.get(chain, env, false).cdf.value_at(0.5);
                let s = self.get(chain, env, true).cdf.value_at(0.5);
                writeln!(f, "  p50 change on {}: {}", env.label(), pct_change(o, s))?;
            }
            writeln!(f)?;
        }
        writeln!(f, "paper p50: chain1 -39.6% (BESS) / -40.2% (ONVM); chain2 -41.3% / -34.2%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run();
        for chain in [Chain::Chain1, Chain::Chain2] {
            for env in [Env::Bess, Env::Onvm] {
                let orig = &fig.get(chain, env, false).cdf;
                let fast = &fig.get(chain, env, true).cdf;
                let reduction = 1.0 - fast.value_at(0.5) / orig.value_at(0.5);
                // Paper band is 0.34-0.41; our ONVM model credits the
                // removed ring-transit latency more aggressively (see
                // EXPERIMENTS.md), so the acceptance band is wider while
                // still requiring a large, SpeedyBox-favouring cut.
                assert!(
                    (0.20..=0.70).contains(&reduction),
                    "{} on {}: p50 reduction {reduction:.2} (paper 0.34-0.41)",
                    chain.label(),
                    env.label()
                );
                // SpeedyBox dominates across the distribution, not just at
                // the median.
                for p in [0.25, 0.5, 0.75, 0.9] {
                    assert!(
                        fast.value_at(p) < orig.value_at(p),
                        "{} on {}: p{} must improve",
                        chain.label(),
                        env.label(),
                        {
                            #[allow(clippy::cast_possible_truncation)] // p in [0, 1]
                            let pct = (p * 100.0) as u32;
                            pct
                        }
                    );
                }
            }
        }
    }

    #[test]
    fn cdf_series_are_plot_ready() {
        let fig = run();
        let s = fig.get(Chain::Chain1, Env::Bess, true).cdf.series(20);
        assert_eq!(s.len(), 20);
        assert!(s.windows(2).all(|w| w[1].0 >= w[0].0));
    }
}
