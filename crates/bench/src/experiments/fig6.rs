//! Fig 6: both optimizations on the Snort+Monitor chain.
//!
//! "Figure 6 shows the CPU cycle reduction and processing rate improvement
//! of the Snort+Monitor chain. SpeedyBox reduces CPU cycles of per packet
//! processing by 46.3% and 47.4% for BESS and OpenNetVM ... improves the
//! processing rate of BESS by 32.1% ... does not improve the processing
//! rate of OpenNetVM" (pipelining already hides chain depth there).

use std::fmt;

use speedybox_platform::chains::snort_monitor_chain;
use speedybox_stats::{table::pct_change, Table};

use crate::harness::{steady_state, Env, Runner};
use speedybox_packet::{Packet, PacketBuilder};

/// Flows in the measurement workload.
pub const FLOWS: usize = 20;
/// Packets per flow.
pub const PACKETS_PER_FLOW: usize = 30;

/// One environment's numbers.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Env {
    /// Environment.
    pub env: Env,
    /// Original chain cycles per packet.
    pub orig_cycles: f64,
    /// SpeedyBox cycles per packet.
    pub sbox_cycles: f64,
    /// Original rate (Mpps).
    pub orig_rate: f64,
    /// SpeedyBox rate (Mpps).
    pub sbox_rate: f64,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// BESS and ONVM.
    pub envs: Vec<Fig6Env>,
}

/// 64 B packets across several flows; payloads kept clean so the numbers
/// measure steady inspection cost, not alert formatting.
fn workload() -> Vec<Packet> {
    let mut out = Vec::new();
    for round in 0..PACKETS_PER_FLOW {
        for flow in 0..FLOWS {
            out.push(
                PacketBuilder::tcp()
                    .src(format!("10.0.0.1:{}", 3000 + flow).parse().unwrap())
                    .dst("10.0.0.2:80".parse().unwrap())
                    .seq(u32::try_from(round).unwrap())
                    .payload(b"benignbody")
                    .pad_to(64)
                    .build(),
            );
        }
    }
    out
}

fn measure(env: Env, speedybox: bool) -> (f64, f64) {
    let (nfs, _handles) = snort_monitor_chain();
    let mut runner = Runner::new(env, nfs, speedybox);
    let model = *runner.model();
    // Warm up: one packet per flow fills caches and installs rules.
    let all = workload();
    let (warmup, measured) = all.split_at(FLOWS);
    runner.run(warmup.to_vec());
    let stats = runner.run(measured.to_vec());
    (steady_state(&stats, &model).work_cycles, runner.rate_mpps(&stats))
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig6 {
    let envs = [Env::Bess, Env::Onvm]
        .into_iter()
        .map(|env| {
            let (orig_cycles, orig_rate) = measure(env, false);
            let (sbox_cycles, sbox_rate) = measure(env, true);
            Fig6Env { env, orig_cycles, sbox_cycles, orig_rate, sbox_rate }
        })
        .collect();
    Fig6 { envs }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 6 — consolidation + parallelism on the Snort+Monitor chain\n")?;
        writeln!(f, "(a) CPU cycles per packet")?;
        let mut t = Table::new(vec!["", "Original", "w/ SBox", "change"]);
        for e in &self.envs {
            t.row(vec![
                e.env.label().to_owned(),
                format!("{:.0}", e.orig_cycles),
                format!("{:.0}", e.sbox_cycles),
                pct_change(e.orig_cycles, e.sbox_cycles),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "paper: -46.3% (BESS), -47.4% (ONVM)\n")?;
        writeln!(f, "(b) processing rate (Mpps)")?;
        let mut t = Table::new(vec!["", "Original", "w/ SBox", "change"]);
        for e in &self.envs {
            t.row(vec![
                e.env.label().to_owned(),
                format!("{:.2}", e.orig_rate),
                format!("{:.2}", e.sbox_rate),
                pct_change(e.orig_rate, e.sbox_rate),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "paper: +32.1% (BESS); ~unchanged (ONVM, already pipelined)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run();
        let bess = fig.envs.iter().find(|e| e.env == Env::Bess).unwrap();
        let onvm = fig.envs.iter().find(|e| e.env == Env::Onvm).unwrap();

        // Substantial per-packet cycle reduction on both platforms.
        let red_bess = 1.0 - bess.sbox_cycles / bess.orig_cycles;
        let red_onvm = 1.0 - onvm.sbox_cycles / onvm.orig_cycles;
        assert!((0.25..=0.60).contains(&red_bess), "BESS cycle cut {red_bess:.2} (paper 0.463)");
        assert!((0.25..=0.60).contains(&red_onvm), "ONVM cycle cut {red_onvm:.2} (paper 0.474)");

        // BESS rate improves noticeably; ONVM rate does not degrade and
        // improves far less in relative terms... or not at all.
        let bess_gain = bess.sbox_rate / bess.orig_rate;
        assert!(bess_gain > 1.15, "BESS rate gain {bess_gain:.2} (paper 1.32)");
        assert!(onvm.sbox_rate > 0.9 * onvm.orig_rate, "ONVM rate must not collapse");
    }
}
