//! Fig 5: effect of state-function parallelism.
//!
//! "We use a chain of 1-3 identical synthetic NFs ... The synthetic NF has
//! no header action, and has one state function that is equivalent to the
//! Snort packet inspection (does not modify payload)."
//!
//! Paper anchors: BESS rate decays with chain length while SpeedyBox keeps
//! it ~flat (2.1× at 3 NFs); ONVM rate is flat either way (pipelining);
//! SpeedyBox cuts latency by 59 % at three state functions (bound
//! (N−1)/N) and *adds* a little overhead at one.

use std::fmt;

use speedybox_platform::chains::synthetic_sf_chain;
use speedybox_stats::{table::pct_change, table::ratio, Table};

use crate::harness::{flow_packets, steady_state, Env, Runner};

/// Scan passes per synthetic state function: calibrated so one SF costs
/// about what a Snort inspection costs (~2400 cycles on a 64 B packet).
pub const SCAN_PASSES: u32 = 80;
/// Packets measured per configuration.
pub const PACKETS: usize = 300;

/// One measurement point.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Number of state functions (chain length).
    pub n: usize,
    /// Processing rate, Mpps.
    pub rate_mpps: f64,
    /// Per-packet latency, µs.
    pub latency_us: f64,
}

/// One series (environment × original/SpeedyBox).
#[derive(Debug, Clone)]
pub struct Fig5Series {
    /// Environment.
    pub env: Env,
    /// SpeedyBox enabled?
    pub speedybox: bool,
    /// Points for n = 1..=3.
    pub points: Vec<Fig5Point>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// All four series.
    pub series: Vec<Fig5Series>,
}

fn series(env: Env, speedybox: bool) -> Fig5Series {
    let points = (1..=3)
        .map(|n| {
            let mut runner = Runner::new(env, synthetic_sf_chain(n, SCAN_PASSES), speedybox);
            let model = *runner.model();
            let pkts = flow_packets(PACKETS + 1, 2200, 10);
            let mut iter = pkts.into_iter();
            let _warmup = runner.process(iter.next().expect("nonempty"));
            let stats = runner.run(iter);
            let ss = steady_state(&stats, &model);
            Fig5Point { n, rate_mpps: runner.rate_mpps(&stats), latency_us: ss.latency_us }
        })
        .collect();
    Fig5Series { env, speedybox, points }
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig5 {
    let mut all = Vec::new();
    for env in [Env::Bess, Env::Onvm] {
        for sbox in [false, true] {
            all.push(series(env, sbox));
        }
    }
    Fig5 { series: all }
}

impl Fig5 {
    /// Finds a series.
    #[must_use]
    pub fn get(&self, env: Env, speedybox: bool) -> &Fig5Series {
        self.series
            .iter()
            .find(|s| s.env == env && s.speedybox == speedybox)
            .expect("all four series present")
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 5 — state-function parallelism")?;
        writeln!(
            f,
            "chain: 1-3 synthetic NFs, one Snort-equivalent payload-READ SF each, 64 B packets\n"
        )?;
        writeln!(f, "(a) processing rate (Mpps)")?;
        let mut t = Table::new(vec!["#SF", "BESS", "BESS w/ SBox", "ONVM", "ONVM w/ SBox"]);
        for i in 0..3 {
            t.row(vec![
                (i + 1).to_string(),
                format!("{:.2}", self.get(Env::Bess, false).points[i].rate_mpps),
                format!("{:.2}", self.get(Env::Bess, true).points[i].rate_mpps),
                format!("{:.2}", self.get(Env::Onvm, false).points[i].rate_mpps),
                format!("{:.2}", self.get(Env::Onvm, true).points[i].rate_mpps),
            ]);
        }
        writeln!(f, "{t}")?;
        let b3 = self.get(Env::Bess, true).points[2].rate_mpps;
        let o3 = self.get(Env::Bess, false).points[2].rate_mpps;
        writeln!(f, "BESS speedup at 3 SFs: {} (paper: 2.1x)\n", ratio(b3, o3))?;

        writeln!(f, "(b) processing latency (us)")?;
        let mut t = Table::new(vec!["#SF", "BESS", "BESS w/ SBox", "ONVM", "ONVM w/ SBox"]);
        for i in 0..3 {
            t.row(vec![
                (i + 1).to_string(),
                format!("{:.2}", self.get(Env::Bess, false).points[i].latency_us),
                format!("{:.2}", self.get(Env::Bess, true).points[i].latency_us),
                format!("{:.2}", self.get(Env::Onvm, false).points[i].latency_us),
                format!("{:.2}", self.get(Env::Onvm, true).points[i].latency_us),
            ]);
        }
        writeln!(f, "{t}")?;
        let red = pct_change(
            self.get(Env::Bess, false).points[2].latency_us,
            self.get(Env::Bess, true).points[2].latency_us,
        );
        writeln!(f, "BESS latency change at 3 SFs: {red} (paper: -59%)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run();
        let bess_orig = fig.get(Env::Bess, false);
        let bess_sbox = fig.get(Env::Bess, true);
        let onvm_orig = fig.get(Env::Onvm, false);
        let onvm_sbox = fig.get(Env::Onvm, true);

        // BESS original rate decays ~1/N; SpeedyBox keeps it ~flat.
        assert!(bess_orig.points[2].rate_mpps < 0.45 * bess_orig.points[0].rate_mpps);
        assert!(bess_sbox.points[2].rate_mpps > 0.85 * bess_sbox.points[0].rate_mpps);
        // Speedup at 3 SFs in the paper's band around 2.1x.
        let speedup = bess_sbox.points[2].rate_mpps / bess_orig.points[2].rate_mpps;
        assert!((1.6..=3.2).contains(&speedup), "speedup {speedup:.2} (paper 2.1)");

        // ONVM rate ~flat with and without SpeedyBox (pipelining).
        assert!(onvm_orig.points[2].rate_mpps > 0.8 * onvm_orig.points[0].rate_mpps);
        assert!(onvm_sbox.points[2].rate_mpps > 0.8 * onvm_sbox.points[0].rate_mpps);

        // Latency: SpeedyBox ~flat and far below the originals at 3 SFs;
        // slight overhead at 1 SF.
        let red_bess = 1.0 - bess_sbox.points[2].latency_us / bess_orig.points[2].latency_us;
        assert!((0.45..=0.72).contains(&red_bess), "reduction {red_bess:.2} (paper 0.59)");
        assert!(bess_sbox.points[0].latency_us > bess_orig.points[0].latency_us);
        // ONVM latency with SpeedyBox also ~flat and lower at 3 SFs.
        assert!(onvm_sbox.points[2].latency_us < onvm_orig.points[2].latency_us);
        // The optimal bound (N-1)/N is respected: the SF portion cannot
        // shrink by more than 2/3 at N=3.
        assert!(red_bess < 2.0 / 3.0 + 0.05);
    }
}
