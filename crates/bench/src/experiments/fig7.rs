//! Fig 7: latency reduction on Snort+Monitor, attributed to each
//! optimization.
//!
//! "For BESS, the overall processing latency is reduced by 35.9%; of this
//! reduction ... 49.4% is contributed by header action consolidation while
//! the remaining 50.6% by state function parallelism. The result on
//! OpenNetVM is similar, except that parallelism makes up a larger portion
//! (58.9%)" — inter-core IO eats part of the consolidation benefit there.
//!
//! Methodology: run the ablations ([`SboxConfig`]) — HA-only
//! (`parallelize_sf = false`) and SF-only (`consolidate_ha = false`) — and
//! attribute shares proportionally to each single-optimization reduction.

use std::fmt;

use speedybox_platform::chains::snort_monitor_chain;
use speedybox_platform::runtime::SboxConfig;
use speedybox_stats::{table::pct_change, Table};

use crate::harness::{steady_state, Env, Runner};
use speedybox_packet::{Packet, PacketBuilder};

/// Flows in the workload.
pub const FLOWS: usize = 20;
/// Packets per flow.
pub const PACKETS_PER_FLOW: usize = 30;

/// One environment's ablation numbers (latencies in µs).
#[derive(Debug, Clone, Copy)]
pub struct Fig7Env {
    /// Environment.
    pub env: Env,
    /// Original chain latency.
    pub original: f64,
    /// Full SpeedyBox latency.
    pub full: f64,
    /// Header-action consolidation only.
    pub ha_only: f64,
    /// State-function parallelism only.
    pub sf_only: f64,
}

impl Fig7Env {
    /// Overall latency reduction, fraction of original.
    #[must_use]
    pub fn total_reduction(&self) -> f64 {
        1.0 - self.full / self.original
    }

    /// `(HA share, SF share)` of the total reduction, attributed
    /// proportionally to the single-optimization reductions.
    #[must_use]
    pub fn shares(&self) -> (f64, f64) {
        let ha = (self.original - self.ha_only).max(0.0);
        let sf = (self.original - self.sf_only).max(0.0);
        let sum = ha + sf;
        if sum == 0.0 {
            (0.5, 0.5)
        } else {
            (ha / sum, sf / sum)
        }
    }
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// BESS and ONVM.
    pub envs: Vec<Fig7Env>,
}

fn workload() -> Vec<Packet> {
    let mut out = Vec::new();
    for round in 0..PACKETS_PER_FLOW {
        for flow in 0..FLOWS {
            out.push(
                PacketBuilder::tcp()
                    .src(format!("10.0.0.1:{}", 3100 + flow).parse().unwrap())
                    .dst("10.0.0.2:80".parse().unwrap())
                    .seq(u32::try_from(round).unwrap())
                    .payload(b"benignbody")
                    .pad_to(64)
                    .build(),
            );
        }
    }
    out
}

fn latency(env: Env, config: Option<SboxConfig>) -> f64 {
    let (nfs, _h) = snort_monitor_chain();
    let mut runner = match config {
        None => Runner::new(env, nfs, false),
        Some(cfg) => Runner::with_config(env, nfs, cfg),
    };
    let model = *runner.model();
    let all = workload();
    let (warmup, measured) = all.split_at(FLOWS);
    runner.run(warmup.to_vec());
    let stats = runner.run(measured.to_vec());
    steady_state(&stats, &model).latency_us
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig7 {
    let envs = [Env::Bess, Env::Onvm]
        .into_iter()
        .map(|env| Fig7Env {
            env,
            original: latency(env, None),
            full: latency(env, Some(SboxConfig::default())),
            ha_only: latency(
                env,
                Some(SboxConfig {
                    consolidate_ha: true,
                    parallelize_sf: false,
                    ..SboxConfig::default()
                }),
            ),
            sf_only: latency(
                env,
                Some(SboxConfig {
                    consolidate_ha: false,
                    parallelize_sf: true,
                    ..SboxConfig::default()
                }),
            ),
        })
        .collect();
    Fig7 { envs }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 7 — latency reduction on Snort+Monitor, and who contributed\n")?;
        let mut t =
            Table::new(vec!["", "Original(us)", "w/ SBox(us)", "total", "HA share", "SF share"]);
        for e in &self.envs {
            let (ha, sf) = e.shares();
            t.row(vec![
                e.env.label().to_owned(),
                format!("{:.2}", e.original),
                format!("{:.2}", e.full),
                pct_change(e.original, e.full),
                format!("{:.1}%", ha * 100.0),
                format!("{:.1}%", sf * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "paper: BESS -35.9% (HA 49.4% / SF 50.6%); ONVM (HA 41.1% / SF 58.9%)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run();
        let bess = fig.envs.iter().find(|e| e.env == Env::Bess).unwrap();
        let onvm = fig.envs.iter().find(|e| e.env == Env::Onvm).unwrap();

        // Meaningful overall reductions on both platforms.
        assert!(
            (0.20..=0.60).contains(&bess.total_reduction()),
            "BESS total {:.2} (paper 0.359)",
            bess.total_reduction()
        );
        assert!(onvm.total_reduction() > 0.20, "ONVM total {:.2}", onvm.total_reduction());

        // Each single optimization helps on its own.
        for e in &fig.envs {
            assert!(e.ha_only < e.original, "{}: HA-only must help", e.env.label());
            assert!(e.sf_only < e.original, "{}: SF-only must help", e.env.label());
            assert!(e.full <= e.ha_only.min(e.sf_only) + 0.05, "full combines both");
        }

        // Both optimizations contribute, and the SF-side share is larger
        // on ONVM than on BESS (the paper's headline attribution: staying
        // on the manager core helps the SF path most where inter-core IO
        // is expensive). Exact shares deviate from the paper's ~50/50 —
        // see EXPERIMENTS.md for the analysis.
        let (bess_ha, bess_sf) = bess.shares();
        let (onvm_ha, onvm_sf) = onvm.shares();
        assert!(bess_ha > 0.0 && bess_sf > 0.0 && onvm_ha > 0.0 && onvm_sf > 0.0);
        assert!(
            onvm_sf > bess_sf,
            "SF share must be larger on ONVM ({onvm_sf:.2}) than BESS ({bess_sf:.2})"
        );
    }
}
