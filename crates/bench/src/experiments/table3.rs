//! Table III: early packet drop saves CPU cycles.
//!
//! "We use a chain with three IPFilters (NF1, NF2, NF3) and set the
//! corresponding actions as {forward, forward, drop} for all flows ...
//! With SpeedyBox, however, subsequent packets can be dropped early when
//! they arrive at the chain." Paper: −65.0 % (BESS) / −64.8 % (ONVM)
//! aggregate cycles.

use std::fmt;

use speedybox_mat::OpCounter;
use speedybox_nf::ipfilter::{AclRule, IpFilter};
use speedybox_nf::{Nf, NfContext};
use speedybox_platform::cycles::CycleModel;
use speedybox_stats::{table::pct_change, Table};

use crate::harness::{flow_packets, Env, Runner};

/// ACL size per IPFilter.
pub const ACL_RULES: usize = 200;
/// Subsequent packets measured.
pub const PACKETS: usize = 200;

/// Per-environment results.
#[derive(Debug, Clone)]
pub struct Table3Env {
    /// The environment.
    pub env: Env,
    /// Original chain: steady per-NF processing cycles (NF1, NF2, NF3).
    pub per_nf: [f64; 3],
    /// Original aggregate cycles per packet.
    pub original: f64,
    /// SpeedyBox aggregate cycles per packet (early drop).
    pub speedybox: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// BESS and ONVM rows.
    pub envs: Vec<Table3Env>,
}

fn forward_forward_drop() -> Vec<Box<dyn Nf>> {
    let deny = IpFilter::new(vec![AclRule::deny_dst("10.0.0.2".parse().unwrap())]);
    vec![
        Box::new(IpFilter::pass_through(ACL_RULES)),
        Box::new(IpFilter::pass_through(ACL_RULES)),
        Box::new(deny),
    ]
}

/// Steady-state per-NF processing cycles on the original chain (measured
/// by driving the NFs directly, as the paper's per-NF cycle counters do).
fn per_nf_cycles(model: &CycleModel) -> [f64; 3] {
    let mut nfs = forward_forward_drop();
    let pkts = flow_packets(PACKETS + 1, 2100, 10);
    let mut totals = [0u64; 3];
    for (i, pkt) in pkts.into_iter().enumerate() {
        let mut p = pkt;
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        for (j, nf) in nfs.iter_mut().enumerate() {
            let mut ops = OpCounter::default();
            let mut ctx = NfContext::baseline(&mut ops);
            let verdict = nf.process(&mut p, &mut ctx);
            if i > 0 {
                totals[j] += model.cycles(&ops);
            }
            if !verdict.survives() {
                break;
            }
        }
    }
    totals.map(|t| t as f64 / PACKETS as f64)
}

fn aggregate(env: Env, speedybox: bool) -> f64 {
    let mut runner = Runner::new(env, forward_forward_drop(), speedybox);
    let model = *runner.model();
    let pkts = flow_packets(PACKETS + 1, 2100, 10);
    let mut iter = pkts.into_iter();
    let _warmup = runner.process(iter.next().expect("nonempty"));
    let stats = runner.run(iter);
    crate::harness::steady_state(&stats, &model).work_cycles
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Table3 {
    let envs = [Env::Bess, Env::Onvm]
        .into_iter()
        .map(|env| {
            let model = CycleModel::new();
            Table3Env {
                env,
                per_nf: per_nf_cycles(&model),
                original: aggregate(env, false),
                speedybox: aggregate(env, true),
            }
        })
        .collect();
    Table3 { envs }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III — early packet drop saves CPU cycles")?;
        writeln!(f, "chain: IPFilter x3 with actions {{forward, forward, drop}}\n")?;
        let mut t = Table::new(vec!["(CPU cycle)", "NF1", "NF2", "NF3", "Aggregate", "saving"]);
        for e in &self.envs {
            t.row(vec![
                e.env.label().to_owned(),
                format!("{:.0}", e.per_nf[0]),
                format!("{:.0}", e.per_nf[1]),
                format!("{:.0}", e.per_nf[2]),
                format!("{:.0}", e.original),
                "—".to_owned(),
            ]);
            t.row(vec![
                format!("{} w/ SBox", e.env.label()),
                "—".to_owned(),
                "—".to_owned(),
                "—".to_owned(),
                format!("{:.0}", e.speedybox),
                pct_change(e.original, e.speedybox),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "paper: 1689 -> 591 (-65.0%) on BESS; 1620 -> 570 (-64.8%) on ONVM")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run();
        for e in &t.envs {
            // Early drop saves roughly two of the three NF traversals.
            let saving = 1.0 - e.speedybox / e.original;
            assert!(
                (0.55..=0.75).contains(&saving),
                "{}: saving {saving:.2} (paper ~0.65)",
                e.env.label()
            );
            // Per-NF steady costs are in the same band as the aggregate/3.
            for c in e.per_nf {
                assert!(c > 0.0);
                assert!(c < e.original, "per-NF {c} below aggregate {}", e.original);
            }
        }
    }
}
