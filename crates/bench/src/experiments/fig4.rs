//! Fig 4: effect of header-action consolidation.
//!
//! "We vary the number of header actions ... We use a chain with 1-3
//! IPFilter NFs." Reported: CPU cycles per packet for initial and
//! subsequent packets, original chain vs SpeedyBox, on BESS (a) and
//! OpenNetVM (b).
//!
//! Paper anchors: initial packets cost thousands of cycles (new-flow ACL
//! linear match); for subsequent packets SpeedyBox costs *more* at one
//! header action (Local MAT/fast-path overhead) and saves 40.9 % / 57.7 %
//! at two / three.

use std::fmt;

use speedybox_platform::chains::ipfilter_chain;
use speedybox_platform::runtime::SboxConfig;
use speedybox_stats::{table::pct_change, Table};

use crate::harness::{flow_packets, steady_state, Env, Runner};

/// ACL size per IPFilter (a realistic enterprise blacklist; the linear
/// scan on flow setup is the dominant initial-packet cost).
pub const ACL_RULES: usize = 200;
/// Subsequent packets measured per configuration.
pub const PACKETS: usize = 200;

/// One row: chain of `n` IPFilters.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Number of header actions (chain length).
    pub n: usize,
    /// Original chain, initial packet (cycles).
    pub orig_init: f64,
    /// Original chain, subsequent packets (cycles).
    pub orig_sub: f64,
    /// SpeedyBox, initial packet (cycles).
    pub sbox_init: f64,
    /// SpeedyBox, subsequent packets (cycles).
    pub sbox_sub: f64,
}

/// The full figure: one row set per environment.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Fig 4(a).
    pub bess: Vec<Fig4Row>,
    /// Fig 4(b).
    pub onvm: Vec<Fig4Row>,
}

fn measure(env: Env, n: usize, speedybox: bool) -> (f64, f64) {
    // Fig 4 reproduces the *published* system, whose fast path interprets
    // the consolidated action per packet — the 1-HA overhead anchor only
    // exists there. The compiled micro-op programs (DESIGN.md §8) are an
    // extension measured by the `compiled_fastpath` bench and perfgate.
    let mut runner = if speedybox {
        let config = SboxConfig { compiled: false, ..SboxConfig::default() };
        Runner::with_config(env, ipfilter_chain(n, ACL_RULES), config)
    } else {
        Runner::new(env, ipfilter_chain(n, ACL_RULES), false)
    };
    let model = *runner.model();
    let pkts = flow_packets(PACKETS + 1, 2000, 10);
    let mut iter = pkts.into_iter();
    let first = runner.process(iter.next().expect("nonempty"));
    let init = first.work_cycles as f64;
    let stats = runner.run(iter);
    let sub = steady_state(&stats, &model).work_cycles;
    let _ = model;
    (init, sub)
}

fn rows(env: Env) -> Vec<Fig4Row> {
    (1..=3)
        .map(|n| {
            let (orig_init, orig_sub) = measure(env, n, false);
            let (sbox_init, sbox_sub) = measure(env, n, true);
            Fig4Row { n, orig_init, orig_sub, sbox_init, sbox_sub }
        })
        .collect()
}

/// Runs the experiment.
#[must_use]
pub fn run() -> Fig4 {
    Fig4 { bess: rows(Env::Bess), onvm: rows(Env::Onvm) }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 4 — header-action consolidation (CPU cycles per packet)")?;
        writeln!(f, "chain: 1-3 IPFilters ({ACL_RULES} ACL rules each), 64 B packets\n")?;
        for (label, rows) in [("(a) BESS", &self.bess), ("(b) OpenNetVM", &self.onvm)] {
            writeln!(f, "{label}")?;
            let mut t = Table::new(vec![
                "#HA",
                "Original-init",
                "SBox-init",
                "Original-sub",
                "SBox-sub",
                "sub saving",
            ]);
            for r in rows {
                t.row(vec![
                    r.n.to_string(),
                    format!("{:.0}", r.orig_init),
                    format!("{:.0}", r.sbox_init),
                    format!("{:.0}", r.orig_sub),
                    format!("{:.0}", r.sbox_sub),
                    pct_change(r.orig_sub, r.sbox_sub),
                ]);
            }
            writeln!(f, "{t}")?;
        }
        writeln!(
            f,
            "paper: SBox-sub > Original-sub at 1 HA; -40.9% at 2 HAs, -57.7% at 3 HAs (BESS)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let fig = run();
        for rows in [&fig.bess, &fig.onvm] {
            // Initial packets are far more expensive than subsequent ones.
            for r in rows {
                assert!(r.orig_init > 3.0 * r.orig_sub, "init {} sub {}", r.orig_init, r.orig_sub);
                assert!(r.sbox_init >= r.orig_init, "recording adds init cost");
            }
            // SpeedyBox loses at 1 HA, wins at 2 and 3.
            assert!(rows[0].sbox_sub > rows[0].orig_sub);
            assert!(rows[1].sbox_sub < rows[1].orig_sub);
            assert!(rows[2].sbox_sub < rows[2].orig_sub);
            // Reductions in the paper's band (±12 points).
            let red2 = 1.0 - rows[1].sbox_sub / rows[1].orig_sub;
            let red3 = 1.0 - rows[2].sbox_sub / rows[2].orig_sub;
            assert!((0.28..=0.53).contains(&red2), "2-HA reduction {red2:.2} (paper 0.409)");
            assert!((0.45..=0.70).contains(&red3), "3-HA reduction {red3:.2} (paper 0.577)");
            // SpeedyBox sub cost is flat in N; the original grows ~linearly.
            assert!(rows[2].sbox_sub < 1.15 * rows[0].sbox_sub);
            assert!(rows[2].orig_sub > 2.5 * rows[0].orig_sub);
        }
    }
}
