//! Ablations of SpeedyBox's own design choices (beyond the paper's Fig 7):
//!
//! * **A1 — instrumentation overhead**: the paper claims recording "do\[es\]
//!   not change the original processing logic and the performance overhead
//!   can be neglected". Measured: initial-packet cost with vs. without
//!   recording (same chain, same packet).
//! * **A2 — event-check cost**: the Event Table is consulted on *every*
//!   fast-path packet; cost as a function of registered events per flow.
//! * **A3 — consolidation benefit vs. modified fields**: fast-path cost as
//!   the consolidated rule grows from 0 to 4 field writes (the marginal
//!   cost of each extra merged modify is one field write, not one NF).

use std::fmt;

use speedybox_mat::event::RulePatch;
use speedybox_mat::{Event, HeaderAction, NfId, OpCounter};
use speedybox_nf::synthetic::SyntheticNf;
use speedybox_nf::Nf;
use speedybox_platform::chains::ipfilter_chain;
use speedybox_platform::cycles::CycleModel;
use speedybox_platform::runtime::{
    fast_path, traverse_chain, FastPathScratch, SboxConfig, SpeedyBox,
};
use speedybox_stats::{table::pct_change, Table};

use crate::harness::flow_packets;

/// A1 results: initial-packet cycles.
#[derive(Debug, Clone, Copy)]
pub struct RecordingOverhead {
    /// Chain length measured.
    pub chain_len: usize,
    /// Uninstrumented traversal cycles.
    pub baseline: u64,
    /// Instrumented (recording) traversal cycles.
    pub recording: u64,
}

/// A2 results: fast-path cycles by number of registered (quiescent)
/// events.
#[derive(Debug, Clone)]
pub struct EventCheckCost {
    /// `(events registered, fast-path work cycles)` pairs.
    pub points: Vec<(usize, u64)>,
}

/// A3 results: fast-path cycles by number of merged field writes.
#[derive(Debug, Clone)]
pub struct ModifyWidthCost {
    /// `(fields modified, fast-path work cycles)` pairs.
    pub points: Vec<(usize, u64)>,
}

/// The full ablation set.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// A1 at two chain lengths.
    pub recording: Vec<RecordingOverhead>,
    /// A2.
    pub event_checks: EventCheckCost,
    /// A3.
    pub modify_width: ModifyWidthCost,
}

fn a1(chain_len: usize) -> RecordingOverhead {
    let model = CycleModel::new();
    let measure = |instrumented: bool| -> u64 {
        let sbox = SpeedyBox::new(chain_len, SboxConfig::default());
        let mut nfs = ipfilter_chain(chain_len, 200);
        let mut pkt = flow_packets(1, 2600, 10).pop().expect("one packet");
        let instruments = instrumented.then(|| sbox.instruments.clone());
        let res = traverse_chain(&mut nfs, instruments.as_deref(), &mut pkt, &model);
        res.per_nf_cycles.iter().sum()
    };
    RecordingOverhead { chain_len, baseline: measure(false), recording: measure(true) }
}

fn fast_cycles(sbox: &SpeedyBox, fid: speedybox_packet::Fid) -> u64 {
    let model = CycleModel::new();
    let mut pkt = flow_packets(1, 2600, 10).pop().expect("one packet");
    pkt.set_fid(fid);
    let mut scratch = FastPathScratch::default();
    fast_path(sbox, &mut pkt, fid, &model, &mut scratch).expect("rule installed").work_cycles
}

fn a2() -> EventCheckCost {
    let model = CycleModel::new();
    let points = [0usize, 1, 4, 16]
        .into_iter()
        .map(|n_events| {
            let sbox = SpeedyBox::new(1, SboxConfig::default());
            let mut nfs: Vec<Box<dyn Nf>> = vec![Box::new(SyntheticNf::forward("s"))];
            let mut pkt = flow_packets(1, 2600, 10).pop().expect("one packet");
            let mut ops = OpCounter::default();
            let c = sbox.classifier.classify(&mut pkt, &mut ops).expect("valid packet");
            traverse_chain(&mut nfs, Some(&sbox.instruments), &mut pkt, &model);
            for i in 0..n_events {
                sbox.global.events().register(
                    Event::new(
                        c.fid,
                        NfId::new(0),
                        format!("quiescent-{i}"),
                        |_| false,
                        |_| RulePatch::default(),
                    )
                    .recurring(),
                );
            }
            sbox.global.install(c.fid, &mut ops);
            (n_events, fast_cycles(&sbox, c.fid))
        })
        .collect();
    EventCheckCost { points }
}

fn a3() -> ModifyWidthCost {
    use speedybox_packet::HeaderField;
    let model = CycleModel::new();
    let fields =
        [HeaderField::DstIp, HeaderField::DstPort, HeaderField::SrcIp, HeaderField::SrcPort];
    let points = (0..=4usize)
        .map(|width| {
            let sbox = SpeedyBox::new(1, SboxConfig::default());
            let writes: Vec<_> = fields[..width]
                .iter()
                .map(|&f| {
                    let v: speedybox_packet::FieldValue = match f {
                        HeaderField::DstIp | HeaderField::SrcIp => {
                            std::net::Ipv4Addr::new(10, 77, 0, 1).into()
                        }
                        _ => 4242u16.into(),
                    };
                    (f, v)
                })
                .collect();
            let action = if writes.is_empty() {
                HeaderAction::Forward
            } else {
                HeaderAction::Modify(writes)
            };
            let mut nfs: Vec<Box<dyn Nf>> =
                vec![Box::new(SyntheticNf::forward("m").with_header_action(action))];
            let mut pkt = flow_packets(1, 2600, 10).pop().expect("one packet");
            let mut ops = OpCounter::default();
            let c = sbox.classifier.classify(&mut pkt, &mut ops).expect("valid packet");
            traverse_chain(&mut nfs, Some(&sbox.instruments), &mut pkt, &model);
            sbox.global.install(c.fid, &mut ops);
            (width, fast_cycles(&sbox, c.fid))
        })
        .collect();
    ModifyWidthCost { points }
}

/// Runs all three ablations.
#[must_use]
pub fn run() -> Ablation {
    Ablation { recording: vec![a1(1), a1(3), a1(6)], event_checks: a2(), modify_width: a3() }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations — SpeedyBox design-choice costs\n")?;
        writeln!(f, "A1: instrumentation overhead on initial packets (per-NF recording)")?;
        let mut t = Table::new(vec!["chain len", "baseline", "recording", "overhead"]);
        for r in &self.recording {
            t.row(vec![
                r.chain_len.to_string(),
                r.baseline.to_string(),
                r.recording.to_string(),
                pct_change(r.baseline as f64, r.recording as f64),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "paper §IV-B: \"the performance overhead can be neglected\" — overhead is")?;
        writeln!(f, "per-flow (initial packet only), low single-digit % of the traversal.\n")?;

        writeln!(f, "A2: fast-path cost vs registered (quiescent) events per flow")?;
        let mut t = Table::new(vec!["events", "fast-path cycles"]);
        for (n, c) in &self.event_checks.points {
            t.row(vec![n.to_string(), c.to_string()]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "linear in event count — register events only where NFs need them.\n")?;

        writeln!(f, "A3: fast-path cost vs merged modify width")?;
        let mut t = Table::new(vec!["fields modified", "fast-path cycles"]);
        for (n, c) in &self.modify_width.points {
            t.row(vec![n.to_string(), c.to_string()]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "marginal cost of an extra consolidated field is one write (~tens of cycles),\n\
             not one NF traversal (~hundreds) — the heart of the R3 saving."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_overhead_is_small_and_per_flow() {
        let a = run();
        for r in &a.recording {
            assert!(r.recording > r.baseline, "recording costs something");
            let overhead = (r.recording - r.baseline) as f64 / r.baseline as f64;
            assert!(
                overhead < 0.10,
                "len {}: overhead {overhead:.3} should be 'negligible' (paper §IV-B)",
                r.chain_len
            );
        }
    }

    #[test]
    fn event_checks_scale_linearly() {
        let a = run();
        let p = &a.event_checks.points;
        assert_eq!(p[0].0, 0);
        let base = p[0].1;
        // Cost grows with event count...
        assert!(p[3].1 > p[1].1);
        // ...linearly: 16 events cost ~16x one event's marginal cost.
        let one = p[1].1 - base;
        let sixteen = p[3].1 - base;
        assert!(one > 0);
        assert!((sixteen as f64 / one as f64 - 16.0).abs() < 2.0);
    }

    #[test]
    fn modify_width_marginal_cost_is_one_word_write() {
        let a = run();
        let model = CycleModel::new();
        let p = &a.modify_width.points;
        // The default fast path runs the compiled program: going from 1 to
        // 2 fields costs exactly one extra masked word write.
        let marginal = p[2].1 - p[1].1;
        assert_eq!(marginal, model.word_write);
        // Going from 0 to 1 additionally pays the single trailing
        // incremental-checksum patch.
        assert_eq!(p[1].1 - p[0].1, model.word_write + model.checksum_patch);
    }
}
