//! Shared measurement helpers for the experiment modules.

use speedybox_nf::Nf;
use speedybox_packet::{Packet, PacketBuilder};
use speedybox_platform::bess::BessChain;
use speedybox_platform::cycles::CycleModel;
use speedybox_platform::metrics::{ProcessedPacket, RunStats};
use speedybox_platform::onvm::OnvmChain;
use speedybox_platform::runtime::SboxConfig;

/// Which execution environment an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Env {
    /// BESS-style run-to-completion.
    Bess,
    /// OpenNetVM-style pipeline.
    Onvm,
}

impl Env {
    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Env::Bess => "BESS",
            Env::Onvm => "ONVM",
        }
    }
}

/// A chain on either environment, with a uniform driving interface.
#[derive(Debug)]
pub enum Runner {
    /// BESS chain.
    Bess(BessChain),
    /// OpenNetVM chain.
    Onvm(OnvmChain),
}

impl Runner {
    /// Builds a chain on `env`, original or SpeedyBox-enabled.
    #[must_use]
    pub fn new(env: Env, nfs: Vec<Box<dyn Nf>>, speedybox: bool) -> Self {
        match (env, speedybox) {
            (Env::Bess, false) => Runner::Bess(BessChain::original(nfs)),
            (Env::Bess, true) => Runner::Bess(BessChain::speedybox(nfs)),
            (Env::Onvm, false) => Runner::Onvm(OnvmChain::original(nfs)),
            (Env::Onvm, true) => Runner::Onvm(OnvmChain::speedybox(nfs)),
        }
    }

    /// Builds a SpeedyBox chain with explicit ablation knobs.
    #[must_use]
    pub fn with_config(env: Env, nfs: Vec<Box<dyn Nf>>, config: SboxConfig) -> Self {
        match env {
            Env::Bess => Runner::Bess(BessChain::speedybox_with(nfs, config)),
            Env::Onvm => Runner::Onvm(OnvmChain::speedybox_with(nfs, config)),
        }
    }

    /// Processes one packet.
    pub fn process(&mut self, pkt: Packet) -> ProcessedPacket {
        match self {
            Runner::Bess(c) => c.process(pkt),
            Runner::Onvm(c) => c.process(pkt),
        }
    }

    /// Runs a packet sequence.
    pub fn run(&mut self, pkts: impl IntoIterator<Item = Packet>) -> RunStats {
        match self {
            Runner::Bess(c) => c.run(pkts),
            Runner::Onvm(c) => c.run(pkts),
        }
    }

    /// The cycle model in use.
    #[must_use]
    pub fn model(&self) -> &CycleModel {
        match self {
            Runner::Bess(c) => c.model(),
            Runner::Onvm(c) => c.model(),
        }
    }

    /// The environment-appropriate processing rate for a run.
    #[must_use]
    pub fn rate_mpps(&self, stats: &RunStats) -> f64 {
        match self {
            Runner::Bess(c) => stats.run_to_completion_rate_mpps(c.model()),
            Runner::Onvm(c) => stats.pipelined_rate_mpps(c.model()),
        }
    }
}

/// Builds an `n`-packet single-flow sequence with `payload_len`-byte
/// payloads, padded to 64 B frames (the paper's micro-benchmark packets).
#[must_use]
pub fn flow_packets(n: usize, src_port: u16, payload_len: usize) -> Vec<Packet> {
    let mut b = PacketBuilder::tcp();
    b.src(format!("10.0.0.1:{src_port}").parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .pad_to(64);
    (0..n)
        .map(|i| {
            #[allow(clippy::cast_possible_truncation)] // mod 23, and seq counters
            let payload: Vec<u8> = (0..payload_len).map(|j| b'a' + ((i + j) % 23) as u8).collect();
            #[allow(clippy::cast_possible_truncation)]
            b.seq(i as u32).payload(&payload).build()
        })
        .collect()
}

/// Steady-state measurements extracted from a run.
#[derive(Debug, Clone, Copy)]
pub struct SteadyState {
    /// Mean CPU work per packet (ring-hop CPU cost included, ring transit
    /// delay not — it is latency, not work).
    pub work_cycles: f64,
    /// Mean wall latency per packet, in cycles (transit included).
    pub latency_cycles: f64,
    /// Mean wall latency in microseconds.
    pub latency_us: f64,
}

/// Computes steady-state per-packet numbers from a run's stats.
#[must_use]
pub fn steady_state(stats: &RunStats, model: &CycleModel) -> SteadyState {
    let n = stats.sent.max(1) as f64;
    let work = stats.work_cycles.iter().sum::<u64>() as f64 / n;
    let latency = stats.mean_latency_cycles();
    SteadyState {
        work_cycles: work,
        latency_cycles: latency,
        #[allow(clippy::cast_possible_truncation)] // positive cycle count
        latency_us: model.micros(latency as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_packets_share_a_flow() {
        let pkts = flow_packets(5, 1000, 10);
        let t0 = pkts[0].five_tuple().unwrap();
        assert!(pkts.iter().all(|p| p.five_tuple().unwrap() == t0));
        assert!(pkts.iter().all(|p| p.len() >= 64));
    }

    #[test]
    fn steady_state_means_per_packet() {
        use speedybox_mat::OpCounter;
        use speedybox_platform::metrics::{PathKind, ProcessedPacket};
        let model = CycleModel::new();
        let mut stats = RunStats::default();
        for work in [1000u64, 3000] {
            stats.record(ProcessedPacket {
                packet: None,
                work_cycles: work,
                latency_cycles: work + 500,
                path: PathKind::Baseline,
                ops: OpCounter::default(),
            });
        }
        let ss = steady_state(&stats, &model);
        assert!((ss.work_cycles - 2000.0).abs() < 1e-9);
        assert!((ss.latency_cycles - 2500.0).abs() < 1e-9);
        assert!((ss.latency_us - model.micros(2500)).abs() < 1e-9);
    }
}
