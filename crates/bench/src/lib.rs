//! The SpeedyBox reproduction harness: one module per table/figure of the
//! paper's evaluation (§VII), each regenerating the corresponding rows or
//! series from the deterministic cycle model.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p speedybox-bench --bin repro -- all
//! ```
//!
//! or a single experiment (`fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`,
//! `table2`, `table3`). Criterion wall-clock benches covering the same
//! axes live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::{flow_packets, steady_state, SteadyState};
