//! `repro` — regenerate the SpeedyBox paper's tables and figures.
//!
//! ```text
//! cargo run --release -p speedybox-bench --bin repro -- all
//! cargo run --release -p speedybox-bench --bin repro -- fig4 fig9
//! ```
//!
//! Available experiments: fig4, fig5, fig6, fig7, fig8, fig9, table2,
//! table3, ablation, all.

use speedybox_bench::experiments;

const USAGE: &str = "usage: repro [fig4|fig5|fig6|fig7|fig8|fig9|table2|table3|ablation|all]...";

fn run_one(name: &str) -> bool {
    match name {
        "ablation" => println!("{}", experiments::ablation::run()),
        "fig4" => println!("{}", experiments::fig4::run()),
        "fig5" => println!("{}", experiments::fig5::run()),
        "fig6" => println!("{}", experiments::fig6::run()),
        "fig7" => println!("{}", experiments::fig7::run()),
        "fig8" => println!("{}", experiments::fig8::run()),
        "fig9" => println!("{}", experiments::fig9::run()),
        "table2" => println!("{}", experiments::table2::run()),
        "table3" => println!("{}", experiments::table3::run()),
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let all = ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2", "table3", "ablation"];
    for arg in &args {
        match arg.as_str() {
            "all" => {
                for name in all {
                    println!("{}", "=".repeat(78));
                    assert!(run_one(name));
                }
            }
            other => {
                if !run_one(other) {
                    eprintln!("unknown experiment: {other}\n{USAGE}");
                    std::process::exit(2);
                }
            }
        }
    }
}
