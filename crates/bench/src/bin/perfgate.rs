//! `perfgate` — the CI performance-regression gate.
//!
//! Runs the two paper chains (chain1 on BESS, chain2 on ONVM) with
//! SpeedyBox enabled over a fixed-seed workload, takes the runtime
//! telemetry snapshot, and compares two headline metrics per scenario
//! against a checked-in baseline:
//!
//! * **fast-path hit rate** — fraction of packets served by the
//!   consolidated Global-MAT path (`paths[subsequent] / packets`);
//! * **p50 fast-path latency** — median wall latency of subsequent-path
//!   packets, in deterministic model cycles.
//!
//! The cycle model is deterministic, so the gate is stable across
//! machines: a change in either metric means the code changed, not the
//! hardware. The gate fails only on *regressions* beyond the tolerance
//! (hit rate falling, latency rising); improvements beyond tolerance are
//! reported as a hint to refresh the baseline with `--write-baseline`.
//!
//! A third, absolute gate covers worker scaling: chain1 over an
//! interleaved trace with concurrent rule churn must show at least a 3x
//! modeled-throughput gain at 8 symmetric workers versus 1, and the
//! 8-worker compiled fast-path p50 may not exceed the single-worker p50
//! (worker steering redistributes work; it must never add latency).
//!
//! A fourth gate covers the pooled packet substrate: after one warm run
//! of chain1 seeds the buffer pool, pooled reruns of the same trace must
//! record **zero** pool misses (the steady state never falls back to the
//! heap), and the reruns' wall-clock throughput is gated against the
//! baseline with a deliberately generous tolerance — the deterministic
//! cycle gates catch per-packet work regressions; the wall gate only
//! catches order-of-magnitude collapses.
//!
//! ```text
//! perfgate --baseline crates/bench/baseline.json            # CI gate
//! perfgate --write-baseline crates/bench/baseline.json      # refresh
//! perfgate --baseline ... --out /tmp/perfgate-report.json   # keep artifacts
//! ```

use std::collections::HashMap;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use speedybox_bench::harness::{Env, Runner};
use speedybox_mat::{AdmissionPolicy, FlowTable, OpCounter, FID_SPACE};
use speedybox_packet::{Fid, FiveTuple, Packet, Protocol};
use speedybox_platform::bess::BessChain;
use speedybox_platform::chains;
use speedybox_platform::runtime::SboxConfig;
use speedybox_telemetry::json::{escape, Json};
use speedybox_telemetry::TelemetrySnapshot;
use speedybox_traffic::{Workload, WorkloadConfig};

/// Default tolerance: a metric may regress by up to this fraction.
const DEFAULT_TOLERANCE: f64 = 0.10;
/// Fixed workload parameters — the gate's numbers are only comparable
/// against baselines produced with the same traffic.
const FLOWS: usize = 200;
const SEED: u64 = 7;

/// One gated scenario's measured numbers.
struct Measurement {
    name: &'static str,
    hit_rate: f64,
    /// p50 fast-path latency with the default compiled rule programs.
    p50_subsequent_cycles: u64,
    /// p50 fast-path latency with `SboxConfig::compiled` off — the
    /// interpreter the compiled path must strictly beat.
    p50_interpreted_cycles: u64,
    snapshot: TelemetrySnapshot,
}

fn p50_with(
    env: Env,
    nfs: Vec<Box<dyn speedybox_nf::Nf>>,
    compiled: bool,
) -> (u64, TelemetrySnapshot) {
    let packets = Workload::generate(&WorkloadConfig {
        flows: FLOWS,
        seed: SEED,
        ..WorkloadConfig::default()
    })
    .packets();
    let config = SboxConfig { compiled, ..SboxConfig::default() };
    let mut runner = Runner::with_config(env, nfs, config);
    let _ = runner.run(packets);
    let snapshot = match &runner {
        Runner::Bess(c) => c.telemetry().snapshot(),
        Runner::Onvm(c) => c.telemetry().snapshot(),
    };
    (snapshot.latency[2].quantile(0.5), snapshot)
}

fn run_scenario(
    name: &'static str,
    env: Env,
    build: impl Fn() -> Vec<Box<dyn speedybox_nf::Nf>>,
) -> Measurement {
    let (p50_compiled, snapshot) = p50_with(env, build(), true);
    let (p50_interpreted, _) = p50_with(env, build(), false);
    Measurement {
        name,
        hit_rate: snapshot.fastpath_hit_rate(),
        p50_subsequent_cycles: p50_compiled,
        p50_interpreted_cycles: p50_interpreted,
        snapshot,
    }
}

fn measure() -> Vec<Measurement> {
    vec![
        run_scenario("chain1-bess", Env::Bess, || chains::chain1(8).0),
        run_scenario("chain2-onvm", Env::Onvm, || chains::chain2().0),
    ]
}

/// Pooled reruns of the chain1 trace after the warm run.
const POOL_RERUNS: usize = 8;
/// Wall-clock throughput may regress by up to this fraction against the
/// baseline. Wall time on a shared CI runner is noisy, so this is
/// deliberately generous: the deterministic cycle-model gates above catch
/// real per-packet work regressions, while this bound only catches
/// collapses like an accidental per-packet allocation or copy creeping
/// back into the steady state.
const WALL_TOLERANCE: f64 = 0.5;

/// Steady-state numbers for the pooled packet substrate on chain1.
struct PoolSteadyState {
    /// Pool misses across all pooled reruns — the steady state must never
    /// fall back to the heap, so this gates at exactly zero.
    steady_misses: u64,
    /// Pool hits across the reruns (reported for context).
    steady_hits: u64,
    /// Best-of-reruns wall-clock throughput of `chain.run` alone (trace
    /// copies and recycling happen outside the timed window).
    wall_mpps: f64,
}

/// One warm run of chain1 installs every flow's rules and seeds the pool
/// with recycled buffers; then each rerun copies the trace through the
/// pool, runs the chain, and recycles every output buffer.
fn pool_steady_state() -> PoolSteadyState {
    use std::time::Instant;
    let packets = Workload::generate(&WorkloadConfig {
        flows: FLOWS,
        seed: SEED,
        ..WorkloadConfig::default()
    })
    .packets();
    let config = SboxConfig { batch_size: 32, ..SboxConfig::default() };
    let mut chain = BessChain::speedybox_with(chains::chain1(8).0, config);
    let pool = Arc::clone(chain.pool());
    let warm = chain.run(pool.copy_packets(&packets));
    pool.free_batch(warm.outputs);

    let before = pool.stats();
    let mut best_mpps = 0.0f64;
    for _ in 0..POOL_RERUNS {
        let trace = pool.copy_packets(&packets);
        let n = trace.len();
        let t = Instant::now();
        let mut stats = chain.run(trace);
        let secs = t.elapsed().as_secs_f64();
        pool.free_batch(stats.outputs.drain(..));
        if secs > 0.0 {
            best_mpps = best_mpps.max(n as f64 / secs / 1e6);
        }
    }
    let after = pool.stats();
    PoolSteadyState {
        steady_misses: after.misses - before.misses,
        steady_hits: after.hits - before.hits,
        wall_mpps: best_mpps,
    }
}

/// Gates the pooled substrate. Returns the number of failures.
fn gate_pool(ps: &PoolSteadyState, baseline_wall_mpps: Option<f64>) -> usize {
    let mut failures = 0;
    if ps.steady_misses == 0 {
        println!(
            "PASS pool: 0 steady-state misses across {POOL_RERUNS} pooled reruns ({} hits)",
            ps.steady_hits
        );
    } else {
        println!(
            "FAIL pool: {} steady-state pool misses (heap fallbacks) — the warm data path must \
             be served entirely by the pool",
            ps.steady_misses
        );
        failures += 1;
    }
    match baseline_wall_mpps {
        Some(base) => {
            let floor = base * (1.0 - WALL_TOLERANCE);
            if ps.wall_mpps < floor {
                println!(
                    "FAIL pool: wall throughput {:.3} Mpps fell below {floor:.3} (baseline {base:.3} - {:.0}%)",
                    ps.wall_mpps,
                    WALL_TOLERANCE * 100.0
                );
                failures += 1;
            } else {
                println!(
                    "PASS pool: wall throughput {:.3} Mpps (baseline {base:.3})",
                    ps.wall_mpps
                );
            }
        }
        None => {
            println!("FAIL pool: baseline has no \"pool\" entry (refresh with --write-baseline)");
            failures += 1;
        }
    }
    failures
}

/// Required modeled speedup at 8 workers over 1 worker. Absolute, not
/// baseline-relative: if symmetric scaling stops paying, the runtime broke.
const MIN_SPEEDUP_8W: f64 = 3.0;
/// Scaling trace: enough flows to spread across every FID slice, long
/// enough that steady-state fast-path traffic dominates.
const SCALING_FLOWS: usize = 256;

/// The worker-scaling scenario's numbers at one worker count.
struct ScalingPoint {
    workers: usize,
    /// Modeled throughput over the busiest-worker wall clock.
    rate_mpps: f64,
    /// Compiled fast-path p50 — must not move with the worker count.
    p50_subsequent_cycles: u64,
    /// Install/remove rounds the churn thread completed during the run.
    churn_rounds: u64,
}

/// Round-robin interleave: keep each flow's packet order, merge flows one
/// packet at a time so every batch spans many FID slices (what an RSS NIC
/// delivers to a symmetric worker pool).
fn interleave(packets: Vec<Packet>) -> Vec<Packet> {
    let mut flows: Vec<Vec<Packet>> = Vec::new();
    let mut index: HashMap<u32, usize> = HashMap::new();
    for p in packets {
        let fid = p.five_tuple().expect("tcp workload").fid().value();
        let slot = *index.entry(fid).or_insert_with(|| {
            flows.push(Vec::new());
            flows.len() - 1
        });
        flows[slot].push(p);
    }
    let mut out = Vec::new();
    let mut cursor = vec![0usize; flows.len()];
    loop {
        let mut emitted = false;
        for (f, c) in flows.iter().zip(cursor.iter_mut()) {
            if *c < f.len() {
                out.push(f[*c].clone());
                *c += 1;
                emitted = true;
            }
        }
        if !emitted {
            return out;
        }
    }
}

/// Runs chain1 on BESS at `workers` symmetric workers, batch 32, with a
/// churn thread hammering install/remove on off-trace FIDs for the whole
/// run — the differential-scaling setup, measured instead of checked.
fn scaling_point(workers: usize) -> ScalingPoint {
    let packets = interleave(
        Workload::generate(&WorkloadConfig {
            flows: SCALING_FLOWS,
            median_packets: 16.0,
            seed: SEED,
            ..WorkloadConfig::default()
        })
        .packets(),
    );
    let avoid: HashSet<u32> =
        packets.iter().filter_map(|p| p.five_tuple().ok()).map(|t| t.fid().value()).collect();
    let config = SboxConfig { workers, batch_size: 32, ..SboxConfig::default() };
    let mut chain = BessChain::speedybox_with(chains::chain1(8).0, config);
    let global = Arc::clone(&chain.sbox().expect("speedybox enabled").global);

    // Churn rules the trace never touches: publication races with the
    // measured readers, but the modeled per-packet work stays deterministic.
    let mut tuples = Vec::new();
    'search: for x in 0..=255u8 {
        for y in 1..=254u8 {
            let t = FiveTuple::new(
                Ipv4Addr::new(10, 250, x, y),
                7777,
                Ipv4Addr::new(10, 250, 255, 254),
                9999,
                Protocol::Tcp,
            );
            if !avoid.contains(&t.fid().value()) {
                tuples.push(t);
                if tuples.len() == 8 {
                    break 'search;
                }
            }
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let churn_stop = Arc::clone(&stop);
    let churn = std::thread::spawn(move || {
        let mut ops = OpCounter::default();
        let mut rounds = 0u64;
        while !churn_stop.load(Ordering::Relaxed) {
            for t in &tuples {
                let fid = t.fid();
                global.install(fid, &mut ops);
                let _ = global.rule(fid);
                global.remove_flow(fid);
            }
            rounds += 1;
            std::thread::yield_now();
        }
        rounds
    });
    let stats = chain.run(packets);
    stop.store(true, Ordering::Relaxed);
    let churn_rounds = churn.join().unwrap_or(0);
    ScalingPoint {
        workers,
        rate_mpps: stats.worker_rate_mpps(chain.model()),
        p50_subsequent_cycles: chain.telemetry().snapshot().latency[2].quantile(0.5),
        churn_rounds,
    }
}

/// Gates the scaling scenario absolutely. Returns the number of failures.
fn gate_scaling(points: &[ScalingPoint]) -> usize {
    let one = points.iter().find(|p| p.workers == 1).expect("1-worker point");
    let eight = points.iter().find(|p| p.workers == 8).expect("8-worker point");
    let mut failures = 0;
    let speedup = if one.rate_mpps > 0.0 { eight.rate_mpps / one.rate_mpps } else { 0.0 };
    if speedup >= MIN_SPEEDUP_8W {
        println!(
            "PASS scaling: {:.2} -> {:.2} Mpps modeled, {speedup:.2}x at 8 workers (>= {MIN_SPEEDUP_8W}x)",
            one.rate_mpps, eight.rate_mpps
        );
    } else {
        println!(
            "FAIL scaling: {speedup:.2}x at 8 workers is below the {MIN_SPEEDUP_8W}x floor ({:.2} -> {:.2} Mpps)",
            one.rate_mpps, eight.rate_mpps
        );
        failures += 1;
    }
    if eight.p50_subsequent_cycles <= one.p50_subsequent_cycles {
        println!(
            "PASS scaling: 8-worker compiled p50 {} <= single-worker p50 {}",
            eight.p50_subsequent_cycles, one.p50_subsequent_cycles
        );
    } else {
        println!(
            "FAIL scaling: 8-worker compiled p50 {} exceeds single-worker p50 {}",
            eight.p50_subsequent_cycles, one.p50_subsequent_cycles
        );
        failures += 1;
    }
    failures
}

/// Live flows the bounded store must sustain in `--flow-scale` mode. The
/// 20-bit FID space tops out at 1,048,576, so one million live flows is
/// a ~95%-full slab.
const FLOW_SCALE_FLOWS: u32 = 1_000_000;
/// Hard resident-memory ceiling (peak, `VmHWM`) for the whole 1M-flow
/// exercise, MiB. Absolute, like the scaling gate: the slab + timer wheel
/// cost ~150 B/flow, so a breach means a per-entry memory regression, not
/// noise.
const FLOW_RSS_CEILING_MIB: u64 = 512;
/// Absolute sanity ceiling on the slab lookup p99, nanoseconds. A slab
/// lookup is two array index loads and an RCU guard — generous enough for
/// a noisy shared runner, tight enough to catch an accidental O(n) path.
const FLOW_LOOKUP_P99_CEILING_NS: u64 = 20_000;

/// `--flow-scale` measurements: install → lookup → idle-evict → re-install
/// over one million flows.
struct FlowScale {
    install_rate_mpps: f64,
    reinstall_rate_mpps: f64,
    lookup_p99_ns: u64,
    evict_rate_mpps: f64,
    evicted: usize,
    live_flows: usize,
    pending_generations: usize,
    /// Peak resident set (`VmHWM`), MiB — `None` off Linux.
    peak_rss_mib: Option<u64>,
}

/// Peak resident set size in MiB from `/proc/self/status` (Linux only).
fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib.div_ceil(1024))
}

/// The 1M-flow smoke: fill the slab, sample lookups, idle-evict the whole
/// population through the timer wheel, then refill into the recycled
/// slots. Clocks are synthetic ticks — one per install — so the wheel
/// cascade is exercised deterministically; only the rates are wall-clock.
fn flow_scale() -> FlowScale {
    use std::time::Instant;
    let n = FLOW_SCALE_FLOWS;
    let table: FlowTable<u64> = FlowTable::new(64, FID_SPACE, AdmissionPolicy::EvictOldest);

    let start = Instant::now();
    for i in 0..n {
        table.insert(Fid::new(i), Arc::new(u64::from(i)), u64::from(i));
    }
    let install_rate_mpps = f64::from(n) / start.elapsed().as_secs_f64() / 1e6;
    assert_eq!(table.len(), n as usize, "every install must take a slab slot");

    // Lookup p99 over a strided sweep of the live table (200k samples).
    let mut samples: Vec<u64> = Vec::with_capacity(n as usize / 5 + 1);
    for i in (0..n).step_by(5) {
        let t = Instant::now();
        let hit = table.lookup(Fid::new(i));
        #[allow(clippy::cast_possible_truncation)] // sub-second interval fits u64 ns
        let ns = t.elapsed().as_nanos() as u64;
        assert!(hit.is_some(), "installed fid {i} must resolve");
        samples.push(ns);
    }
    samples.sort_unstable();
    let lookup_p99_ns = samples[samples.len() * 99 / 100];

    // Idle-evict the entire population: newest touch is n-1, so a clock of
    // n + 2000 with max_idle 1000 expires every flow through the wheel.
    let start = Instant::now();
    let evicted = table.expire_idle(u64::from(n) + 2_000, 1_000);
    let evict_rate_mpps = evicted.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
    let evicted_count = evicted.len();
    drop(evicted);
    table.collect_generations();

    // Re-install: the freed slots must be recycled off the free list — the
    // arena's high-water mark cannot grow, so neither can peak memory.
    let start = Instant::now();
    for i in 0..n {
        table.insert(Fid::new(i), Arc::new(u64::from(i)), u64::from(n) + 3_000 + u64::from(i));
    }
    let reinstall_rate_mpps = f64::from(n) / start.elapsed().as_secs_f64() / 1e6;
    table.collect_generations();

    FlowScale {
        install_rate_mpps,
        reinstall_rate_mpps,
        lookup_p99_ns,
        evict_rate_mpps,
        evicted: evicted_count,
        live_flows: table.len(),
        pending_generations: table.pending_generations(),
        peak_rss_mib: peak_rss_mib(),
    }
}

/// Gates the flow-scale run absolutely. Returns the number of failures.
fn gate_flow_scale(fs: &FlowScale) -> usize {
    let mut failures = 0;
    if fs.live_flows >= FLOW_SCALE_FLOWS as usize {
        println!("PASS flow-scale: {} live flows sustained (>= {FLOW_SCALE_FLOWS})", fs.live_flows);
    } else {
        println!(
            "FAIL flow-scale: only {} live flows after re-install (need {FLOW_SCALE_FLOWS})",
            fs.live_flows
        );
        failures += 1;
    }
    if fs.evicted == FLOW_SCALE_FLOWS as usize {
        println!("PASS flow-scale: idle eviction reclaimed all {} flows", fs.evicted);
    } else {
        println!(
            "FAIL flow-scale: idle eviction reclaimed {} of {FLOW_SCALE_FLOWS} flows",
            fs.evicted
        );
        failures += 1;
    }
    if fs.lookup_p99_ns <= FLOW_LOOKUP_P99_CEILING_NS {
        println!(
            "PASS flow-scale: lookup p99 {} ns (ceiling {FLOW_LOOKUP_P99_CEILING_NS} ns)",
            fs.lookup_p99_ns
        );
    } else {
        println!(
            "FAIL flow-scale: lookup p99 {} ns exceeds the {FLOW_LOOKUP_P99_CEILING_NS} ns ceiling",
            fs.lookup_p99_ns
        );
        failures += 1;
    }
    match fs.peak_rss_mib {
        Some(mib) if mib <= FLOW_RSS_CEILING_MIB => {
            println!("PASS flow-scale: peak RSS {mib} MiB (ceiling {FLOW_RSS_CEILING_MIB} MiB)");
        }
        Some(mib) => {
            println!(
                "FAIL flow-scale: peak RSS {mib} MiB exceeds the {FLOW_RSS_CEILING_MIB} MiB ceiling"
            );
            failures += 1;
        }
        None => {
            println!("WARN flow-scale: /proc/self/status unavailable, memory ceiling not gated");
        }
    }
    if fs.pending_generations == 0 {
        println!("PASS flow-scale: retired generations drained to zero");
    } else {
        println!("FAIL flow-scale: {} retired generations leaked", fs.pending_generations);
        failures += 1;
    }
    failures
}

fn flow_scale_json(fs: &FlowScale) -> String {
    format!(
        "{{\n  \"flow_scale\": {{\"live_flows\": {}, \"install_rate_mpps\": {:.3}, \"reinstall_rate_mpps\": {:.3}, \"lookup_p99_ns\": {}, \"evict_rate_mpps\": {:.3}, \"evicted\": {}, \"peak_rss_mib\": {}, \"rss_ceiling_mib\": {}, \"pending_generations\": {}}}\n}}\n",
        fs.live_flows,
        fs.install_rate_mpps,
        fs.reinstall_rate_mpps,
        fs.lookup_p99_ns,
        fs.evict_rate_mpps,
        fs.evicted,
        fs.peak_rss_mib.map_or_else(|| "null".to_owned(), |v| v.to_string()),
        FLOW_RSS_CEILING_MIB,
        fs.pending_generations
    )
}

fn baseline_json(measurements: &[Measurement], flow: &FlowScale, pool: &PoolSteadyState) -> String {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"fastpath_hit_rate\": {:.6}, \"p50_subsequent_cycles\": {}}}{sep}\n",
            escape(m.name),
            m.hit_rate,
            m.p50_subsequent_cycles
        ));
    }
    // Reference numbers for the bounded flow-state store. The flow-scale
    // gates are absolute (ceilings baked into perfgate), so these are a
    // recorded point of comparison, not gated thresholds.
    out.push_str(&format!(
        "  ],\n  \"flow_scale\": {{\"live_flows\": {}, \"lookup_p99_ns\": {}, \"peak_rss_mib\": {}, \"rss_ceiling_mib\": {}}},\n",
        flow.live_flows,
        flow.lookup_p99_ns,
        flow.peak_rss_mib.map_or_else(|| "null".to_owned(), |v| v.to_string()),
        FLOW_RSS_CEILING_MIB
    ));
    // The pooled substrate's wall-clock reference point (gated with the
    // generous WALL_TOLERANCE); the zero-miss gate is absolute.
    out.push_str(&format!(
        "  \"pool\": {{\"wall_mpps\": {:.6}, \"steady_misses\": {}}}\n}}\n",
        pool.wall_mpps, pool.steady_misses
    ));
    out
}

fn report_json(
    measurements: &[Measurement],
    scaling: &[ScalingPoint],
    pool: &PoolSteadyState,
) -> String {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"fastpath_hit_rate\": {:.6}, \"p50_subsequent_cycles\": {}, \"p50_interpreted_cycles\": {}, \"snapshot\": {}}}{sep}\n",
            escape(m.name),
            m.hit_rate,
            m.p50_subsequent_cycles,
            m.p50_interpreted_cycles,
            m.snapshot.to_json()
        ));
    }
    out.push_str("  ],\n  \"scaling\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        let sep = if i + 1 == scaling.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workers\": {}, \"rate_mpps\": {:.6}, \"p50_subsequent_cycles\": {}, \"churn_rounds\": {}}}{sep}\n",
            p.workers, p.rate_mpps, p.p50_subsequent_cycles, p.churn_rounds
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"pool\": {{\"wall_mpps\": {:.6}, \"steady_misses\": {}, \"steady_hits\": {}}}\n}}\n",
        pool.wall_mpps, pool.steady_misses, pool.steady_hits
    ));
    out
}

/// A baseline entry parsed back from disk.
struct BaselineEntry {
    name: String,
    hit_rate: f64,
    p50_subsequent_cycles: f64,
}

fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let root = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let scenarios = root
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or("baseline is missing the \"scenarios\" array")?;
    scenarios
        .iter()
        .map(|s| {
            let name =
                s.get("name").and_then(Json::as_str).ok_or("scenario missing \"name\"")?.to_owned();
            let hit_rate = s
                .get("fastpath_hit_rate")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scenario {name} missing \"fastpath_hit_rate\""))?;
            let p50 = s
                .get("p50_subsequent_cycles")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("scenario {name} missing \"p50_subsequent_cycles\""))?;
            Ok(BaselineEntry { name, hit_rate, p50_subsequent_cycles: p50 })
        })
        .collect()
}

/// The baseline's pool wall-clock reference, if the file has one (older
/// baselines predate the pooled substrate).
fn parse_baseline_pool_wall(text: &str) -> Option<f64> {
    let root = Json::parse(text).ok()?;
    root.get("pool").and_then(|p| p.get("wall_mpps")).and_then(Json::as_f64)
}

/// Gates `cur` against `base`. Returns the number of failures.
fn gate(measurements: &[Measurement], baseline: &[BaselineEntry], tolerance: f64) -> usize {
    let mut failures = 0;
    for m in measurements {
        // The compiled fast path must strictly beat the interpreter — no
        // tolerance: if lowering stops paying for itself, the default mode
        // is wrong.
        if m.p50_subsequent_cycles < m.p50_interpreted_cycles {
            println!(
                "PASS {}: compiled p50 {} < interpreted p50 {}",
                m.name, m.p50_subsequent_cycles, m.p50_interpreted_cycles
            );
        } else {
            println!(
                "FAIL {}: compiled p50 {} must be strictly below interpreted p50 {}",
                m.name, m.p50_subsequent_cycles, m.p50_interpreted_cycles
            );
            failures += 1;
        }
        let Some(base) = baseline.iter().find(|b| b.name == m.name) else {
            println!("FAIL {}: no baseline entry (refresh with --write-baseline)", m.name);
            failures += 1;
            continue;
        };
        // Hit rate: lower is a regression.
        let floor = base.hit_rate * (1.0 - tolerance);
        if m.hit_rate < floor {
            println!(
                "FAIL {}: fastpath_hit_rate {:.4} fell below {:.4} (baseline {:.4} - {:.0}%)",
                m.name,
                m.hit_rate,
                floor,
                base.hit_rate,
                tolerance * 100.0
            );
            failures += 1;
        } else {
            println!(
                "PASS {}: fastpath_hit_rate {:.4} (baseline {:.4})",
                m.name, m.hit_rate, base.hit_rate
            );
        }
        // p50 latency: higher is a regression.
        let ceiling = base.p50_subsequent_cycles * (1.0 + tolerance);
        let p50 = m.p50_subsequent_cycles as f64;
        if p50 > ceiling {
            println!(
                "FAIL {}: p50_subsequent_cycles {} rose above {:.0} (baseline {:.0} + {:.0}%)",
                m.name,
                m.p50_subsequent_cycles,
                ceiling,
                base.p50_subsequent_cycles,
                tolerance * 100.0
            );
            failures += 1;
        } else {
            println!(
                "PASS {}: p50_subsequent_cycles {} (baseline {:.0})",
                m.name, m.p50_subsequent_cycles, base.p50_subsequent_cycles
            );
            if p50 < base.p50_subsequent_cycles * (1.0 - tolerance) {
                println!(
                    "  note: p50 improved by more than {:.0}% — consider refreshing the baseline",
                    tolerance * 100.0
                );
            }
        }
    }
    failures
}

fn value_of<'a>(argv: &'a [String], name: &str) -> Option<&'a str> {
    argv.iter().position(|a| a == name).and_then(|i| argv.get(i + 1)).map(String::as_str)
}

fn run() -> Result<bool, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let tolerance = match value_of(&argv, "--tolerance") {
        None => DEFAULT_TOLERANCE,
        Some(v) => {
            let pct: f64 = v.parse().map_err(|_| format!("bad --tolerance: {v}"))?;
            pct / 100.0
        }
    };

    if argv.iter().any(|a| a == "--flow-scale") {
        println!("perfgate --flow-scale: {FLOW_SCALE_FLOWS} flows, {} slab slots", FID_SPACE);
        let fs = flow_scale();
        println!(
            "  install {:.2} M/s, re-install {:.2} M/s, lookup p99 {} ns, evict {:.2} M/s, peak RSS {}",
            fs.install_rate_mpps,
            fs.reinstall_rate_mpps,
            fs.lookup_p99_ns,
            fs.evict_rate_mpps,
            fs.peak_rss_mib.map_or_else(|| "n/a".to_owned(), |v| format!("{v} MiB")),
        );
        if let Some(path) = value_of(&argv, "--out") {
            std::fs::write(path, flow_scale_json(&fs)).map_err(|e| format!("write {path}: {e}"))?;
            println!("flow report written to {path}");
        }
        let failures = gate_flow_scale(&fs);
        if failures == 0 {
            println!("perfgate: flow-scale within bounds");
        } else {
            println!("perfgate: {failures} flow-scale gate(s) failed");
        }
        return Ok(failures == 0);
    }

    println!("perfgate: {FLOWS} flows, seed {SEED}, tolerance {:.0}%", tolerance * 100.0);
    let measurements = measure();
    for m in &measurements {
        println!(
            "  {}: {} packets, hit rate {:.4}, p50 fast-path {} cycles",
            m.name, m.snapshot.packets, m.hit_rate, m.p50_subsequent_cycles
        );
    }
    let scaling: Vec<ScalingPoint> = [1usize, 2, 4, 8].iter().map(|&w| scaling_point(w)).collect();
    for p in &scaling {
        println!(
            "  scaling w={}: {:.2} Mpps modeled, p50 {} cycles, {} churn rounds",
            p.workers, p.rate_mpps, p.p50_subsequent_cycles, p.churn_rounds
        );
    }
    let pool_ss = pool_steady_state();
    println!(
        "  pool: {} steady-state misses, {} hits, {:.3} Mpps wall over {POOL_RERUNS} reruns",
        pool_ss.steady_misses, pool_ss.steady_hits, pool_ss.wall_mpps
    );

    if let Some(path) = value_of(&argv, "--out") {
        std::fs::write(path, report_json(&measurements, &scaling, &pool_ss))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("report written to {path}");
    }

    if let Some(path) = value_of(&argv, "--write-baseline") {
        let flow = flow_scale();
        std::fs::write(path, baseline_json(&measurements, &flow, &pool_ss))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("baseline written to {path}");
        return Ok(true);
    }

    let baseline_path = value_of(&argv, "--baseline").unwrap_or("crates/bench/baseline.json");
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e} (seed one with --write-baseline)"))?;
    let baseline = parse_baseline(&text)?;
    let failures = gate(&measurements, &baseline, tolerance)
        + gate_scaling(&scaling)
        + gate_pool(&pool_ss, parse_baseline_pool_wall(&text));
    if failures == 0 {
        println!("perfgate: all metrics within tolerance");
    } else {
        println!("perfgate: {failures} metric(s) regressed");
    }
    Ok(failures == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("perfgate error: {e}");
            ExitCode::from(2)
        }
    }
}
