//! Symmetric-worker scaling: the run-to-completion worker pool over the
//! wait-free classifier/Global-MAT generations.
//!
//! Three groups:
//!
//! * `worker_pool` — real OS threads through `run_workers` at 1/2/4/8
//!   workers, wall-clock (expect real speedup only up to the core count);
//! * `worker_pool_churn` — the same pool with an installer/remover thread
//!   churning off-trace rules for the whole run: publication must not slow
//!   the readers down;
//! * `modeled_wall` — the deterministic model's busiest-worker wall cycles
//!   at each worker count, reported as wall time per whole-workload run
//!   (this is the machine-independent number perfgate gates at >= 3x).
//!
//! The trace interleaves flows round-robin so every batch spans many FID
//! slices — what RSS hands a symmetric pool.

#![allow(clippy::cast_possible_truncation)] // bench data built from loop indices

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use speedybox_mat::OpCounter;
use speedybox_nf::ipfilter::IpFilter;
use speedybox_nf::monitor::Monitor;
use speedybox_nf::Nf;
use speedybox_packet::{FiveTuple, Packet, PacketBuilder, Protocol};
use speedybox_platform::bess::BessChain;
use speedybox_platform::chains::ipfilter_chain;
use speedybox_platform::runtime::SboxConfig;
use speedybox_platform::workers::run_workers;
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const FLOWS: u16 = 64;
const PACKETS_PER_FLOW: usize = 16;

/// Round-robin over `FLOWS` distinct flows: packet `i` belongs to flow
/// `i % FLOWS`, so consecutive packets land on different FID slices.
fn workload() -> Vec<Packet> {
    (0..FLOWS as usize * PACKETS_PER_FLOW)
        .map(|i| {
            PacketBuilder::tcp()
                .src(format!("10.1.0.1:{}", 1000 + (i as u16 % FLOWS)).parse().unwrap())
                .dst("10.1.0.2:80".parse().unwrap())
                .seq((i / FLOWS as usize) as u32)
                .payload(b"scaling bench payload")
                .build()
        })
        .collect()
}

fn nf_sets(workers: usize) -> Vec<Vec<Box<dyn Nf>>> {
    (0..workers.next_power_of_two())
        .map(|_| {
            vec![
                Box::new(IpFilter::pass_through(20)) as Box<dyn Nf>,
                Box::new(Monitor::new()) as Box<dyn Nf>,
            ]
        })
        .collect()
}

/// Real threads, quiet tables.
fn bench_worker_pool(c: &mut Criterion) {
    let packets = workload();
    let mut g = c.benchmark_group("worker_pool");
    g.throughput(Throughput::Elements(packets.len() as u64));
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            // Input construction (NF sets, the trace clone) happens in the
            // setup closure, outside the timed region: the measurement is
            // the pool run, not the allocator warming up the inputs.
            b.iter_batched(
                || (nf_sets(workers), packets.clone()),
                |(sets, trace)| {
                    black_box(run_workers(
                        sets,
                        trace,
                        SboxConfig { workers, ..SboxConfig::default() },
                    ))
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Real threads with concurrent rule churn: wait-free generation loads
/// mean the churner costs the readers nothing but memory bandwidth.
fn bench_worker_pool_churn(c: &mut Criterion) {
    let packets = workload();
    let mut g = c.benchmark_group("worker_pool_churn");
    g.throughput(Throughput::Elements(packets.len() as u64));
    g.sample_size(10);
    // The churner targets FIDs the trace never produces (10.250.0.0/16
    // sources); the tuple list is input data, built once outside the loop.
    let tuples: Vec<FiveTuple> = (1..=8u8)
        .map(|y| {
            FiveTuple::new(
                Ipv4Addr::new(10, 250, 0, y),
                7777,
                Ipv4Addr::new(10, 250, 255, 254),
                9999,
                Protocol::Tcp,
            )
        })
        .collect();
    for workers in [1usize, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            // A fresh worker pool per iteration; NF sets, the trace clone
            // and the churn tuple list are setup work, excluded from the
            // measurement.
            b.iter_batched(
                || (nf_sets(workers), packets.clone(), tuples.clone()),
                |(sets, trace, churn_tuples)| {
                    let stop = Arc::new(AtomicBool::new(false));
                    std::thread::scope(|s| {
                        // run_workers builds its own SpeedyBox, so the
                        // churner hammers a sibling table set: same code
                        // paths, same allocator pressure, measured
                        // interference only.
                        let churn_stop = Arc::clone(&stop);
                        s.spawn(move || {
                            let local =
                                Arc::new(speedybox_mat::LocalMat::new(speedybox_mat::NfId::new(0)));
                            let gm = speedybox_mat::GlobalMat::with_shards(vec![local], 8);
                            let mut ops = OpCounter::default();
                            while !churn_stop.load(Ordering::Relaxed) {
                                for t in &churn_tuples {
                                    gm.install(t.fid(), &mut ops);
                                    let _ = gm.rule(t.fid());
                                    gm.remove_flow(t.fid());
                                }
                                std::thread::yield_now();
                            }
                        });
                        let report = black_box(run_workers(
                            sets,
                            trace,
                            SboxConfig { workers, ..SboxConfig::default() },
                        ));
                        stop.store(true, Ordering::Relaxed);
                        report
                    })
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Deterministic model: whole-workload busiest-worker wall cycles. The
/// per-iteration wall time here tracks `worker_wall_cycles`, the number
/// perfgate's >= 3x scaling gate is computed from.
fn bench_modeled_wall(c: &mut Criterion) {
    let packets = workload();
    let mut g = c.benchmark_group("modeled_wall");
    g.throughput(Throughput::Elements(packets.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            let config = SboxConfig { workers, batch_size: 32, ..SboxConfig::default() };
            let mut chain = BessChain::speedybox_with(ipfilter_chain(3, 200), config);
            let pool = Arc::clone(chain.pool());
            let warm = chain.run(pool.copy_packets(&packets));
            pool.free_batch(warm.outputs);
            // The warm run seeded the pool with recycled buffers, so the
            // pooled trace copy in setup is allocation-free and the timed
            // region measures the chain (run + recycle), not
            // clone-per-packet.
            b.iter_batched(
                || pool.copy_packets(&packets),
                |trace| {
                    let mut stats = chain.run(trace);
                    pool.free_batch(stats.outputs.drain(..));
                    black_box(stats)
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_worker_pool, bench_worker_pool_churn, bench_modeled_wall);
criterion_main!(benches);
