//! Wall-clock cost of the compiled fast path vs the interpreter: the same
//! chain, the same rule, executed once as straight-line micro-ops with
//! incremental checksum patches and once by interpreting the consolidated
//! action with full trailing recomputes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speedybox_mat::{compile, consolidate, HeaderAction, OpCounter};
use speedybox_packet::{HeaderField, Packet, PacketBuilder};
use speedybox_platform::bess::BessChain;
use speedybox_platform::chains::ipfilter_chain;
use speedybox_platform::runtime::SboxConfig;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn packet(i: u32) -> Packet {
    PacketBuilder::tcp()
        .src("10.0.0.1:4242".parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .seq(i)
        .payload(b"bench payload")
        .build()
}

/// Whole-chain per-packet cost with the rule executed compiled vs
/// interpreted — the knob the `--interpreted` CLI flag flips.
fn bench_chain_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("bess_fastpath_mode");
    for (mode, compiled) in [("compiled", true), ("interpreted", false)] {
        g.bench_with_input(BenchmarkId::new(mode, 3usize), &compiled, |b, &compiled| {
            let config = SboxConfig { compiled, ..SboxConfig::default() };
            let mut chain = BessChain::speedybox_with(ipfilter_chain(3, 200), config);
            chain.process(packet(0)); // install the fast-path rule
            let mut i = 1;
            b.iter(|| {
                i += 1;
                black_box(chain.process(packet(i)))
            });
        });
    }
    g.finish();
}

/// The header-action step in isolation: `CompiledProgram::run` vs
/// `ConsolidatedAction::apply` on a representative NAT+LB rewrite.
fn bench_rule_apply(c: &mut Criterion) {
    let action = consolidate(&[
        HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(10, 9, 9, 9)),
        HeaderAction::modify(HeaderField::DstPort, 8080u16),
        HeaderAction::modify(HeaderField::SrcIp, Ipv4Addr::new(172, 16, 0, 1)),
        HeaderAction::Forward,
    ]);
    let program = compile(&action);
    let template = packet(0);
    c.bench_function("rule_apply/compiled", |b| {
        b.iter(|| {
            let mut p = template.clone();
            let mut ops = OpCounter::default();
            black_box(program.run(&mut p, &mut ops).unwrap())
        });
    });
    c.bench_function("rule_apply/interpreted", |b| {
        b.iter(|| {
            let mut p = template.clone();
            let mut ops = OpCounter::default();
            black_box(action.apply(&mut p, &mut ops).unwrap())
        });
    });
}

criterion_group!(benches, bench_chain_modes, bench_rule_apply);
criterion_main!(benches);
