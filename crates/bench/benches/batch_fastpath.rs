//! Batched fast-path throughput: single-packet processing vs the batched
//! entry points (`classify_batch` + `process_batch`), plus the shard-count
//! ablation for the classifier/Global-MAT lock tables.
//!
//! The claim under test: at batch 32 the batched fast path is at least as
//! fast as per-packet processing (it amortizes one lock acquisition per
//! shard per batch and one clock update per batch), and shard count is a
//! pure scalability knob with no single-threaded penalty.

#![allow(clippy::cast_possible_truncation)] // bench data built from loop indices

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use speedybox_packet::{Packet, PacketBuilder};
use speedybox_platform::bess::BessChain;
use speedybox_platform::chains::ipfilter_chain;
use speedybox_platform::runtime::SboxConfig;
use speedybox_platform::threaded::run_threaded_batched;
use std::hint::black_box;
use std::sync::Arc;

const PACKETS: usize = 512;
const FLOWS: u16 = 16;

fn workload() -> Vec<Packet> {
    (0..PACKETS)
        .map(|i| {
            PacketBuilder::tcp()
                .src(format!("10.0.0.1:{}", 1000 + (i as u16 % FLOWS)).parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .seq(i as u32)
                .payload(b"batch bench payload")
                .build()
        })
        .collect()
}

fn config(batch_size: usize, shards: usize) -> SboxConfig {
    SboxConfig { batch_size, shards, ..SboxConfig::default() }
}

/// Run-to-completion environment: whole-workload cost per batch size.
/// Batch 1 is the seed's per-packet path.
fn bench_bess_batch(c: &mut Criterion) {
    let packets = workload();
    let mut g = c.benchmark_group("bess_batch_fastpath");
    g.throughput(Throughput::Elements(PACKETS as u64));
    for batch in [1usize, 8, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let mut chain = BessChain::speedybox_with(ipfilter_chain(3, 200), config(batch, 16));
            // Warm: install every flow's rule and seed the buffer pool so
            // iterations measure the steady-state fast path; the pooled
            // trace copy happens in setup, outside the timed region.
            let pool = Arc::clone(chain.pool());
            let warm = chain.run(pool.copy_packets(&packets));
            pool.free_batch(warm.outputs);
            b.iter_batched(
                || pool.copy_packets(&packets),
                |trace| {
                    let mut stats = chain.run(trace);
                    pool.free_batch(stats.outputs.drain(..));
                    black_box(stats)
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Threaded (OpenNetVM-style) runtime: manager thread classifies and
/// fast-paths, NF threads serve the slow path. This is where the batched
/// path must be >= the per-packet path at batch 32 (the acceptance bar).
fn bench_threaded_batch(c: &mut Criterion) {
    let packets = workload();
    let mut g = c.benchmark_group("threaded_batch_fastpath");
    g.throughput(Throughput::Elements(PACKETS as u64));
    g.sample_size(10);
    for batch in [1usize, 8, 32, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            // NF construction and the trace clone are setup work; the timed
            // region is the threaded run alone.
            b.iter_batched(
                || (ipfilter_chain(3, 200), packets.clone()),
                |(nfs, trace)| black_box(run_threaded_batched(nfs, trace, true, 256, batch)),
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

/// Shard ablation at a fixed batch size: single-threaded cost must be flat
/// across shard counts (sharding only pays off under contention, but must
/// never hurt).
fn bench_shard_ablation(c: &mut Criterion) {
    let packets = workload();
    let mut g = c.benchmark_group("shard_ablation_batch32");
    g.throughput(Throughput::Elements(PACKETS as u64));
    for shards in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            let mut chain = BessChain::speedybox_with(ipfilter_chain(3, 200), config(32, shards));
            let pool = Arc::clone(chain.pool());
            let warm = chain.run(pool.copy_packets(&packets));
            pool.free_batch(warm.outputs);
            b.iter_batched(
                || pool.copy_packets(&packets),
                |trace| {
                    let mut stats = chain.run(trace);
                    pool.free_batch(stats.outputs.drain(..));
                    black_box(stats)
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bess_batch, bench_threaded_batch, bench_shard_ablation);
criterion_main!(benches);
