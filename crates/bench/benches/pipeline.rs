//! Wall-clock end-to-end throughput of the *real* thread-per-NF pipeline
//! (`platform::threaded`): baseline rings-all-the-way vs SpeedyBox
//! manager-side fast path.

#![allow(clippy::cast_possible_truncation)] // bench data built from loop indices

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speedybox_packet::{Packet, PacketBuilder};
use speedybox_platform::chains::ipfilter_chain;
use speedybox_platform::ThreadedOnvm;
use std::hint::black_box;

const PACKETS: usize = 400;
const FLOWS: u16 = 8;

fn workload() -> Vec<Packet> {
    (0..PACKETS)
        .map(|i| {
            PacketBuilder::tcp()
                .src(format!("10.0.0.1:{}", 4000 + (i as u16 % FLOWS)).parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .seq(i as u32)
                .payload(b"pipeline bench payload")
                .build()
        })
        .collect()
}

fn bench_threaded_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_onvm");
    g.sample_size(10);
    g.throughput(Throughput::Elements(PACKETS as u64));
    for n in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, &n| {
            b.iter_batched(
                || (ipfilter_chain(n, 200), workload()),
                |(nfs, pkts)| black_box(ThreadedOnvm::run(nfs, pkts, false).delivered.len()),
                criterion::BatchSize::PerIteration,
            );
        });
        g.bench_with_input(BenchmarkId::new("speedybox", n), &n, |b, &n| {
            b.iter_batched(
                || (ipfilter_chain(n, 200), workload()),
                |(nfs, pkts)| black_box(ThreadedOnvm::run(nfs, pkts, true).delivered.len()),
                criterion::BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_threaded_pipeline);
criterion_main!(benches);
