//! Wall-clock cost of the consolidation algorithm and of applying a
//! consolidated action vs. replaying the chain's actions sequentially —
//! the real-time counterpart of Fig 4.

#![allow(clippy::cast_possible_truncation)] // bench data built from loop indices

use std::net::Ipv4Addr;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speedybox_mat::action::{EncapSpec, HeaderAction};
use speedybox_mat::consolidate::consolidate;
use speedybox_mat::OpCounter;
use speedybox_packet::{HeaderField, Packet, PacketBuilder};
use std::hint::black_box;

fn action_list(n: usize) -> Vec<HeaderAction> {
    (0..n)
        .map(|i| match i % 4 {
            0 => HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(10, 0, 0, i as u8)),
            1 => HeaderAction::modify(HeaderField::DstPort, (8000 + i) as u16),
            2 => HeaderAction::Forward,
            _ => HeaderAction::modify2(
                (HeaderField::SrcIp, Ipv4Addr::new(10, 1, 0, i as u8).into()),
                (HeaderField::SrcPort, ((9000 + i) as u16).into()),
            ),
        })
        .collect()
}

fn packet() -> Packet {
    PacketBuilder::tcp().payload(&[0xab; 128]).build()
}

fn bench_consolidate(c: &mut Criterion) {
    let mut g = c.benchmark_group("consolidate");
    for n in [1usize, 3, 5, 9] {
        let actions = action_list(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &actions, |b, actions| {
            b.iter(|| consolidate(black_box(actions)));
        });
    }
    g.finish();
}

fn bench_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("apply");
    for n in [1usize, 3, 9] {
        let actions = action_list(n);
        let merged = consolidate(&actions);
        g.bench_with_input(BenchmarkId::new("sequential", n), &actions, |b, actions| {
            b.iter_batched(
                packet,
                |mut p| {
                    let mut ops = OpCounter::default();
                    for a in actions {
                        a.apply(&mut p, &mut ops).unwrap();
                    }
                    p
                },
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("consolidated", n), &merged, |b, merged| {
            b.iter_batched(
                packet,
                |mut p| {
                    let mut ops = OpCounter::default();
                    merged.apply(&mut p, &mut ops).unwrap();
                    p
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_encap_stack(c: &mut Criterion) {
    // Encap/decap annihilation: the consolidated form does nothing at all.
    let actions = vec![
        HeaderAction::Encap(EncapSpec::new(1)),
        HeaderAction::Encap(EncapSpec::new(2)),
        HeaderAction::Decap(EncapSpec::new(2)),
        HeaderAction::Decap(EncapSpec::new(1)),
    ];
    let merged = consolidate(&actions);
    assert!(merged.is_noop());
    let mut g = c.benchmark_group("vpn_in_out");
    g.bench_function("sequential", |b| {
        b.iter_batched(
            packet,
            |mut p| {
                let mut ops = OpCounter::default();
                for a in &actions {
                    a.apply(&mut p, &mut ops).unwrap();
                }
                p
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("consolidated", |b| {
        b.iter_batched(
            packet,
            |mut p| {
                let mut ops = OpCounter::default();
                merged.apply(&mut p, &mut ops).unwrap();
                p
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_consolidate, bench_apply, bench_encap_stack);
criterion_main!(benches);
