//! Wall-clock payload-inspection throughput: the Aho–Corasick engine and
//! the full SnortLite NF.

#![allow(clippy::cast_possible_truncation)] // bench data built from loop indices

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speedybox_nf::snort::SnortLite;
use speedybox_nf::{AhoCorasick, Nf, NfContext};
use speedybox_packet::PacketBuilder;
use std::hint::black_box;

const RULES: &str = r#"
alert tcp any any -> any 80 (msg:"evil"; content:"evil";)
alert tcp any any -> any any (msg:"exfil"; content:"XFIL";)
log tcp any any -> any any (msg:"probe"; content:"probe";)
log tcp any any -> any any (msg:"beacon"; content:"beacon";)
pass tcp any any -> any any (content:"healthcheck";)
"#;

fn payload(len: usize, hit: bool) -> Vec<u8> {
    let mut out: Vec<u8> = (0..len).map(|i| b'a' + (i % 23) as u8).collect();
    if hit && len >= 8 {
        let mid = len / 2;
        out[mid..mid + 4].copy_from_slice(b"evil");
    }
    out
}

fn bench_aho_corasick(c: &mut Criterion) {
    let patterns: Vec<Vec<u8>> = ["evil", "XFIL", "probe", "beacon", "healthcheck"]
        .iter()
        .map(|p| p.as_bytes().to_vec())
        .collect();
    let ac = AhoCorasick::new(&patterns);
    let mut g = c.benchmark_group("aho_corasick_scan");
    for len in [64usize, 256, 1024] {
        let clean = payload(len, false);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::new("miss", len), &clean, |b, data| {
            b.iter(|| black_box(ac.find_all(data)));
        });
        let dirty = payload(len, true);
        g.bench_with_input(BenchmarkId::new("hit", len), &dirty, |b, data| {
            b.iter(|| black_box(ac.find_all(data)));
        });
    }
    g.finish();
}

fn bench_snort_process(c: &mut Criterion) {
    let mut g = c.benchmark_group("snort_process");
    for len in [64usize, 512] {
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            let mut ids = SnortLite::from_rules_text(RULES).unwrap();
            let mut p = PacketBuilder::tcp()
                .src("10.0.0.1:1000".parse().unwrap())
                .dst("10.0.0.2:80".parse().unwrap())
                .payload(&payload(len, false))
                .build();
            let fid = p.five_tuple().unwrap().fid();
            p.set_fid(fid);
            b.iter(|| {
                let mut ops = speedybox_mat::OpCounter::default();
                let mut ctx = NfContext::baseline(&mut ops);
                black_box(ids.process(&mut p, &mut ctx))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aho_corasick, bench_snort_process);
criterion_main!(benches);
