//! The bounded flow-state store at scale: install rate into the slab,
//! wait-free lookup latency against a 1M-entry table, LRU eviction churn
//! at capacity, and timer-wheel idle expiry — the micro counterparts of
//! `perfgate --flow-scale`'s gated end-to-end run.
//!
//! Clocks are synthetic ticks (one per operation), so the timer-wheel
//! cascade depth is deterministic per iteration; only the measured wall
//! time varies with the machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use speedybox_mat::{AdmissionPolicy, FlowTable, FID_SPACE};
use speedybox_packet::Fid;
use std::hint::black_box;
use std::sync::Arc;

/// Flows per install/expiry iteration — large enough to spill the wheel's
/// first level and touch many index chunks, small enough to keep
/// criterion's sample count honest.
const BATCH: u32 = 65_536;
/// Live table size for the lookup benchmarks.
const LIVE: u32 = 1_000_000;

fn bench_install(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_install");
    g.throughput(Throughput::Elements(u64::from(BATCH)));
    // Fresh arena: every insert allocates a never-used slot chunk.
    g.bench_function("fresh_slab", |b| {
        b.iter_batched(
            || FlowTable::<u64>::new(64, FID_SPACE, AdmissionPolicy::EvictOldest),
            |table| {
                for i in 0..BATCH {
                    table.insert(Fid::new(i), Arc::new(u64::from(i)), u64::from(i));
                }
                table
            },
            criterion::BatchSize::LargeInput,
        );
    });
    // Recycled arena: the same FIDs re-installed after a full idle sweep,
    // so every insert pops the free list instead of growing the arena.
    g.bench_function("recycled_slots", |b| {
        b.iter_batched(
            || {
                let table = FlowTable::<u64>::new(64, FID_SPACE, AdmissionPolicy::EvictOldest);
                for i in 0..BATCH {
                    table.insert(Fid::new(i), Arc::new(u64::from(i)), u64::from(i));
                }
                table.expire_idle(u64::from(BATCH) + 2_000, 1_000);
                table.collect_generations();
                table
            },
            |table| {
                let base = u64::from(BATCH) + 3_000;
                for i in 0..BATCH {
                    table.insert(Fid::new(i), Arc::new(u64::from(i)), base + u64::from(i));
                }
                table
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let table = FlowTable::<u64>::new(64, FID_SPACE, AdmissionPolicy::EvictOldest);
    for i in 0..LIVE {
        table.insert(Fid::new(i), Arc::new(u64::from(i)), u64::from(i));
    }
    let mut g = c.benchmark_group("flow_lookup_1m_live");
    for stride in [1u32, 4093] {
        // Stride 1 is cache-friendly; 4093 (prime) defeats the prefetcher
        // and spreads across shards — the worst-case pointer chase.
        g.bench_with_input(BenchmarkId::new("stride", stride), &stride, |b, &stride| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + stride) % LIVE;
                black_box(table.lookup(Fid::new(i)))
            });
        });
    }
    g.finish();
}

fn bench_eviction_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_eviction");
    g.throughput(Throughput::Elements(u64::from(BATCH)));
    // At capacity, every insert of a fresh FID must LRU-evict a victim:
    // wheel pop, truth check, slot retire, free-list push, re-allocate.
    g.bench_function("churn_at_capacity", |b| {
        b.iter_batched(
            || {
                let table = FlowTable::<u64>::new(64, BATCH as usize, AdmissionPolicy::EvictOldest);
                for i in 0..BATCH {
                    table.insert(Fid::new(i), Arc::new(u64::from(i)), u64::from(i));
                }
                table
            },
            |table| {
                let base = u64::from(BATCH);
                for i in 0..BATCH {
                    // A disjoint FID range, so every insert displaces.
                    table.insert(Fid::new(BATCH + i), Arc::new(0), base + u64::from(i));
                }
                table
            },
            criterion::BatchSize::LargeInput,
        );
    });
    // Bulk idle expiry through the wheel: cascade + truth check per entry.
    g.bench_function("idle_expiry_sweep", |b| {
        b.iter_batched(
            || {
                let table = FlowTable::<u64>::new(64, FID_SPACE, AdmissionPolicy::EvictOldest);
                for i in 0..BATCH {
                    table.insert(Fid::new(i), Arc::new(u64::from(i)), u64::from(i));
                }
                table
            },
            |table| {
                let evicted = table.expire_idle(u64::from(BATCH) + 2_000, 1_000);
                assert_eq!(evicted.len(), BATCH as usize);
                table
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_install, bench_lookup, bench_eviction_churn);
criterion_main!(benches);
