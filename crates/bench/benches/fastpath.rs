//! Wall-clock per-packet cost of the whole chain: baseline vs SpeedyBox
//! fast path, across chain lengths — the real-time counterpart of Fig 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speedybox_packet::{Packet, PacketBuilder};
use speedybox_platform::bess::BessChain;
use speedybox_platform::chains::ipfilter_chain;
use std::hint::black_box;

fn packet(i: u32) -> Packet {
    PacketBuilder::tcp()
        .src("10.0.0.1:4242".parse().unwrap())
        .dst("10.0.0.2:80".parse().unwrap())
        .seq(i)
        .payload(b"bench payload")
        .build()
}

fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("bess_chain_per_packet");
    for n in [1usize, 3, 6, 9] {
        g.bench_with_input(BenchmarkId::new("original", n), &n, |b, &n| {
            let mut chain = BessChain::original(ipfilter_chain(n, 200));
            chain.process(packet(0)); // warm the firewall flow caches
            let mut i = 1;
            b.iter(|| {
                i += 1;
                black_box(chain.process(packet(i)))
            });
        });
        g.bench_with_input(BenchmarkId::new("speedybox", n), &n, |b, &n| {
            let mut chain = BessChain::speedybox(ipfilter_chain(n, 200));
            chain.process(packet(0)); // install the fast-path rule
            let mut i = 1;
            b.iter(|| {
                i += 1;
                black_box(chain.process(packet(i)))
            });
        });
    }
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    use speedybox_mat::{OpCounter, PacketClassifier};
    let classifier = PacketClassifier::new();
    let mut p = packet(0);
    c.bench_function("classifier_per_packet", |b| {
        b.iter(|| {
            let mut ops = OpCounter::default();
            black_box(classifier.classify(&mut p, &mut ops).unwrap())
        });
    });
}

fn bench_global_mat_lookup(c: &mut Criterion) {
    use speedybox_mat::OpCounter;
    let mut chain = BessChain::speedybox(ipfilter_chain(3, 50));
    let mut first = packet(0);
    let fid = first.five_tuple().unwrap().fid();
    chain.process(first.clone());
    let sbox = chain.sbox().unwrap();
    c.bench_function("global_mat_prepare", |b| {
        b.iter(|| {
            let mut ops = OpCounter::default();
            black_box(sbox.global.prepare(fid, &mut ops))
        });
    });
    let _ = &mut first;
}

criterion_group!(benches, bench_chain, bench_classifier, bench_global_mat_lookup);
criterion_main!(benches);
