//! Wall-clock state-function parallelism: the real-threads wave executor
//! vs sequential execution on heavy payload-READ batches — the real-time
//! counterpart of Fig 5(b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use speedybox_mat::state_fn::{PayloadAccess, SfBatch, StateFunction};
use speedybox_mat::{parallel, ConsolidatedAction, GlobalRule, NfId, OpCounter};
use speedybox_packet::{Packet, PacketBuilder};
use speedybox_platform::parallel_exec::execute_parallel;
use std::hint::black_box;

/// A deliberately heavy READ state function (~tens of microseconds) so the
/// thread-spawn overhead of the wave executor can amortize.
fn heavy_read(tag: usize) -> StateFunction {
    StateFunction::new(format!("read-{tag}"), PayloadAccess::Read, |ctx| {
        let payload = ctx.packet.payload().unwrap_or(&[]);
        let mut acc = 0u64;
        for _ in 0..400 {
            for &b in payload {
                acc = acc.wrapping_mul(31).wrapping_add(u64::from(b));
            }
        }
        black_box(acc);
    })
}

fn rule(n: usize) -> GlobalRule {
    let batches: Vec<SfBatch> =
        (0..n).map(|i| SfBatch::new(NfId::new(i), vec![heavy_read(i)])).collect();
    let schedule = parallel::schedule(&batches);
    GlobalRule::new(ConsolidatedAction::default(), batches, schedule)
}

fn packet() -> (Packet, speedybox_packet::Fid) {
    let mut p = PacketBuilder::tcp().payload(&[0x5a; 1024]).build();
    let fid = p.five_tuple().unwrap().fid();
    p.set_fid(fid);
    (p, fid)
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let mut g = c.benchmark_group("sf_batches");
    g.sample_size(30);
    for n in [1usize, 2, 3, 4] {
        let r = rule(n);
        g.bench_with_input(BenchmarkId::new("sequential", n), &r, |b, r| {
            let (mut p, fid) = packet();
            b.iter(|| {
                let mut ops = OpCounter::default();
                r.execute_batches(&mut p, fid, &mut ops);
                black_box(ops.sf_invocations)
            });
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &r, |b, r| {
            let (mut p, fid) = packet();
            b.iter(|| black_box(execute_parallel(r, &mut p, fid).sf_invocations));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parallel_vs_sequential);
criterion_main!(benches);
