//! Measurement utilities for the SpeedyBox reproduction: percentiles,
//! CDFs, histograms and plain-text table rendering for the figure harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cdf;
pub mod histogram;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use summary::Summary;
pub use table::Table;
