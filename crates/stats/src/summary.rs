//! Scalar summaries: mean, percentiles, min/max.

/// A summary of a sample of non-negative measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    sum: f64,
}

impl Summary {
    /// Builds a summary from samples. NaNs are rejected.
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    #[must_use]
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(sorted.iter().all(|x| !x.is_nan()), "NaN sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let sum = sorted.iter().sum();
        Self { sorted, sum }
    }

    /// Builds a summary from integer cycle counts.
    #[must_use]
    pub fn from_u64(samples: &[u64]) -> Self {
        Self::new(samples.iter().map(|&x| x as f64))
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// True if the summary holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean (0 for an empty sample).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sum / self.sorted.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 for empty samples.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.sorted.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_possible_truncation)] // bounded by len - 1
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        self.sorted[idx]
    }

    /// Median (p50).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Smallest sample (0 for empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample (0 for empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Sample standard deviation (0 for fewer than two samples).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (self.sorted.len() - 1) as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median() {
        let s = Summary::new([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.median() - 3.0).abs() < 1e-12);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = Summary::new((1..=100).map(f64::from));
        assert!((s.quantile(0.0) - 1.0).abs() < 1e-12);
        assert!((s.quantile(1.0) - 100.0).abs() < 1e-12);
        assert!((s.p99() - 99.0).abs() < 1.5);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::new([5.0, 1.0, 3.0]);
        assert!((s.min() - 1.0).abs() < 1e-12);
        assert!((s.max() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new([]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s = Summary::new([4.0, 4.0, 4.0]);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Summary::new([f64::NAN]);
    }

    #[test]
    fn from_u64_converts() {
        let s = Summary::from_u64(&[10, 20, 30]);
        assert!((s.mean() - 20.0).abs() < 1e-12);
    }
}
