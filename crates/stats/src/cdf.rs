//! Empirical CDFs, used by the Fig 9 flow-processing-time plots.

/// An empirical cumulative distribution function over a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds the CDF of a sample.
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    #[must_use]
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(sorted.iter().all(|x| !x.is_nan()), "NaN sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Self { sorted }
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// P(X ≤ x): fraction of samples at or below `x`.
    #[must_use]
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample value v with P(X ≤ v) ≥ p.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 1]` or the CDF is empty.
    #[must_use]
    pub fn value_at(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "probability out of range");
        assert!(!self.sorted.is_empty(), "empty CDF");
        #[allow(clippy::cast_possible_truncation)] // ceil of len * p<=1 fits usize
        let idx = ((self.sorted.len() as f64 * p).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Evenly spaced `(value, probability)` points for plotting — the
    /// series a Fig 9-style plot draws.
    #[must_use]
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        (1..=points)
            .map(|i| {
                let p = i as f64 / points as f64;
                (self.value_at(p), p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_counts_fraction_below() {
        let c = Cdf::new([1.0, 2.0, 3.0, 4.0]);
        assert!((c.at(0.5) - 0.0).abs() < 1e-12);
        assert!((c.at(2.0) - 0.5).abs() < 1e-12);
        assert!((c.at(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn value_at_inverts() {
        let c = Cdf::new((1..=100).map(f64::from));
        assert!((c.value_at(0.5) - 50.0).abs() < 1.0);
        assert!((c.value_at(1.0) - 100.0).abs() < 1e-12);
        assert!((c.value_at(0.01) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_is_monotonic() {
        let c = Cdf::new([5.0, 1.0, 9.0, 3.0, 7.0]);
        let s = c.series(10);
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!((s.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let c = Cdf::new([]);
        assert_eq!(c.at(1.0), 0.0);
        assert!(c.series(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn value_at_zero_rejected() {
        let _ = Cdf::new([1.0]).value_at(0.0);
    }
}
