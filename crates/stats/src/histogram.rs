//! Log-bucketed histograms for latency distributions.

/// A base-2 log-bucketed histogram of non-negative integer samples
/// (cycles, nanoseconds).
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 also holds zero. Memory is
/// constant (64 buckets) regardless of sample count, which is what lets
/// the simulators record millions of per-packet latencies cheaply.
///
/// ```
/// use speedybox_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) >= 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()).saturating_sub(1) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile: the upper bound of the bucket containing
    /// the q-th sample (within 2x of the true value by construction).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_possible_truncation)] // ceil of count * q<=1 fits u64
        let target = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                #[allow(clippy::cast_possible_truncation)] // 64 buckets at most
                let exp = i as u32 + 1;
                return (2u64).saturating_pow(exp).saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, for rendering.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i == 0 { 0 } else { 1u64 << i }, n))
            .collect()
    }

    /// A compact ASCII rendering (one row per non-empty bucket).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (lo, n) in self.nonzero_buckets() {
            #[allow(clippy::cast_possible_truncation)] // bar length <= 40
            let bar = "#".repeat((n * 40 / peak).max(1) as usize);
            let _ = writeln!(out, "{lo:>12} | {bar} {n}");
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let h: Histogram = [1u64, 2, 3, 1000].into_iter().collect();
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 251.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn zero_sample_lands_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets()[0], (0, 2));
    }

    #[test]
    fn quantile_within_bucket_bound() {
        let h: Histogram = (1..=1000u64).collect();
        let p50 = h.quantile(0.5);
        // True median 500; bucket bound guarantees within [500, 1023].
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        let p100 = h.quantile(1.0);
        assert_eq!(p100, 1000, "max clamps to true maximum");
    }

    #[test]
    fn merge_combines() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [1000u64, 2000].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 2000);
        assert_eq!(a.min(), 1);
    }

    #[test]
    fn render_shows_buckets() {
        let h: Histogram = [5u64, 6, 7, 1000].into_iter().collect();
        let s = h.render();
        assert!(s.contains("| ###"), "{s}");
        assert!(s.lines().count() >= 2);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }
}
