//! Plain-text table rendering for the `repro` harness output.

use std::fmt;

/// A simple column-aligned text table.
///
/// ```
/// use speedybox_stats::Table;
///
/// let mut t = Table::new(vec!["chain", "cycles", "saving"]);
/// t.row(vec!["BESS".into(), "1689".into(), "-".into()]);
/// t.row(vec!["BESS w/ SBox".into(), "591".into(), "-65.0%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("BESS w/ SBox"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// accepted and widen the table.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a before/after pair as a percentage change string ("-65.0%").
#[must_use]
pub fn pct_change(before: f64, after: f64) -> String {
    if before == 0.0 {
        return "n/a".to_owned();
    }
    let delta = (after - before) / before * 100.0;
    format!("{delta:+.1}%")
}

/// Formats a ratio as a multiplier string ("2.1x").
#[must_use]
pub fn ratio(numer: f64, denom: f64) -> String {
    if denom == 0.0 {
        return "n/a".to_owned();
    }
    format!("{:.1}x", numer / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer-cell".into(), "2".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only".into()]);
        assert!(t.to_string().contains("only"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn pct_change_formats() {
        assert_eq!(pct_change(100.0, 35.0), "-65.0%");
        assert_eq!(pct_change(100.0, 121.0), "+21.0%");
        assert_eq!(pct_change(0.0, 5.0), "n/a");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(2.1, 1.0), "2.1x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
    }
}
