//! Pass 2: event-rewrite safety.
//!
//! An Event Table entry is a `(condition, update)` pair; when the condition
//! fires, the update's [`RulePatch`](speedybox_mat::RulePatch) replaces the
//! owning NF's per-flow rule and the chain re-consolidates (paper Fig 3).
//! The rewritten rule is installed at runtime with no human in the loop, so
//! this pass checks it *before* any condition ever fires: each registered
//! patch is spliced into the chain's recorded actions and the full
//! consolidation-soundness pass (pass 1) plus the Table I schedule check
//! rerun on the result. Error findings in the spliced chain surface as
//! `SBX007`, naming the event.

use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::Event;

use crate::diag::{LintCode, Report, Severity, Span};
use crate::schedule::check_schedule;
use crate::symbolic::{check_consolidation, NfActions};

/// A registered event reduced to what the verifier needs: whose rule it
/// patches and what the patch installs. Built from a live
/// [`Event`] with [`EventSpec::from_event`] (the update handler is invoked
/// statically to compute the patch).
#[derive(Debug, Clone)]
pub struct EventSpec {
    /// Chain position of the NF whose rule the patch replaces.
    pub nf: usize,
    /// The event's diagnostic name.
    pub name: String,
    /// Replacement header actions, if the patch sets any.
    pub patch_actions: Option<Vec<speedybox_mat::HeaderAction>>,
    /// Declared payload accesses of the replacement state functions, if the
    /// patch sets any.
    pub patch_accesses: Option<Vec<PayloadAccess>>,
}

impl EventSpec {
    /// Reduces a live event by statically invoking its update handler.
    ///
    /// The handler runs against whatever NF state exists at verification
    /// time — the same closure the runtime would call at trigger time — so
    /// the computed patch is the rule the rewrite would install *now*.
    #[must_use]
    pub fn from_event(event: &Event) -> Self {
        let patch = event.compute_patch();
        EventSpec {
            nf: event.nf.index(),
            name: event.name.clone(),
            patch_actions: patch.header_actions,
            patch_accesses: patch
                .state_functions
                .map(|funcs| funcs.iter().map(speedybox_mat::StateFunction::access).collect()),
        }
    }
}

/// Checks every event's rewritten rule: header-action patches are spliced
/// into `nfs` and re-verified with pass 1; state-function patches are
/// spliced into `accesses` (the chain's per-NF batch accesses, by NF
/// position) and the regenerated wavefront schedule re-verified with
/// pass 3. Inner Error findings become SBX007.
#[must_use]
pub fn check_event_rewrites(
    chain: &str,
    nfs: &[NfActions],
    accesses: &[(usize, PayloadAccess)],
    events: &[EventSpec],
) -> Report {
    let mut report = Report::new(chain);
    for event in events {
        if event.nf >= nfs.len() {
            report.push(
                LintCode::EventRewriteUnsound,
                Span::chain(),
                format!(
                    "event `{}` patches nf{} but the chain has only {} NFs",
                    event.name,
                    event.nf,
                    nfs.len()
                ),
            );
            continue;
        }

        if let Some(patch_actions) = &event.patch_actions {
            let mut spliced = nfs.to_vec();
            spliced[event.nf].actions = patch_actions.clone();
            let inner = check_consolidation(chain, &spliced);
            wrap_errors(&mut report, event, &inner, "rewritten rule");
        }

        if let Some(patch_accesses) = &event.patch_accesses {
            // Rebuild the chain's batch-access vector with the patched NF's
            // batch replaced by the patch's effective (max-priority) access,
            // then re-derive and re-verify the wavefront schedule the
            // runtime would precompute at re-install.
            let patched_batch =
                patch_accesses.iter().copied().max().unwrap_or(PayloadAccess::Ignore);
            let mut seen = false;
            let mut rewritten: Vec<PayloadAccess> = Vec::with_capacity(accesses.len() + 1);
            for &(nf, access) in accesses {
                if nf == event.nf {
                    seen = true;
                    if !patch_accesses.is_empty() {
                        rewritten.push(patched_batch);
                    }
                } else {
                    rewritten.push(access);
                }
            }
            if !seen && !patch_accesses.is_empty() {
                // The NF had no batch before the rewrite; it gains one at
                // its chain position.
                let mut with_new: Vec<(usize, PayloadAccess)> = accesses.to_vec();
                with_new.push((event.nf, patched_batch));
                with_new.sort_by_key(|&(nf, _)| nf);
                rewritten = with_new.into_iter().map(|(_, a)| a).collect();
            }
            let waves = speedybox_mat::parallel::schedule_batches(&rewritten);
            let inner = check_schedule(chain, &rewritten, &waves);
            wrap_errors(&mut report, event, &inner, "rewritten schedule");
        }
    }
    report
}

/// Surfaces the spliced chain's Error findings as SBX007, naming the event.
fn wrap_errors(report: &mut Report, event: &EventSpec, inner: &Report, what: &str) {
    for d in &inner.diagnostics {
        if d.severity == Severity::Error {
            report.push(
                LintCode::EventRewriteUnsound,
                d.span.clone(),
                format!(
                    "event `{}` (nf{}) installs a {what} that fails verification: \
                     {}[{}] {}",
                    event.name, event.nf, d.severity, d.code, d.message
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use speedybox_mat::{HeaderAction, RulePatch};
    use speedybox_packet::HeaderField;
    use PayloadAccess::{Ignore, Read};

    use super::*;

    fn base_chain() -> Vec<NfActions> {
        vec![
            NfActions::new("guard", vec![HeaderAction::modify(HeaderField::DstPort, 8080u16)]),
            NfActions::new("mon", vec![HeaderAction::Forward]),
        ]
    }

    #[test]
    fn sound_rewrite_passes() {
        let events = [EventSpec {
            nf: 0,
            name: "dos-threshold".into(),
            patch_actions: Some(vec![HeaderAction::Drop]),
            patch_accesses: None,
        }];
        let report = check_event_rewrites("c", &base_chain(), &[], &events);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn rewrite_installing_dead_actions_is_unsound() {
        // Patching nf0 to drop is fine on its own; patching it to drop when
        // a later NF still records a modify makes that modify dead.
        let mut nfs = base_chain();
        nfs[1].actions =
            vec![HeaderAction::modify(HeaderField::DstIp, std::net::Ipv4Addr::new(10, 0, 0, 1))];
        let events = [EventSpec {
            nf: 0,
            name: "flip-to-drop".into(),
            patch_actions: Some(vec![HeaderAction::Drop]),
            patch_accesses: None,
        }];
        let report = check_event_rewrites("c", &nfs, &[], &events);
        assert!(report.has_code(LintCode::EventRewriteUnsound), "{}", report.render_text());
        assert!(report.has_errors());
        assert!(report.diagnostics[0].message.contains("flip-to-drop"));
        assert!(report.diagnostics[0].message.contains("SBX001"));
    }

    #[test]
    fn rewrite_warnings_do_not_become_errors() {
        // An arrival-decap patch is only a Warn (SBX003) — it must not be
        // escalated to SBX007.
        let events = [EventSpec {
            nf: 0,
            name: "tunnel-egress".into(),
            patch_actions: Some(vec![HeaderAction::Decap(speedybox_mat::EncapSpec::new(5))]),
            patch_accesses: None,
        }];
        let report = check_event_rewrites("c", &base_chain(), &[], &events);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn out_of_range_nf_is_unsound() {
        let events = [EventSpec {
            nf: 9,
            name: "ghost".into(),
            patch_actions: Some(vec![HeaderAction::Drop]),
            patch_accesses: None,
        }];
        let report = check_event_rewrites("c", &base_chain(), &[], &events);
        assert!(report.has_code(LintCode::EventRewriteUnsound));
    }

    #[test]
    fn state_function_patch_reverifies_schedule() {
        // Patching nf0's batch from Ignore to Read keeps the regenerated
        // schedule sound — schedule_batches is correct by construction, so
        // a clean result is expected.
        let events = [EventSpec {
            nf: 0,
            name: "enable-dpi".into(),
            patch_actions: None,
            patch_accesses: Some(vec![Read, Ignore]),
        }];
        let report = check_event_rewrites("c", &base_chain(), &[(0, Ignore), (1, Read)], &events);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn from_event_invokes_update_statically() {
        use speedybox_mat::NfId;
        use speedybox_packet::Fid;

        let event = Event::new(
            Fid::new(3),
            NfId::new(1),
            "threshold",
            |_| false,
            |_| RulePatch::set_action(HeaderAction::Drop),
        );
        let spec = EventSpec::from_event(&event);
        assert_eq!(spec.nf, 1);
        assert_eq!(spec.name, "threshold");
        assert_eq!(spec.patch_actions, Some(vec![HeaderAction::Drop]));
        assert!(spec.patch_accesses.is_none());
    }
}
