//! Pass 3: schedule safety against the paper's Table I conflict matrix,
//! plus rendering of runtime payload-access-tracker findings.
//!
//! A wavefront schedule is safe iff (a) it is an order-preserving partition
//! of the batch list — flattening the waves yields exactly `0..n` — and
//! (b) no wave holds a pair Table I forbids: two payload writers, or a
//! writer ordered against a reader in either direction. The declared
//! accesses the matrix runs on are only trustworthy if the state functions
//! are honest about them; [`check_access_log`] turns the debug-build
//! tracker's observed-write records ([`AccessViolation`]) into `SBX010`
//! diagnostics, closing the declared-vs-observed loop.

use speedybox_mat::parallel::can_parallelize;
use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::track::AccessViolation;
use speedybox_mat::GlobalRule;

use crate::diag::{LintCode, Report, Span};

/// Names the Table I cell a conflicting pair falls into.
fn conflict_rule(earlier: PayloadAccess, later: PayloadAccess) -> &'static str {
    match (earlier, later) {
        (PayloadAccess::Write, PayloadAccess::Write) => "WRITE x WRITE",
        (PayloadAccess::Write, PayloadAccess::Read) => "WRITE before READ",
        (PayloadAccess::Read, PayloadAccess::Write) => "READ before WRITE",
        _ => "conflict",
    }
}

/// Validates `waves` over batches with the given payload `accesses`,
/// reporting SBX008 (forbidden pair in a wave) and SBX009 (not an
/// order-preserving partition).
#[must_use]
pub fn check_schedule(chain: &str, accesses: &[PayloadAccess], waves: &[Vec<usize>]) -> Report {
    let mut report = Report::new(chain);

    let flat: Vec<usize> = waves.iter().flatten().copied().collect();
    let expected: Vec<usize> = (0..accesses.len()).collect();
    if flat != expected {
        report.push(
            LintCode::ScheduleOrder,
            Span::chain(),
            format!(
                "schedule is not an order-preserving partition of the {} batches: \
                 flattened waves are {flat:?}",
                accesses.len()
            ),
        );
        // Indices may be out of range; skip the pairwise check.
        if flat.iter().any(|&i| i >= accesses.len()) {
            return report;
        }
    }

    for (wave_idx, wave) in waves.iter().enumerate() {
        for (pos, &i) in wave.iter().enumerate() {
            for &j in &wave[pos + 1..] {
                if !can_parallelize(accesses[i], accesses[j]) {
                    report.push(
                        LintCode::ScheduleConflict,
                        Span::chain(),
                        format!(
                            "wave {wave_idx} runs batch {i} ({}) in parallel with batch {j} \
                             ({}): Table I forbids {} in one wave",
                            accesses[i],
                            accesses[j],
                            conflict_rule(accesses[i], accesses[j])
                        ),
                    );
                }
            }
        }
    }
    report
}

/// Validates an installed fast-path rule's precomputed schedule against its
/// batches' declared accesses.
#[must_use]
pub fn check_rule_schedule(chain: &str, rule: &GlobalRule) -> Report {
    let accesses: Vec<PayloadAccess> =
        rule.batches.iter().map(speedybox_mat::state_fn::SfBatch::access).collect();
    check_schedule(chain, &accesses, &rule.schedule)
}

/// Renders runtime access-tracker findings as SBX010 errors: a state
/// function that declared Read/Ignore but was observed writing the payload
/// invalidates every schedule built from its declaration.
#[must_use]
pub fn check_access_log(chain: &str, violations: &[AccessViolation]) -> Report {
    let mut report = Report::new(chain);
    for v in violations {
        report.push(
            LintCode::AccessViolation,
            Span::chain(),
            format!(
                "state function `{}` declared payload access `{}` but was observed writing \
                 the payload ({} invocation(s)); Table I schedules built from the declaration \
                 are unsound",
                v.function, v.declared, v.count
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use speedybox_mat::parallel::schedule_batches;
    use PayloadAccess::{Ignore, Read, Write};

    use super::*;

    #[test]
    fn generated_schedules_verify() {
        for accesses in [
            vec![],
            vec![Read, Ignore, Write],
            vec![Write, Write, Write],
            vec![Read, Read, Ignore, Write, Ignore],
        ] {
            let waves = schedule_batches(&accesses);
            let report = check_schedule("gen", &accesses, &waves);
            assert!(report.diagnostics.is_empty(), "{}", report.render_text());
        }
    }

    #[test]
    fn write_write_wave_is_flagged() {
        let report = check_schedule("bad", &[Write, Write], &[vec![0, 1]]);
        assert!(report.has_code(LintCode::ScheduleConflict));
        assert!(report.diagnostics[0].message.contains("WRITE x WRITE"));
    }

    #[test]
    fn write_before_read_wave_is_flagged() {
        let report = check_schedule("bad", &[Write, Read], &[vec![0, 1]]);
        assert!(report.has_code(LintCode::ScheduleConflict));
        assert!(report.diagnostics[0].message.contains("WRITE before READ"));
    }

    #[test]
    fn read_before_write_wave_is_flagged() {
        let report = check_schedule("bad", &[Read, Write], &[vec![0, 1]]);
        assert!(report.has_code(LintCode::ScheduleConflict));
        assert!(report.diagnostics[0].message.contains("READ before WRITE"));
    }

    #[test]
    fn reordered_partition_is_flagged() {
        let report = check_schedule("bad", &[Ignore, Ignore], &[vec![1], vec![0]]);
        assert!(report.has_code(LintCode::ScheduleOrder));
    }

    #[test]
    fn missing_batch_is_flagged() {
        let report = check_schedule("bad", &[Ignore, Ignore], &[vec![0]]);
        assert!(report.has_code(LintCode::ScheduleOrder));
    }

    #[test]
    fn out_of_range_index_is_flagged_without_panicking() {
        let report = check_schedule("bad", &[Ignore], &[vec![0, 5]]);
        assert!(report.has_code(LintCode::ScheduleOrder));
    }

    #[test]
    fn access_log_renders_sbx010() {
        let violations = vec![AccessViolation {
            function: "liar".into(),
            declared: Ignore,
            observed: Write,
            count: 3,
        }];
        let report = check_access_log("tracked", &violations);
        assert!(report.has_code(LintCode::AccessViolation));
        assert!(report.has_errors());
        assert!(report.diagnostics[0].message.contains("`liar`"));
        assert!(check_access_log("clean", &[]).diagnostics.is_empty());
    }
}
