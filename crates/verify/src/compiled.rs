//! Pass 4 — compiled-program equivalence (SBX011).
//!
//! The fast path executes a [`speedybox_mat::CompiledProgram`] — straight-line
//! masked word writes with incremental checksum patches — lowered from the
//! rule's [`speedybox_mat::ConsolidatedAction`]. A lowering bug would make
//! the compiled and interpreted paths disagree at runtime, so this pass runs
//! both over concrete sample packets (TCP and UDP; pre-encapsulated when the
//! rule nets out to a decap) and demands byte-identical output and identical
//! forward/drop verdicts.

use speedybox_mat::{GlobalRule, OpCounter};
use speedybox_packet::{Packet, PacketBuilder};

use crate::diag::{LintCode, Report, Span};

/// Sample packets covering both L4 protocols the lowering special-cases
/// (TCP checksums vs UDP's zero-means-none rule), with enough AH layers
/// pushed for the rule's net decaps to succeed.
fn sample_packets(rule: &GlobalRule) -> Vec<Packet> {
    let mut samples = vec![
        PacketBuilder::tcp()
            .src("192.168.7.21:4321".parse().unwrap())
            .dst("10.1.2.3:443".parse().unwrap())
            .payload(b"sbx011-probe")
            .build(),
        PacketBuilder::udp()
            .src("192.168.7.21:4321".parse().unwrap())
            .dst("10.1.2.3:53".parse().unwrap())
            .payload(b"sbx011-probe")
            .build(),
    ];
    let decaps = rule.consolidated.net_decaps();
    for pkt in &mut samples {
        for layer in 0..decaps {
            let spi = 0x5b0 + u32::try_from(layer).expect("decap depth fits u32");
            pkt.encap_ah(spi, 0).expect("sample encap");
        }
    }
    samples
}

/// Checks that `rule.compiled` and interpreting `rule.consolidated` agree
/// on every sample packet; divergences are reported as SBX011 errors.
#[must_use]
pub fn check_compiled(chain: &str, rule: &GlobalRule) -> Report {
    let mut report = Report::new(chain);
    for (i, sample) in sample_packets(rule).into_iter().enumerate() {
        let mut interpreted = sample.clone();
        let mut compiled = sample;
        let mut iops = OpCounter::default();
        let mut cops = OpCounter::default();
        let ires = rule.consolidated.apply(&mut interpreted, &mut iops);
        let cres = rule.compiled.run(&mut compiled, &mut cops);
        match (ires, cres) {
            (Ok(isurv), Ok(csurv)) if isurv != csurv => report.push(
                LintCode::CompiledDivergence,
                Span::chain(),
                format!(
                    "sample packet {i}: interpreted verdict {} but compiled verdict {}",
                    verdict(isurv),
                    verdict(csurv)
                ),
            ),
            (Ok(true), Ok(true)) if interpreted.as_bytes() != compiled.as_bytes() => report.push(
                LintCode::CompiledDivergence,
                Span::chain(),
                format!(
                    "sample packet {i}: compiled output differs from interpreted at byte {}",
                    first_diff(interpreted.as_bytes(), compiled.as_bytes())
                ),
            ),
            (Ok(_), Err(e)) => report.push(
                LintCode::CompiledDivergence,
                Span::chain(),
                format!("sample packet {i}: interpreted succeeded but compiled failed: {e}"),
            ),
            (Err(e), Ok(_)) => report.push(
                LintCode::CompiledDivergence,
                Span::chain(),
                format!("sample packet {i}: compiled succeeded but interpreted failed: {e}"),
            ),
            // Both succeeded and agreed, or both failed (same verdict on a
            // packet neither path can process).
            _ => {}
        }
    }
    report
}

fn verdict(survived: bool) -> &'static str {
    if survived {
        "forward"
    } else {
        "drop"
    }
}

fn first_diff(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).position(|(x, y)| x != y).unwrap_or_else(|| a.len().min(b.len()))
}

#[cfg(test)]
mod tests {
    use speedybox_mat::{consolidate, EncapSpec, HeaderAction};
    use speedybox_packet::HeaderField;

    use super::*;

    fn rule_of(actions: &[HeaderAction]) -> GlobalRule {
        GlobalRule::new(consolidate(actions), vec![], vec![])
    }

    #[test]
    fn sound_rules_pass() {
        for actions in [
            vec![HeaderAction::Forward],
            vec![HeaderAction::modify(HeaderField::DstIp, std::net::Ipv4Addr::new(10, 0, 0, 9))],
            vec![HeaderAction::modify(HeaderField::SrcPort, 9999u16), HeaderAction::Drop],
            vec![HeaderAction::Encap(EncapSpec::new(7))],
            vec![HeaderAction::Decap(EncapSpec::new(7))],
        ] {
            let report = check_compiled("t", &rule_of(&actions));
            assert!(report.diagnostics.is_empty(), "{:?}\n{}", actions, report.render_text());
        }
    }

    #[test]
    fn corrupted_program_is_flagged() {
        let mut rule = rule_of(&[HeaderAction::modify(HeaderField::DstPort, 8080u16)]);
        // Sabotage the compiled side: swap in the program for a different
        // consolidated action.
        rule.compiled = speedybox_mat::compile(&consolidate(&[HeaderAction::modify(
            HeaderField::DstPort,
            9999u16,
        )]));
        let report = check_compiled("t", &rule);
        assert!(report.has_code(LintCode::CompiledDivergence), "{}", report.render_text());
        assert!(report.has_errors());
    }

    #[test]
    fn verdict_divergence_is_flagged() {
        let mut rule = rule_of(&[HeaderAction::Drop]);
        rule.compiled = speedybox_mat::CompiledProgram::default();
        let report = check_compiled("t", &rule);
        assert!(report.has_code(LintCode::CompiledDivergence), "{}", report.render_text());
    }
}
