//! `speedybox-verify`: static chain verifier and lint passes.
//!
//! SpeedyBox's fast path executes a *derived* artifact — the consolidated
//! Global-MAT rule — instead of the NFs themselves, so a consolidation bug,
//! an unsound Event-Table rewrite or a lying `PayloadAccess` declaration
//! silently changes packet processing. This crate proves the derivations
//! sound before (and, for access declarations, while) traffic flows:
//!
//! * **Pass 1 — consolidation soundness** ([`symbolic`]): a symbolic
//!   abstract interpreter applies the chain's recorded header actions
//!   sequentially and proves `consolidate()`'s one-shot output equivalent,
//!   flagging dead actions after a drop, unbalanced or mismatched
//!   encap/decap, conflicting modifies and early trailing-field writes.
//! * **Pass 2 — event-rewrite safety** ([`events`]): every Event Table
//!   `(condition, update)` pair is checked by splicing the update's patch
//!   into the chain and re-running pass 1 (and the schedule check), before
//!   any condition ever fires.
//! * **Pass 3 — schedule safety** ([`schedule`]): the precomputed wavefront
//!   schedule is validated against the paper's Table I conflict matrix and
//!   must be an order-preserving partition; the debug-build payload-access
//!   tracker's findings are rendered as diagnostics.
//! * **Pass 4 — compiled equivalence** ([`compiled`]): the rule's compiled
//!   micro-op program is executed next to the interpreted consolidated
//!   action on concrete sample packets and must match byte-for-byte
//!   (SBX011).
//! * **Pass 5 — micro-op bounds proof** ([`bounds`]): every compiled write
//!   window is proven in-frame by exhaustive enumeration of the admissible
//!   header geometries — VLAN tagging, IPv4/TCP options, AH depth, minimal
//!   payloads (SBX012).
//! * **Pass 6 — recovery-snapshot coverage** ([`snapshots`]): every NF
//!   that declares per-flow state must produce a state snapshot, or crash
//!   recovery silently loses its history (SBX013).
//!
//! Findings carry stable `SBX0xx` codes ([`diag::LintCode`]) with fixed
//! severities; `speedybox lint <chain>` renders them as text or JSON and
//! `speedybox run --verify` refuses chains with Error findings. See
//! DESIGN.md §7 for the full lint-code table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod compiled;
pub mod diag;
pub mod events;
pub mod schedule;
pub mod snapshots;
pub mod symbolic;

pub use bounds::{check_bounds, check_program_bounds};
pub use compiled::check_compiled;
pub use diag::{Diagnostic, LintCode, Report, Severity, Span};
pub use events::{check_event_rewrites, EventSpec};
pub use schedule::{check_access_log, check_rule_schedule, check_schedule};
pub use snapshots::{check_snapshots, NfStateSpec};
pub use symbolic::{check_consolidation, interpret, NfActions, SymbolicState};

/// Runs every applicable pass over one flow's recorded rule: pass 1 on the
/// per-NF actions, pass 2 on the registered events, pass 3 on the
/// installed rule's schedule. The pieces are also callable individually.
#[must_use]
pub fn verify_flow(
    chain: &str,
    nfs: &[NfActions],
    events: &[EventSpec],
    rule: Option<&speedybox_mat::GlobalRule>,
) -> Report {
    let mut report = check_consolidation(chain, nfs);
    let accesses: Vec<(usize, speedybox_mat::PayloadAccess)> = rule
        .map(|r| r.batches.iter().map(|b| (b.nf.index(), b.access())).collect())
        .unwrap_or_default();
    report.merge(check_event_rewrites(chain, nfs, &accesses, events));
    if let Some(rule) = rule {
        report.merge(check_rule_schedule(chain, rule));
        report.merge(check_compiled(chain, rule));
        report.merge(check_bounds(chain, rule));
    }
    report
}

#[cfg(test)]
mod tests {
    use speedybox_mat::{consolidate, HeaderAction};
    use speedybox_packet::HeaderField;

    use super::*;

    #[test]
    fn verify_flow_composes_all_passes() {
        let nfs = [
            NfActions::new("fw", vec![HeaderAction::Drop]),
            NfActions::new("nat", vec![HeaderAction::modify(HeaderField::DstPort, 80u16)]),
        ];
        let flat: Vec<HeaderAction> =
            nfs.iter().flat_map(|nf| nf.actions.iter().cloned()).collect();
        let rule = speedybox_mat::GlobalRule::new(consolidate(&flat), vec![], vec![]);
        let report = verify_flow("composite", &nfs, &[], Some(&rule));
        assert!(report.has_code(LintCode::DeadActionAfterDrop));
        assert!(report.has_errors());
    }

    #[test]
    fn clean_flow_produces_empty_report() {
        let nfs = [NfActions::new("nat", vec![HeaderAction::modify(HeaderField::DstPort, 80u16)])];
        let flat: Vec<HeaderAction> =
            nfs.iter().flat_map(|nf| nf.actions.iter().cloned()).collect();
        let rule = speedybox_mat::GlobalRule::new(consolidate(&flat), vec![], vec![]);
        let report = verify_flow("clean", &nfs, &[], Some(&rule));
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }
}
