//! Pass 1: consolidation soundness by abstract interpretation.
//!
//! The chain's recorded header actions are interpreted sequentially over a
//! symbolic packet header — each field is either *original* (absent from
//! the map) or a known constant; encap/decap run against a symbolic header
//! stack. The final symbolic state is the ground truth of what the original
//! chain does to the header; [`check_consolidation`] then proves that
//! [`consolidate`]'s one-shot [`ConsolidatedAction`] produces the same
//! state, and flags the chain-structure smells discovered along the way
//! (dead actions after a drop, unbalanced or mismatched encap/decap,
//! conflicting modifies, early trailing-field writes).

use std::collections::BTreeMap;

use speedybox_mat::action::{EncapSpec, HeaderAction};
use speedybox_mat::consolidate::consolidate;
use speedybox_packet::{FieldValue, HeaderField};

use crate::diag::{LintCode, Report, Span};

/// One NF's contribution to the chain under verification: its diagnostic
/// name and the header actions it recorded, in order.
#[derive(Debug, Clone, Default)]
pub struct NfActions {
    /// Diagnostic name ("snort", "maglev", ...).
    pub name: String,
    /// Recorded header actions, in recording order.
    pub actions: Vec<HeaderAction>,
}

impl NfActions {
    /// Builds one NF's action list.
    #[must_use]
    pub fn new(name: impl Into<String>, actions: Vec<HeaderAction>) -> Self {
        NfActions { name: name.into(), actions }
    }
}

/// The symbolic header state after sequentially interpreting a chain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolicState {
    /// Final constant value per written field; unwritten fields keep their
    /// arrival value and are absent.
    pub fields: BTreeMap<HeaderField, FieldValue>,
    /// Headers popped that arrived on the packet (decap underflows).
    pub arrival_decaps: usize,
    /// In-chain encapsulations still on the stack at chain end,
    /// bottom-to-top.
    pub pushed: Vec<EncapSpec>,
    /// True once a drop action executed.
    pub dropped: bool,
}

/// Sequentially interprets `nfs`' actions, appending structural findings
/// (SBX001–SBX005) to `report`, and returns the final symbolic state.
pub fn interpret(nfs: &[NfActions], report: &mut Report) -> SymbolicState {
    let mut state = SymbolicState::default();
    // Last writer per field, for SBX004 attribution.
    let mut last_writer: BTreeMap<HeaderField, (usize, FieldValue)> = BTreeMap::new();
    // Earliest trailing-field write not yet followed by primary surgery.
    let mut pending_trailing: Vec<(usize, usize, HeaderField)> = Vec::new();

    for (nf_idx, nf) in nfs.iter().enumerate() {
        for (act_idx, action) in nf.actions.iter().enumerate() {
            let span = || Span::nf(nf_idx, &nf.name).action(act_idx);
            if state.dropped {
                if !action.is_forward() {
                    report.push(
                        LintCode::DeadActionAfterDrop,
                        span(),
                        format!(
                            "`{action}` is dead: an earlier drop already discards the packet, \
                             so this action can never have been recorded from the original path"
                        ),
                    );
                }
                continue;
            }
            match action {
                HeaderAction::Forward => {}
                HeaderAction::Drop => state.dropped = true,
                HeaderAction::Modify(writes) => {
                    for (field, value) in writes {
                        if let Some((prev_nf, prev_value)) = last_writer.get(field) {
                            if *prev_nf != nf_idx && prev_value != value {
                                report.push(
                                    LintCode::ConflictingModify,
                                    span(),
                                    format!(
                                        "{field} is written to {value} here but nf{prev_nf} \
                                         ({}) already wrote {prev_value}; the earlier write is \
                                         dead (latter wins)",
                                        nfs[*prev_nf].name
                                    ),
                                );
                            }
                        }
                        last_writer.insert(*field, (nf_idx, *value));
                        state.fields.insert(*field, *value);
                        if field.is_trailing() {
                            pending_trailing.push((nf_idx, act_idx, *field));
                        } else {
                            drain_trailing(nfs, &mut pending_trailing, report, &field.to_string());
                        }
                    }
                }
                HeaderAction::Encap(spec) => {
                    state.pushed.push(*spec);
                    drain_trailing(nfs, &mut pending_trailing, report, &format!("encap({spec})"));
                }
                HeaderAction::Decap(spec) => {
                    match state.pushed.pop() {
                        Some(top) if top.spi != spec.spi => {
                            report.push(
                                LintCode::DecapSpecMismatch,
                                span(),
                                format!(
                                    "decap names {spec} but pops the in-chain encapsulation \
                                     {top}; the egress strips a header from a different tunnel"
                                ),
                            );
                        }
                        Some(_) => {}
                        None => {
                            state.arrival_decaps += 1;
                            report.push(
                                LintCode::DecapUnderflow,
                                span(),
                                format!(
                                    "decap({spec}) has no matching in-chain encap; sound only \
                                     if every packet of the flow arrives encapsulated"
                                ),
                            );
                        }
                    }
                    drain_trailing(nfs, &mut pending_trailing, report, &format!("decap({spec})"));
                }
            }
        }
    }
    state
}

/// Flushes pending trailing-field writes as SBX005 once primary surgery
/// follows them.
fn drain_trailing(
    nfs: &[NfActions],
    pending: &mut Vec<(usize, usize, HeaderField)>,
    report: &mut Report,
    follower: &str,
) {
    for (nf_idx, act_idx, field) in pending.drain(..) {
        report.push(
            LintCode::EarlyTrailingWrite,
            Span::nf(nf_idx, &nfs[nf_idx].name).action(act_idx),
            format!(
                "trailing field {field} is written before later header surgery ({follower}); \
                 consolidation defers trailing fixes to the end of the one-shot apply"
            ),
        );
    }
}

/// Pass 1 entry point: interprets `nfs` symbolically and proves the
/// consolidated action equivalent, reporting SBX001–SBX006.
#[must_use]
pub fn check_consolidation(chain: &str, nfs: &[NfActions]) -> Report {
    let mut report = Report::new(chain);
    let state = interpret(nfs, &mut report);

    let flat: Vec<HeaderAction> = nfs.iter().flat_map(|nf| nf.actions.iter().cloned()).collect();
    let consolidated = consolidate(&flat);

    if consolidated.is_drop() != state.dropped {
        report.push(
            LintCode::ConsolidationMismatch,
            Span::chain(),
            format!(
                "sequential interpretation says dropped={}, consolidate() says dropped={}",
                state.dropped,
                consolidated.is_drop()
            ),
        );
        return report;
    }
    if state.dropped {
        // A dropped packet has no residual header effects to compare; the
        // consolidation algorithm guarantees drop short-circuits cleanly
        // (locked in by its own unit tests).
        return report;
    }

    let merged: BTreeMap<HeaderField, FieldValue> =
        consolidated.modifies().iter().copied().collect();
    if merged != state.fields {
        report.push(
            LintCode::ConsolidationMismatch,
            Span::chain(),
            format!(
                "merged field writes diverge: sequential {:?} vs consolidated {:?}",
                state.fields, merged
            ),
        );
    }
    if consolidated.net_decaps() != state.arrival_decaps {
        report.push(
            LintCode::ConsolidationMismatch,
            Span::chain(),
            format!(
                "arrival decap count diverges: sequential {} vs consolidated {}",
                state.arrival_decaps,
                consolidated.net_decaps()
            ),
        );
    }
    if consolidated.net_encaps() != state.pushed.as_slice() {
        report.push(
            LintCode::ConsolidationMismatch,
            Span::chain(),
            format!(
                "residual encapsulations diverge: sequential {:?} vs consolidated {:?}",
                state.pushed,
                consolidated.net_encaps()
            ),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use super::*;

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, a)
    }

    #[test]
    fn clean_chain_verifies() {
        let nfs = [
            NfActions::new("nat", vec![HeaderAction::modify(HeaderField::SrcIp, ip(1))]),
            NfActions::new("lb", vec![HeaderAction::modify(HeaderField::DstIp, ip(2))]),
            NfActions::new("fw", vec![HeaderAction::Forward]),
        ];
        let report = check_consolidation("clean", &nfs);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn drop_then_modify_is_dead_action() {
        let nfs = [
            NfActions::new("fw", vec![HeaderAction::Drop]),
            NfActions::new("nat", vec![HeaderAction::modify(HeaderField::DstIp, ip(1))]),
        ];
        let report = check_consolidation("bad", &nfs);
        assert!(report.has_code(LintCode::DeadActionAfterDrop));
        assert!(report.has_errors());
        // The dead action points at the right NF.
        let d = &report.diagnostics[0];
        assert_eq!(d.span.nf, Some(1));
        assert_eq!(d.span.nf_name.as_deref(), Some("nat"));
    }

    #[test]
    fn dead_forward_is_not_reported() {
        let nfs = [
            NfActions::new("fw", vec![HeaderAction::Drop]),
            NfActions::new("mon", vec![HeaderAction::Forward]),
        ];
        let report = check_consolidation("drop-fwd", &nfs);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn balanced_tunnel_verifies() {
        let nfs = [
            NfActions::new("vpn-in", vec![HeaderAction::Encap(EncapSpec::new(0x1001))]),
            NfActions::new("mon", vec![HeaderAction::Forward]),
            NfActions::new("vpn-out", vec![HeaderAction::Decap(EncapSpec::new(0x1001))]),
        ];
        let report = check_consolidation("tunnel", &nfs);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn mismatched_tunnel_spi_is_an_error() {
        let nfs = [
            NfActions::new("vpn-in", vec![HeaderAction::Encap(EncapSpec::new(1))]),
            NfActions::new("vpn-out", vec![HeaderAction::Decap(EncapSpec::new(2))]),
        ];
        let report = check_consolidation("mismatch", &nfs);
        assert!(report.has_code(LintCode::DecapSpecMismatch));
        assert!(report.has_errors());
    }

    #[test]
    fn arrival_decap_warns_but_is_not_an_error() {
        let nfs = [NfActions::new("vpn-out", vec![HeaderAction::Decap(EncapSpec::new(7))])];
        let report = check_consolidation("egress-only", &nfs);
        assert!(report.has_code(LintCode::DecapUnderflow));
        assert!(!report.has_errors());
    }

    #[test]
    fn cross_nf_conflicting_modify_warns() {
        let nfs = [
            NfActions::new("a", vec![HeaderAction::modify(HeaderField::DstIp, ip(1))]),
            NfActions::new("b", vec![HeaderAction::modify(HeaderField::DstIp, ip(2))]),
        ];
        let report = check_consolidation("conflict", &nfs);
        assert!(report.has_code(LintCode::ConflictingModify));
        assert!(!report.has_errors());
    }

    #[test]
    fn same_nf_rewrite_is_not_a_conflict() {
        let nfs = [NfActions::new(
            "nat",
            vec![
                HeaderAction::modify(HeaderField::DstIp, ip(1)),
                HeaderAction::modify(HeaderField::DstIp, ip(2)),
            ],
        )];
        let report = check_consolidation("self", &nfs);
        assert!(!report.has_code(LintCode::ConflictingModify), "{}", report.render_text());
    }

    #[test]
    fn early_trailing_write_warns() {
        let nfs = [
            NfActions::new("shaper", vec![HeaderAction::modify(HeaderField::Ttl, 9u8)]),
            NfActions::new("nat", vec![HeaderAction::modify(HeaderField::DstIp, ip(1))]),
        ];
        let report = check_consolidation("ttl-first", &nfs);
        assert!(report.has_code(LintCode::EarlyTrailingWrite));
        assert!(!report.has_errors());
    }

    #[test]
    fn trailing_write_at_end_is_fine() {
        let nfs = [
            NfActions::new("nat", vec![HeaderAction::modify(HeaderField::DstIp, ip(1))]),
            NfActions::new("shaper", vec![HeaderAction::modify(HeaderField::Ttl, 9u8)]),
        ];
        let report = check_consolidation("ttl-last", &nfs);
        assert!(!report.has_code(LintCode::EarlyTrailingWrite), "{}", report.render_text());
    }

    #[test]
    fn symbolic_state_tracks_net_effects() {
        let mut report = Report::new("t");
        let nfs = [
            NfActions::new("a", vec![HeaderAction::Encap(EncapSpec::new(1))]),
            NfActions::new("b", vec![HeaderAction::Decap(EncapSpec::new(1))]),
            NfActions::new("c", vec![HeaderAction::Decap(EncapSpec::new(2))]),
            NfActions::new("d", vec![HeaderAction::Encap(EncapSpec::new(3))]),
        ];
        let state = interpret(&nfs, &mut report);
        assert_eq!(state.arrival_decaps, 1);
        assert_eq!(state.pushed, vec![EncapSpec::new(3)]);
        assert!(!state.dropped);
    }
}
