//! Pass 6 — recovery-snapshot coverage (SBX013).
//!
//! The crash-recovery protocol restores every NF from its last
//! `Nf::snapshot_state` capture and replays the bounded in-flight log. An
//! NF that *declares* per-flow state (`Nf::has_flow_state` → `true`) but
//! produces no snapshot breaks that contract silently: after a kill its
//! state restarts empty, the replay reconstructs only what the log holds,
//! and everything older is gone — a loss the differential oracle can only
//! catch once a crash actually happens. This pass surfaces the gap
//! statically, before any fault-injection run.
//!
//! The check is deliberately declaration-driven and decoupled from the
//! `Nf` trait object: the lint driver reduces each chain member to an
//! [`NfStateSpec`] triple, so the pass also covers externally-defined NFs
//! without this crate depending on the NF crate.

use crate::diag::{LintCode, Report, Span};

/// What the snapshot-coverage pass needs to know about one chain member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NfStateSpec {
    /// Diagnostic name of the NF.
    pub name: String,
    /// The NF's own declaration that it keeps per-flow state a crash
    /// would lose (`Nf::has_flow_state`).
    pub has_flow_state: bool,
    /// Whether the NF actually produces a capture (`Nf::snapshot_state`
    /// returned `Some` on a live instance).
    pub has_snapshot: bool,
}

impl NfStateSpec {
    /// Builds a spec from plain parts.
    pub fn new(name: impl Into<String>, has_flow_state: bool, has_snapshot: bool) -> Self {
        Self { name: name.into(), has_flow_state, has_snapshot }
    }
}

/// Flags every NF whose state declaration and snapshot support disagree
/// (SBX013, Warn): stateful-but-unsnapshottable means unrecoverable state
/// after a crash. The chain still runs correctly fault-free, hence Warn
/// rather than Error.
#[must_use]
pub fn check_snapshots(chain: &str, nfs: &[NfStateSpec]) -> Report {
    let mut report = Report::new(chain);
    for (i, spec) in nfs.iter().enumerate() {
        if spec.has_flow_state && !spec.has_snapshot {
            report.push(
                LintCode::SnapshotMissing,
                Span::nf(i, &spec.name),
                format!(
                    "`{}` declares per-flow state (`has_flow_state`) but produces no \
                     snapshot: its state cannot be restored after a crash, so recovery \
                     silently loses everything older than the in-flight log",
                    spec.name
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    #[test]
    fn stateful_without_snapshot_is_flagged() {
        let nfs = [
            NfStateSpec::new("filter", false, false),
            NfStateSpec::new("nat", true, false),
            NfStateSpec::new("monitor", true, true),
        ];
        let report = check_snapshots("test", &nfs);
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, LintCode::SnapshotMissing);
        assert_eq!(d.severity, Severity::Warn);
        assert_eq!(d.span.nf, Some(1));
        assert_eq!(d.span.nf_name.as_deref(), Some("nat"));
        assert!(!report.has_errors(), "SBX013 is a warning, not an error");
    }

    #[test]
    fn covered_and_stateless_nfs_are_clean() {
        let nfs = [
            NfStateSpec::new("filter", false, false),
            NfStateSpec::new("monitor", true, true),
            // Snapshot without the declaration is fine too: the capture is
            // simply restored on recovery like any other.
            NfStateSpec::new("vpn", false, true),
        ];
        let report = check_snapshots("test", &nfs);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }
}
