//! The diagnostics framework: stable lint codes, severities, spans and
//! rendered reports.
//!
//! Every finding the verifier can produce has a stable `SBX0xx` code so
//! tooling (CI gates, golden tests, editors) can match on it without
//! parsing prose. Codes are never reused or renumbered; retired codes are
//! retired forever.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — no action needed.
    Info,
    /// Suspicious but not provably wrong; the chain still runs correctly.
    Warn,
    /// Provably unsound: the fast path would diverge from the original
    /// chain (or crash). `speedybox run --verify` refuses these chains.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warn => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// The stable lint-code table (see DESIGN.md §7 for the narrative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// SBX001: a non-forward header action recorded after a drop. NFs
    /// downstream of a drop never see the packet on the original path, so
    /// such a rule cannot arise from honest recording.
    DeadActionAfterDrop,
    /// SBX002: a decap pops an in-chain encap whose SPI differs from the
    /// one the decap names — the tunnel egress is stripping a header that
    /// belongs to a different security association.
    DecapSpecMismatch,
    /// SBX003: a decap with no matching in-chain encap. Sound only if every
    /// packet of the flow arrives already encapsulated; otherwise the fast
    /// path errors at runtime.
    DecapUnderflow,
    /// SBX004: two NFs write the same header field with different values;
    /// the earlier write is dead (latter wins under consolidation, same as
    /// sequentially).
    ConflictingModify,
    /// SBX005: a trailing field (TTL/ToS/MAC) is written before further
    /// header surgery. Consolidation defers trailing fixes to the end;
    /// flagged so a dependence of later actions on the trailing value is
    /// visible.
    EarlyTrailingWrite,
    /// SBX006: the symbolic sequential interpretation of the chain's
    /// actions disagrees with `consolidate()`'s output — a consolidation
    /// soundness bug.
    ConsolidationMismatch,
    /// SBX007: an Event Table rewrite would install a rule that fails the
    /// consolidation-soundness pass.
    EventRewriteUnsound,
    /// SBX008: a schedule wave holds a batch pair Table I forbids
    /// (WRITE x WRITE, or WRITE ordered against a READ).
    ScheduleConflict,
    /// SBX009: the schedule is not an order-preserving partition of the
    /// batch list (an index is missing, duplicated, or out of order).
    ScheduleOrder,
    /// SBX010: the runtime payload-access tracker observed a state function
    /// writing the payload despite declaring Read or Ignore.
    AccessViolation,
    /// SBX011: the compiled micro-op program for a rule produces different
    /// bytes (or a different drop verdict) than interpreting the rule's
    /// consolidated action — a rule-compilation soundness bug.
    CompiledDivergence,
    /// SBX012: a compiled micro-op's write window can escape the frame on
    /// some admissible header geometry (VLAN tag, IPv4 options, L4 header
    /// length, AH depth) — proven by exhaustive enumeration of the
    /// geometry domain, not by sampling.
    MicroOpOutOfBounds,
    /// SBX013: an NF declares per-flow state (`has_flow_state`) but
    /// produces no snapshot, so crash recovery cannot restore it — every
    /// packet older than the in-flight log is silently lost on a kill.
    SnapshotMissing,
}

impl LintCode {
    /// Every code, in numeric order.
    pub const ALL: [LintCode; 13] = [
        LintCode::DeadActionAfterDrop,
        LintCode::DecapSpecMismatch,
        LintCode::DecapUnderflow,
        LintCode::ConflictingModify,
        LintCode::EarlyTrailingWrite,
        LintCode::ConsolidationMismatch,
        LintCode::EventRewriteUnsound,
        LintCode::ScheduleConflict,
        LintCode::ScheduleOrder,
        LintCode::AccessViolation,
        LintCode::CompiledDivergence,
        LintCode::MicroOpOutOfBounds,
        LintCode::SnapshotMissing,
    ];

    /// The stable code string (`SBX001`...).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintCode::DeadActionAfterDrop => "SBX001",
            LintCode::DecapSpecMismatch => "SBX002",
            LintCode::DecapUnderflow => "SBX003",
            LintCode::ConflictingModify => "SBX004",
            LintCode::EarlyTrailingWrite => "SBX005",
            LintCode::ConsolidationMismatch => "SBX006",
            LintCode::EventRewriteUnsound => "SBX007",
            LintCode::ScheduleConflict => "SBX008",
            LintCode::ScheduleOrder => "SBX009",
            LintCode::AccessViolation => "SBX010",
            LintCode::CompiledDivergence => "SBX011",
            LintCode::MicroOpOutOfBounds => "SBX012",
            LintCode::SnapshotMissing => "SBX013",
        }
    }

    /// Short kebab-case name for human-facing listings.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintCode::DeadActionAfterDrop => "dead-action-after-drop",
            LintCode::DecapSpecMismatch => "decap-spec-mismatch",
            LintCode::DecapUnderflow => "decap-underflow",
            LintCode::ConflictingModify => "conflicting-modify",
            LintCode::EarlyTrailingWrite => "early-trailing-write",
            LintCode::ConsolidationMismatch => "consolidation-mismatch",
            LintCode::EventRewriteUnsound => "event-rewrite-unsound",
            LintCode::ScheduleConflict => "schedule-conflict",
            LintCode::ScheduleOrder => "schedule-order",
            LintCode::AccessViolation => "access-violation",
            LintCode::CompiledDivergence => "compiled-divergence",
            LintCode::MicroOpOutOfBounds => "microop-out-of-bounds",
            LintCode::SnapshotMissing => "snapshot-missing",
        }
    }

    /// The code's fixed severity.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            LintCode::DeadActionAfterDrop
            | LintCode::DecapSpecMismatch
            | LintCode::ConsolidationMismatch
            | LintCode::EventRewriteUnsound
            | LintCode::ScheduleConflict
            | LintCode::ScheduleOrder
            | LintCode::AccessViolation
            | LintCode::CompiledDivergence
            | LintCode::MicroOpOutOfBounds => Severity::Error,
            LintCode::DecapUnderflow
            | LintCode::ConflictingModify
            | LintCode::EarlyTrailingWrite
            | LintCode::SnapshotMissing => Severity::Warn,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Where in the chain a finding points: which NF (by chain position and
/// name) and which of its recorded actions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Chain position of the NF (0-based), if the finding is NF-specific.
    pub nf: Option<usize>,
    /// Diagnostic name of that NF.
    pub nf_name: Option<String>,
    /// Index into that NF's recorded action list, if action-specific.
    pub action: Option<usize>,
}

impl Span {
    /// A chain-level span (no specific NF).
    #[must_use]
    pub fn chain() -> Self {
        Span::default()
    }

    /// A span pointing at one NF.
    #[must_use]
    pub fn nf(index: usize, name: impl Into<String>) -> Self {
        Span { nf: Some(index), nf_name: Some(name.into()), action: None }
    }

    /// Narrows the span to one action of the NF.
    #[must_use]
    pub fn action(mut self, index: usize) -> Self {
        self.action = Some(index);
        self
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.nf, &self.nf_name) {
            (Some(i), Some(name)) => write!(f, "nf{i} ({name})")?,
            (Some(i), None) => write!(f, "nf{i}")?,
            _ => f.write_str("chain")?,
        }
        if let Some(a) = self.action {
            write!(f, " action {a}")?;
        }
        Ok(())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: LintCode,
    /// Severity (the code's fixed severity).
    pub severity: Severity,
    /// Where the finding points.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a finding; severity comes from the code.
    #[must_use]
    pub fn new(code: LintCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { code, severity: code.severity(), span, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}\n  --> {}", self.severity, self.code, self.message, self.span)
    }
}

/// All findings for one verified chain.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Name of the verified chain.
    pub chain: String,
    /// Findings in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `chain`.
    #[must_use]
    pub fn new(chain: impl Into<String>) -> Self {
        Report { chain: chain.into(), diagnostics: Vec::new() }
    }

    /// Appends a finding.
    pub fn push(&mut self, code: LintCode, span: Span, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic::new(code, span, message));
    }

    /// Absorbs another report's findings (the chain name stays ours).
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// True if any finding is [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-level findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-level findings.
    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn).count()
    }

    /// True if any finding carries `code`.
    #[must_use]
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// All distinct codes present, in numeric order.
    #[must_use]
    pub fn codes(&self) -> Vec<LintCode> {
        LintCode::ALL.into_iter().filter(|c| self.has_code(*c)).collect()
    }

    /// Renders the report the way `speedybox lint` prints it.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}: {d}", self.chain);
        }
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s)",
            self.chain,
            self.error_count(),
            self.warn_count()
        );
        out
    }

    /// Renders the report as a JSON object (stable shape; no external
    /// dependencies, so the escaping is done by hand).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{{\"chain\":{},\"diagnostics\":[", json_str(&self.chain));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":{},\"name\":{},\"severity\":{},\"message\":{}",
                json_str(d.code.code()),
                json_str(d.code.name()),
                json_str(&d.severity.to_string()),
                json_str(&d.message)
            );
            if let Some(nf) = d.span.nf {
                let _ = write!(out, ",\"nf\":{nf}");
            }
            if let Some(name) = &d.span.nf_name {
                let _ = write!(out, ",\"nf_name\":{}", json_str(name));
            }
            if let Some(a) = d.span.action {
                let _ = write!(out, ",\"action\":{a}");
            }
            out.push('}');
        }
        let _ =
            write!(out, "],\"errors\":{},\"warnings\":{}}}", self.error_count(), self.warn_count());
        out
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(
            codes,
            vec![
                "SBX001", "SBX002", "SBX003", "SBX004", "SBX005", "SBX006", "SBX007", "SBX008",
                "SBX009", "SBX010", "SBX011", "SBX012", "SBX013"
            ]
        );
        let names: std::collections::HashSet<&str> =
            LintCode::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), LintCode::ALL.len());
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = Report::new("test");
        r.push(LintCode::DeadActionAfterDrop, Span::nf(1, "fw"), "dead");
        r.push(LintCode::ConflictingModify, Span::chain(), "conflict");
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(r.has_code(LintCode::DeadActionAfterDrop));
        assert!(!r.has_code(LintCode::ScheduleOrder));
        assert_eq!(r.codes(), vec![LintCode::DeadActionAfterDrop, LintCode::ConflictingModify]);
    }

    #[test]
    fn merge_absorbs_findings() {
        let mut a = Report::new("a");
        a.push(LintCode::ScheduleOrder, Span::chain(), "x");
        let mut b = Report::new("b");
        b.push(LintCode::ScheduleConflict, Span::chain(), "y");
        a.merge(b);
        assert_eq!(a.diagnostics.len(), 2);
        assert_eq!(a.chain, "a");
    }

    #[test]
    fn text_rendering_names_position() {
        let mut r = Report::new("chain1");
        r.push(LintCode::DeadActionAfterDrop, Span::nf(2, "monitor").action(0), "dead action");
        let text = r.render_text();
        assert!(text.contains("error[SBX001]"), "{text}");
        assert!(text.contains("nf2 (monitor) action 0"), "{text}");
        assert!(text.contains("1 error(s), 0 warning(s)"), "{text}");
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let mut r = Report::new("c\"x");
        r.push(LintCode::AccessViolation, Span::nf(0, "snort"), "wrote \"payload\"\n");
        let json = r.to_json();
        assert!(json.contains("\"chain\":\"c\\\"x\""), "{json}");
        assert!(json.contains("\"code\":\"SBX010\""), "{json}");
        assert!(json.contains("\\\"payload\\\"\\n"), "{json}");
        assert!(json.contains("\"errors\":1"), "{json}");
        assert!(json.contains("\"nf\":0"), "{json}");
    }

    #[test]
    fn severity_comes_from_code() {
        let d = Diagnostic::new(LintCode::DecapUnderflow, Span::chain(), "m");
        assert_eq!(d.severity, Severity::Warn);
        assert_eq!(LintCode::ConsolidationMismatch.severity(), Severity::Error);
    }
}
