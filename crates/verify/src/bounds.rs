//! Pass 5 — micro-op bounds proof (SBX012).
//!
//! A [`MicroOp::WriteWord`] rewrites an 8-byte window at an anchor-relative
//! offset resolved per packet, so whether the window stays inside the frame
//! depends on the packet's header geometry: VLAN tag or not, IPv4 options,
//! TCP options, how many AH layers arrived, and how short the payload is.
//! SBX011 samples two concrete packets; a window that escapes only on, say,
//! a minimal UDP frame behind a VLAN tag would slip through sampling.
//!
//! This pass instead *enumerates the whole admissible geometry domain* —
//! every combination the packet substrate can parse:
//!
//! * VLAN tag: absent or one 802.1Q tag (4 bytes),
//! * IPv4 header: 20..=60 bytes in 4-byte option steps,
//! * L4 header: UDP (8 bytes) or TCP with 20..=60-byte header,
//! * arrival AH depth: 0..=[`MAX_AH_DEPTH`] layers,
//! * payload: zero bytes (the worst case — a window in bounds on the empty
//!   payload is in bounds on every longer frame),
//!
//! and symbolically executes the program over each geometry, mirroring
//! [`CompiledProgram::run`]'s semantics exactly: encaps/decaps move the L4
//! anchor and frame end, `Drop` and a failing decap halt the program, and
//! the anchor table is frozen at the first `WriteWord` (as `run` caches
//! [`Packet::layout`](speedybox_packet::Packet::layout)). Any window that
//! can cross the frame end on any geometry is an SBX012 error naming the
//! op, the window, and the offending geometry. The domain is finite (2 x
//! 11 x 12 x 6 = 1584 geometries), so a clean report is an exhaustive
//! proof, not a statistical claim.

use std::fmt;

use speedybox_mat::{CompiledProgram, GlobalRule, MicroOp};
use speedybox_packet::headers::{AH_LEN, ETHERNET_LEN};

use crate::diag::{LintCode, Report, Span};

/// Deepest AH nesting the proof considers. Matches the headroom budget:
/// [`speedybox_packet::HEADROOM`] (128 bytes) admits five 24-byte layers.
pub const MAX_AH_DEPTH: usize = 5;

/// One point of the header-geometry domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Bytes of 802.1Q tagging after the Ethernet header (0 or 4).
    pub vlan: usize,
    /// IPv4 header length including options (20..=60, step 4).
    pub ip_hdr: usize,
    /// Innermost L4 header length (UDP 8, or TCP 20..=60 step 4).
    pub l4_hdr: usize,
    /// AH layers present when the packet arrives.
    pub ah_depth: usize,
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vlan={} ip_hdr={} l4_hdr={} ah_depth={}",
            self.vlan, self.ip_hdr, self.l4_hdr, self.ah_depth
        )
    }
}

/// Every admissible geometry, worst-case (zero-payload) frames only.
fn geometries() -> impl Iterator<Item = Geometry> {
    [0usize, 4].into_iter().flat_map(|vlan| {
        (20..=60).step_by(4).flat_map(move |ip_hdr| {
            std::iter::once(8).chain((20..=60).step_by(4)).flat_map(move |l4_hdr| {
                (0..=MAX_AH_DEPTH).map(move |ah_depth| Geometry { vlan, ip_hdr, l4_hdr, ah_depth })
            })
        })
    })
}

/// Symbolically executes `program` over one geometry; returns the first
/// out-of-bounds window as `(op index, window end, frame len)`.
fn check_geometry(program: &CompiledProgram, g: Geometry) -> Option<(usize, usize, usize)> {
    let l3 = ETHERNET_LEN + g.vlan;
    let mut depth = g.ah_depth;
    // `run` resolves the anchor table once, at the first WriteWord; an
    // encap/decap after that point moves bytes but not the cached anchors,
    // and the proof must judge the program `run` actually executes.
    let mut frozen: Option<(usize, usize)> = None; // (l3, l4) at first write
    for (i, op) in program.ops().iter().enumerate() {
        match op {
            MicroOp::Drop => return None,
            MicroOp::PopDecap => {
                if depth == 0 {
                    // decap_ah errors and run() propagates it before any
                    // later op executes: no write can go out of bounds.
                    return None;
                }
                depth -= 1;
            }
            MicroOp::PushEncap { .. } => depth += 1,
            MicroOp::WriteWord { anchor, offset, .. } => {
                let (l3a, l4a) = *frozen.get_or_insert((l3, l3 + g.ip_hdr + depth * AH_LEN));
                let base = match anchor {
                    speedybox_mat::Anchor::Frame => 0,
                    speedybox_mat::Anchor::L3 => l3a,
                    speedybox_mat::Anchor::L4 => l4a,
                };
                let end = base + offset + 8;
                let frame_len = l3 + g.ip_hdr + depth * AH_LEN + g.l4_hdr;
                if end > frame_len {
                    return Some((i, end, frame_len));
                }
            }
            // Checksum fields sit inside the (parsed) IPv4 and L4 headers,
            // which every admissible geometry contains in full.
            MicroOp::AdjustTrailing { .. } => {}
        }
    }
    None
}

/// Proves every write window of `program` in-bounds over the whole
/// geometry domain. Each offending op is reported once, with the first
/// geometry that breaks it.
#[must_use]
pub fn check_program_bounds(chain: &str, program: &CompiledProgram) -> Report {
    let mut report = Report::new(chain);
    let mut flagged: Vec<usize> = Vec::new();
    for g in geometries() {
        if let Some((op, end, frame_len)) = check_geometry(program, g) {
            if !flagged.contains(&op) {
                flagged.push(op);
                report.push(
                    LintCode::MicroOpOutOfBounds,
                    Span::chain(),
                    format!(
                        "micro-op {op} ({:?}) writes bytes ..{end} of a {frame_len}-byte \
                         frame on geometry [{g}]",
                        program.ops()[op]
                    ),
                );
            }
        }
    }
    report
}

/// SBX012 over a rule's compiled program.
#[must_use]
pub fn check_bounds(chain: &str, rule: &GlobalRule) -> Report {
    check_program_bounds(chain, &rule.compiled)
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use speedybox_mat::{compile, consolidate, Anchor, EncapSpec, HeaderAction};
    use speedybox_packet::HeaderField;

    use super::*;

    #[test]
    fn domain_is_the_documented_size() {
        assert_eq!(geometries().count(), 2 * 11 * 12 * (MAX_AH_DEPTH + 1));
    }

    #[test]
    fn every_lowerable_field_is_in_bounds_everywhere() {
        // The claim in `lower_field`'s doc comment, proven exhaustively.
        let values: [(HeaderField, speedybox_packet::FieldValue); 8] = [
            (HeaderField::SrcMac, [2u8, 0, 0, 0, 0, 1].into()),
            (HeaderField::DstMac, [2u8, 0, 0, 0, 0, 2].into()),
            (HeaderField::SrcIp, Ipv4Addr::new(10, 0, 0, 1).into()),
            (HeaderField::DstIp, Ipv4Addr::new(10, 0, 0, 2).into()),
            (HeaderField::SrcPort, 1u16.into()),
            (HeaderField::DstPort, 65535u16.into()),
            (HeaderField::Ttl, 1u8.into()),
            (HeaderField::Tos, 0xffu8.into()),
        ];
        for (field, value) in values {
            let program = compile(&consolidate(&[HeaderAction::Modify(vec![(field, value)])]));
            let report = check_program_bounds("t", &program);
            assert!(report.diagnostics.is_empty(), "{field:?}: {}", report.render_text());
        }
    }

    #[test]
    fn composite_rules_with_encap_decap_are_in_bounds() {
        for actions in [
            vec![
                HeaderAction::Decap(EncapSpec::new(7)),
                HeaderAction::Encap(EncapSpec::new(8)),
                HeaderAction::modify(HeaderField::DstPort, 80u16),
            ],
            vec![
                HeaderAction::Encap(EncapSpec::new(1)),
                HeaderAction::modify(HeaderField::SrcIp, Ipv4Addr::new(10, 1, 1, 1)),
                HeaderAction::modify(HeaderField::Ttl, 9u8),
            ],
            vec![HeaderAction::Drop],
            vec![HeaderAction::Forward],
        ] {
            let program = compile(&consolidate(&actions));
            let report = check_program_bounds("t", &program);
            assert!(report.diagnostics.is_empty(), "{actions:?}: {}", report.render_text());
        }
    }

    #[test]
    fn synthetic_escape_is_caught_with_its_geometry() {
        // A 10-byte-offset L4 write escapes a minimal UDP frame (l4_hdr=8)
        // but is fine on any TCP geometry — exactly the window sampling
        // can miss.
        let program = CompiledProgram::from_ops(vec![speedybox_mat::MicroOp::WriteWord {
            anchor: Anchor::L4,
            offset: 10,
            mask: 0xFFFF_0000_0000_0000,
            value: 0,
            ip_csum: false,
            l4_csum: true,
        }]);
        let report = check_program_bounds("t", &program);
        assert!(report.has_code(LintCode::MicroOpOutOfBounds), "{}", report.render_text());
        assert!(report.has_errors());
        let msg = &report.diagnostics[0].message;
        assert!(msg.contains("l4_hdr=8"), "{msg}");
        assert!(msg.contains("micro-op 0"), "{msg}");
    }

    #[test]
    fn escape_behind_a_drop_or_failing_decap_is_unreachable() {
        let oob = speedybox_mat::MicroOp::WriteWord {
            anchor: Anchor::L4,
            offset: 4096,
            mask: 0,
            value: 0,
            ip_csum: false,
            l4_csum: false,
        };
        let dropped = CompiledProgram::from_ops(vec![speedybox_mat::MicroOp::Drop, oob.clone()]);
        assert!(check_program_bounds("t", &dropped).diagnostics.is_empty());
        // MAX_AH_DEPTH + 1 pops fail on every geometry before the write.
        let mut ops = vec![speedybox_mat::MicroOp::PopDecap; MAX_AH_DEPTH + 1];
        ops.push(oob);
        let undecappable = CompiledProgram::from_ops(ops);
        assert!(check_program_bounds("t", &undecappable).diagnostics.is_empty());
    }

    #[test]
    fn frozen_anchor_semantics_match_run() {
        // A write, then an encap, then another L4-anchored write: run()
        // resolves the layout at the first write, so the second write uses
        // the pre-encap L4 anchor while the frame has grown by AH_LEN —
        // strictly more slack. The proof must model that, not re-anchor.
        let program = CompiledProgram::from_ops(vec![
            speedybox_mat::MicroOp::WriteWord {
                anchor: Anchor::L4,
                offset: 0,
                mask: 0xFFFF_0000_0000_0000,
                value: 0,
                ip_csum: false,
                l4_csum: true,
            },
            speedybox_mat::MicroOp::PushEncap { template: [0u8; AH_LEN] },
            speedybox_mat::MicroOp::WriteWord {
                anchor: Anchor::L4,
                offset: 0,
                mask: 0x0000_FFFF_0000_0000,
                value: 0,
                ip_csum: false,
                l4_csum: true,
            },
        ]);
        let report = check_program_bounds("t", &program);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }
}
