//! Golden-diagnostic tests: each known-bad chain shape must produce
//! exactly its SBX code — no more, no less — so lint output is stable
//! enough to gate CI on.

use speedybox_mat::action::{EncapSpec, HeaderAction};
use speedybox_mat::state_fn::PayloadAccess;
use speedybox_mat::track::AccessViolation;
use speedybox_packet::HeaderField;
use speedybox_verify::{
    check_access_log, check_consolidation, check_event_rewrites, check_schedule, EventSpec,
    LintCode, NfActions, Severity,
};

/// Asserts a report holds exactly `expected` codes (order-insensitive).
fn assert_codes(report: &speedybox_verify::Report, expected: &[LintCode]) {
    let mut got = report.codes();
    let mut want = expected.to_vec();
    got.sort_by_key(|c| c.code());
    want.sort_by_key(|c| c.code());
    assert_eq!(got, want, "codes diverge:\n{}", report.render_text());
}

#[test]
fn drop_then_modify_is_sbx001() {
    let nfs = [
        NfActions::new("fw", vec![HeaderAction::Drop]),
        NfActions::new("nat", vec![HeaderAction::modify(HeaderField::DstPort, 8080u16)]),
    ];
    let report = check_consolidation("drop-then-modify", &nfs);
    assert_codes(&report, &[LintCode::DeadActionAfterDrop]);
    assert_eq!(report.diagnostics[0].severity, Severity::Error);
    let text = report.render_text();
    assert!(text.contains("error[SBX001]"), "{text}");
    assert!(text.contains("nf1 (nat) action 0"), "{text}");
}

#[test]
fn mismatched_tunnel_egress_is_sbx002() {
    let nfs = [
        NfActions::new("ingress", vec![HeaderAction::Encap(EncapSpec::new(0x1001))]),
        NfActions::new("egress", vec![HeaderAction::Decap(EncapSpec::new(0x2002))]),
    ];
    let report = check_consolidation("mismatched-tunnel", &nfs);
    assert_codes(&report, &[LintCode::DecapSpecMismatch]);
    assert!(report.has_errors());
    assert!(report.render_text().contains("error[SBX002]"), "{}", report.render_text());
}

#[test]
fn unbalanced_decap_is_sbx003_warn_only() {
    let nfs = [NfActions::new("egress", vec![HeaderAction::Decap(EncapSpec::new(0x1001))])];
    let report = check_consolidation("unbalanced-decap", &nfs);
    assert_codes(&report, &[LintCode::DecapUnderflow]);
    assert!(!report.has_errors(), "arrival decap is a warning, not an error");
    assert!(report.render_text().contains("warning[SBX003]"), "{}", report.render_text());
}

#[test]
fn cross_nf_conflicting_modify_is_sbx004() {
    let nfs = [
        NfActions::new("lb-a", vec![HeaderAction::modify(HeaderField::DstPort, 8080u16)]),
        NfActions::new("lb-b", vec![HeaderAction::modify(HeaderField::DstPort, 9090u16)]),
    ];
    let report = check_consolidation("conflicting-modify", &nfs);
    assert_codes(&report, &[LintCode::ConflictingModify]);
    assert!(!report.has_errors(), "latter-wins is well-defined; this is a warning");
}

#[test]
fn early_trailing_write_is_sbx005() {
    let nfs = [
        NfActions::new("shaper", vec![HeaderAction::modify(HeaderField::Ttl, 32u8)]),
        NfActions::new("tunnel", vec![HeaderAction::Encap(EncapSpec::new(9))]),
    ];
    let report = check_consolidation("early-trailing", &nfs);
    assert_codes(&report, &[LintCode::EarlyTrailingWrite]);
    assert!(!report.has_errors());
}

#[test]
fn event_installing_dead_action_is_sbx007() {
    let nfs = [
        NfActions::new("guard", vec![HeaderAction::Forward]),
        NfActions::new("nat", vec![HeaderAction::modify(HeaderField::DstPort, 80u16)]),
    ];
    let events = [EventSpec {
        nf: 0,
        name: "flip-to-drop".into(),
        patch_actions: Some(vec![HeaderAction::Drop]),
        patch_accesses: None,
    }];
    let report = check_event_rewrites("unsound-rewrite", &nfs, &[], &events);
    assert_codes(&report, &[LintCode::EventRewriteUnsound]);
    let text = report.render_text();
    assert!(text.contains("error[SBX007]"), "{text}");
    assert!(text.contains("flip-to-drop"), "{text}");
    assert!(text.contains("SBX001"), "inner code must be named: {text}");
}

#[test]
fn write_write_wave_is_sbx008() {
    let report =
        check_schedule("write-write", &[PayloadAccess::Write, PayloadAccess::Write], &[vec![0, 1]]);
    assert_codes(&report, &[LintCode::ScheduleConflict]);
    let text = report.render_text();
    assert!(text.contains("error[SBX008]"), "{text}");
    assert!(text.contains("WRITE x WRITE"), "{text}");
}

#[test]
fn reordered_schedule_is_sbx009() {
    let report = check_schedule(
        "reordered",
        &[PayloadAccess::Ignore, PayloadAccess::Ignore],
        &[vec![1], vec![0]],
    );
    assert_codes(&report, &[LintCode::ScheduleOrder]);
    assert!(report.render_text().contains("error[SBX009]"), "{}", report.render_text());
}

#[test]
fn lying_payload_access_is_sbx010() {
    let violations = [AccessViolation {
        function: "stealth-scrubber".into(),
        declared: PayloadAccess::Read,
        observed: PayloadAccess::Write,
        count: 4,
    }];
    let report = check_access_log("liar", &violations);
    assert_codes(&report, &[LintCode::AccessViolation]);
    let text = report.render_text();
    assert!(text.contains("error[SBX010]"), "{text}");
    assert!(text.contains("`stealth-scrubber`"), "{text}");
}

#[test]
fn clean_chain_has_no_codes() {
    let nfs = [
        NfActions::new("nat", vec![HeaderAction::modify(HeaderField::SrcPort, 40001u16)]),
        NfActions::new("tunnel-in", vec![HeaderAction::Encap(EncapSpec::new(7))]),
        NfActions::new("tunnel-out", vec![HeaderAction::Decap(EncapSpec::new(7))]),
        NfActions::new("fw", vec![HeaderAction::Forward]),
    ];
    let report = check_consolidation("clean", &nfs);
    assert_codes(&report, &[]);
}
