//! Property: any chain the verifier accepts (no Error-level findings) is
//! differentially equivalent — applying its actions sequentially produces
//! the same packet bytes and survival verdict as applying the consolidated
//! action once. This ties the static passes to the runtime ground truth:
//! the verifier may reject sound chains, but it must never accept an
//! unsound one.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use std::net::Ipv4Addr;

use proptest::prelude::*;
use speedybox_mat::action::{EncapSpec, HeaderAction};
use speedybox_mat::consolidate::consolidate;
use speedybox_mat::ops::OpCounter;
use speedybox_packet::{HeaderField, Packet, PacketBuilder};
use speedybox_verify::{check_consolidation, NfActions};

fn arb_action() -> impl Strategy<Value = HeaderAction> {
    prop_oneof![
        Just(HeaderAction::Forward),
        Just(HeaderAction::Drop),
        (
            prop::sample::select(vec![
                HeaderField::SrcIp,
                HeaderField::DstIp,
                HeaderField::SrcPort,
                HeaderField::DstPort,
                HeaderField::Ttl,
                HeaderField::Tos,
            ]),
            any::<u32>()
        )
            .prop_map(|(f, v)| {
                let value = match f {
                    HeaderField::SrcIp | HeaderField::DstIp => Ipv4Addr::from(v).into(),
                    HeaderField::SrcPort | HeaderField::DstPort => (v as u16).into(),
                    _ => (v as u8).into(),
                };
                HeaderAction::Modify(vec![(f, value)])
            }),
        (0u32..8).prop_map(|spi| HeaderAction::Encap(EncapSpec::new(spi))),
        (0u32..8).prop_map(|spi| HeaderAction::Decap(EncapSpec::new(spi))),
    ]
}

/// Chops a flat action list into 1-3 NFs at arbitrary boundaries.
fn arb_chain() -> impl Strategy<Value = Vec<NfActions>> {
    (prop::collection::vec(arb_action(), 0..8), any::<u8>()).prop_map(|(actions, split)| {
        let n = actions.len();
        let cut = if n == 0 { 0 } else { (split as usize) % (n + 1) };
        vec![
            NfActions::new("nf-a", actions[..cut].to_vec()),
            NfActions::new("nf-b", actions[cut..].to_vec()),
        ]
    })
}

/// How deep the arriving packet must be pre-tunneled for every decap to
/// succeed (`pre`), and the maximum simultaneous header depth either path
/// can reach (`peak`, bounded by headroom: 128 B / 24 B AH = 5 headers).
fn tunnel_needs(flat: &[HeaderAction]) -> (usize, usize) {
    let (mut depth, mut min_depth, mut max_depth) = (0i64, 0i64, 0i64);
    for a in flat {
        match a {
            HeaderAction::Encap(_) => depth += 1,
            HeaderAction::Decap(_) => depth -= 1,
            HeaderAction::Drop => break,
            _ => {}
        }
        min_depth = min_depth.min(depth);
        max_depth = max_depth.max(depth);
    }
    let pre = usize::try_from(-min_depth).unwrap();
    let peak = usize::try_from(pre as i64 + max_depth).unwrap();
    (pre, peak)
}

/// The base packet arrives wrapped in `pre` AH headers, so generated
/// decap-underflow actions model a flow that genuinely arrives
/// encapsulated (the case SBX003 warns about) instead of failing outright
/// on both paths.
fn base_packet(pre: usize) -> Packet {
    let mut pkt = PacketBuilder::tcp()
        .src("10.1.2.3:5555".parse().unwrap())
        .dst("10.4.5.6:80".parse().unwrap())
        .payload(b"verified-equivalence")
        .build();
    let mut ops = OpCounter::default();
    for i in 0..pre {
        HeaderAction::Encap(EncapSpec::new(100 + i as u32)).apply(&mut pkt, &mut ops).unwrap();
    }
    pkt
}

/// Sequential application; `Ok(survived)` or `Err` if an action failed
/// outright (e.g. a decap on a packet with no header to strip).
fn apply_sequentially(actions: &[HeaderAction], pkt: &mut Packet) -> Result<bool, String> {
    let mut ops = OpCounter::default();
    for a in actions {
        match a.apply(pkt, &mut ops) {
            Ok(true) => {}
            Ok(false) => return Ok(false),
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(true)
}

proptest! {
    /// Soundness of acceptance: verifier-accepted chains are differentially
    /// equivalent. Chains the verifier rejects (any Error finding) are out
    /// of scope — rejection is allowed to be conservative.
    #[test]
    fn accepted_chains_are_equivalent(nfs in arb_chain()) {
        let report = check_consolidation("prop", &nfs);
        prop_assume!(!report.has_errors());

        let flat: Vec<HeaderAction> =
            nfs.iter().flat_map(|nf| nf.actions.iter().cloned()).collect();
        let (pre, peak) = tunnel_needs(&flat);
        // Deeper would exhaust mbuf headroom on either path.
        prop_assume!(peak <= 5);

        let mut seq = base_packet(pre);
        let seq_result = apply_sequentially(&flat, &mut seq);

        let mut fast = base_packet(pre);
        let mut ops = OpCounter::default();
        let consolidated = consolidate(&flat);
        let fast_result = consolidated.apply(&mut fast, &mut ops).map_err(|e| e.to_string());

        match (seq_result, fast_result) {
            (Ok(s), Ok(f)) => {
                prop_assert_eq!(s, f, "survival verdicts diverge");
                if s {
                    prop_assert_eq!(seq.as_bytes(), fast.as_bytes(), "packet bytes diverge");
                }
            }
            // A decap of a packet that arrived untunneled fails on both
            // paths; the verifier already warned (SBX003) without erroring.
            (Err(_), Err(_)) => {}
            (seq_r, fast_r) => prop_assert!(
                false,
                "one path failed and the other did not: sequential={seq_r:?} fast={fast_r:?}"
            ),
        }
    }

    /// The verifier never reports a consolidation mismatch (SBX006) for any
    /// generated chain — the symbolic interpreter and `consolidate()` agree
    /// on drop/field/stack effects across the whole action space.
    #[test]
    fn sbx006_never_fires(nfs in arb_chain()) {
        let report = check_consolidation("prop", &nfs);
        prop_assert!(
            !report.has_code(speedybox_verify::LintCode::ConsolidationMismatch),
            "symbolic vs consolidate() divergence:\n{}",
            report.render_text()
        );
    }
}
