//! Lock-free live telemetry for the SpeedyBox data plane.
//!
//! `RunStats` (in the platform crate) is a *post-run* aggregate: it only
//! exists after a workload finishes, so nothing can observe rule churn,
//! event firings or path mix while traffic is flowing, and CI has nothing
//! to gate on. This crate adds the live layer:
//!
//! * [`Telemetry`] — a sharded hub of cache-padded, relaxed-atomic
//!   counter cells ([`CounterShard`]). The hot path pays one uncontended
//!   RMW per event and never takes a lock.
//! * [`AtomicHistogram`] — fixed-bucket log2 latency histograms, one per
//!   path kind ([`PathClass`]: baseline / initial / subsequent).
//! * [`TelemetrySnapshot`] — a mergeable point-in-time copy with
//!   Prometheus text exposition and an exact-round-trip JSON dump
//!   (numbers stay `u64`; no `serde` needed).
//!
//! The crate is intentionally dependency-free so the classifier, Global
//! MAT and Event Table (in `speedybox-mat`) can sink into it without a
//! cycle. A differential test in the workspace root proves snapshot
//! totals equal the `RunStats` aggregates byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counters;
pub mod hist;
pub mod json;
pub mod snapshot;

pub use counters::{CounterShard, OpTotals, PathClass, Telemetry, OP_KINDS, OP_NAMES};
pub use hist::{AtomicHistogram, HistogramSnapshot, BUCKETS};
pub use snapshot::TelemetrySnapshot;
