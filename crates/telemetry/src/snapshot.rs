//! Mergeable point-in-time snapshots and their exposition formats.

use crate::counters::{OpTotals, PathClass};
use crate::hist::{bucket_upper, HistogramSnapshot};
use crate::json::{escape, Json};
use std::fmt::Write as _;

/// A consistent copy of every telemetry counter, summed across shards.
///
/// Snapshots merge associatively (`merge` is bucket-wise `+`/`min`/`max`),
/// so per-thread or per-process snapshots can be combined in any order —
/// the property the proptest suite locks in.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Packets that finished processing (delivered or dropped).
    pub packets: u64,
    /// Packets that left the chain alive.
    pub delivered: u64,
    /// Packets dropped anywhere in the chain.
    pub dropped: u64,
    /// Per-path packet counts, indexed by [`PathClass::index`].
    pub paths: [u64; 3],
    /// Per-path latency histograms (cycles in the modelled runtimes,
    /// nanoseconds in the threaded runtime).
    pub latency: [HistogramSnapshot; 3],
    /// Flows admitted by the classifier.
    pub flows_opened: u64,
    /// Flows explicitly torn down (FIN/RST or API removal).
    pub flows_closed: u64,
    /// Flows reclaimed by idle expiry.
    pub flows_expired: u64,
    /// Flows displaced by capacity-pressure LRU eviction.
    pub flows_evicted: u64,
    /// Flows refused admission at capacity (Reject policy).
    pub flows_rejected: u64,
    /// Packets steered to the slow path by a 20-bit FID collision.
    pub fid_collisions: u64,
    /// TCP handshake packets steered around the fast path.
    pub handshake_packets: u64,
    /// Fast-path lookups that found a consolidated rule.
    pub fastpath_hits: u64,
    /// Fast-path lookups that missed.
    pub fastpath_misses: u64,
    /// Consolidated rules installed into the Global MAT.
    pub rules_installed: u64,
    /// Rules rewritten by Event Table firings.
    pub rule_rewrites: u64,
    /// Rules removed from the Global MAT.
    pub rules_removed: u64,
    /// Event Table conditions that fired.
    pub events_fired: u64,
    /// Packets whose header action ran as a compiled micro-op program.
    pub compiled_hits: u64,
    /// Packets that fell back to the interpreted header action even though
    /// a compiled program was available (`--interpreted` or ablation).
    pub compiled_fallbacks: u64,
    /// Packet-pool buffer requests served from the pool.
    pub pool_hits: u64,
    /// Pool requests that fell back to heap allocation (pool exhausted).
    pub pool_misses: u64,
    /// Buffers accepted back into the pool for reuse.
    pub pool_recycled: u64,
    /// Magazine batch refills from the pool depot.
    pub pool_refills: u64,
    /// Magazine batch flushes back to the pool depot.
    pub pool_flushes: u64,
    /// Idle buffers in the pool depot at snapshot time (sampled gauge).
    pub pool_depth: u64,
    /// Chain-consistent checkpoints taken (periodic, bound-forced or on
    /// demand).
    pub snapshots_taken: u64,
    /// In-flight log entries replayed during NF recovery.
    pub replay_depth: u64,
    /// Packets steered to the baseline walk by an open quarantine window.
    pub quarantine_packets: u64,
    /// NF crash (kill) events handled by the supervisor.
    pub nf_kills: u64,
    /// Quarantine windows closed (NF recoveries).
    pub nf_recoveries: u64,
    /// Mirror of the abstract-operation counters (see `OP_NAMES`).
    pub ops: OpTotals,
}

impl TelemetrySnapshot {
    /// Folds `other` into `self`. Associative and commutative.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.packets += other.packets;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        for (dst, src) in self.paths.iter_mut().zip(&other.paths) {
            *dst += src;
        }
        for (dst, src) in self.latency.iter_mut().zip(&other.latency) {
            dst.merge(src);
        }
        self.flows_opened += other.flows_opened;
        self.flows_closed += other.flows_closed;
        self.flows_expired += other.flows_expired;
        self.flows_evicted += other.flows_evicted;
        self.flows_rejected += other.flows_rejected;
        self.fid_collisions += other.fid_collisions;
        self.handshake_packets += other.handshake_packets;
        self.fastpath_hits += other.fastpath_hits;
        self.fastpath_misses += other.fastpath_misses;
        self.rules_installed += other.rules_installed;
        self.rule_rewrites += other.rule_rewrites;
        self.rules_removed += other.rules_removed;
        self.events_fired += other.events_fired;
        self.compiled_hits += other.compiled_hits;
        self.compiled_fallbacks += other.compiled_fallbacks;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.pool_recycled += other.pool_recycled;
        self.pool_refills += other.pool_refills;
        self.pool_flushes += other.pool_flushes;
        self.pool_depth += other.pool_depth;
        self.snapshots_taken += other.snapshots_taken;
        self.replay_depth += other.replay_depth;
        self.quarantine_packets += other.quarantine_packets;
        self.nf_kills += other.nf_kills;
        self.nf_recoveries += other.nf_recoveries;
        self.ops.merge(&other.ops);
    }

    /// All-path latency histogram (merge of the three per-path ones).
    #[must_use]
    pub fn latency_total(&self) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::default();
        for h in &self.latency {
            total.merge(h);
        }
        total
    }

    /// Fraction of finished packets served by the consolidated fast path.
    #[must_use]
    pub fn fastpath_hit_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.paths[PathClass::Subsequent.index()] as f64 / self.packets as f64
        }
    }

    /// Named scalar counters in exposition order (everything except the
    /// per-path arrays, histograms and op mirror).
    #[must_use]
    pub fn scalars(&self) -> [(&'static str, u64); 29] {
        [
            ("packets", self.packets),
            ("delivered", self.delivered),
            ("dropped", self.dropped),
            ("flows_opened", self.flows_opened),
            ("flows_closed", self.flows_closed),
            ("flows_expired", self.flows_expired),
            ("flows_evicted", self.flows_evicted),
            ("flows_rejected", self.flows_rejected),
            ("fid_collisions", self.fid_collisions),
            ("handshake_packets", self.handshake_packets),
            ("fastpath_hits", self.fastpath_hits),
            ("fastpath_misses", self.fastpath_misses),
            ("rules_installed", self.rules_installed),
            ("rule_rewrites", self.rule_rewrites),
            ("rules_removed", self.rules_removed),
            ("events_fired", self.events_fired),
            ("compiled_hits", self.compiled_hits),
            ("compiled_fallbacks", self.compiled_fallbacks),
            ("pool_hits", self.pool_hits),
            ("pool_misses", self.pool_misses),
            ("pool_recycled", self.pool_recycled),
            ("pool_refills", self.pool_refills),
            ("pool_flushes", self.pool_flushes),
            ("pool_depth", self.pool_depth),
            ("snapshots_taken", self.snapshots_taken),
            ("replay_depth", self.replay_depth),
            ("quarantine_packets", self.quarantine_packets),
            ("nf_kills", self.nf_kills),
            ("nf_recoveries", self.nf_recoveries),
        ]
    }

    /// Prometheus text exposition (v0.0.4). Histogram buckets are emitted
    /// cumulatively with log2 `le` bounds, one series per path kind.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        for (name, value) in self.scalars() {
            let _ = writeln!(out, "# TYPE speedybox_{name}_total counter");
            let _ = writeln!(out, "speedybox_{name}_total {value}");
        }
        let _ = writeln!(out, "# TYPE speedybox_path_packets_total counter");
        for path in PathClass::ALL {
            let _ = writeln!(
                out,
                "speedybox_path_packets_total{{path=\"{}\"}} {}",
                path.label(),
                self.paths[path.index()]
            );
        }
        let _ = writeln!(out, "# TYPE speedybox_ops_total counter");
        for (name, value) in self.ops.named() {
            let _ = writeln!(out, "speedybox_ops_total{{op=\"{name}\"}} {value}");
        }
        let _ = writeln!(out, "# HELP speedybox_latency packet latency; cycles in the modelled runtimes, nanoseconds in the threaded runtime");
        let _ = writeln!(out, "# TYPE speedybox_latency histogram");
        for path in PathClass::ALL {
            let h = &self.latency[path.index()];
            let label = path.label();
            let top = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().take(top).enumerate() {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "speedybox_latency_bucket{{path=\"{label}\",le=\"{}\"}} {cumulative}",
                    bucket_upper(i)
                );
            }
            let _ = writeln!(
                out,
                "speedybox_latency_bucket{{path=\"{label}\",le=\"+Inf\"}} {}",
                h.count
            );
            let _ = writeln!(out, "speedybox_latency_sum{{path=\"{label}\"}} {}", h.sum);
            let _ = writeln!(out, "speedybox_latency_count{{path=\"{label}\"}} {}", h.count);
        }
        out
    }

    /// JSON dump. Histogram buckets are sparse `[index, count]` pairs, so
    /// the document stays small and `u64` values round-trip exactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        for (name, value) in self.scalars() {
            let _ = writeln!(out, "  \"{}\": {},", escape(name), value);
        }
        let _ = writeln!(
            out,
            "  \"paths\": {{\"baseline\": {}, \"initial\": {}, \"subsequent\": {}}},",
            self.paths[0], self.paths[1], self.paths[2]
        );
        out.push_str("  \"ops\": {");
        let mut first = true;
        for (name, value) in self.ops.named() {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{name}\": {value}");
        }
        out.push_str("},\n");
        out.push_str("  \"latency\": {");
        for (pi, path) in PathClass::ALL.iter().enumerate() {
            if pi > 0 {
                out.push_str(", ");
            }
            let h = &self.latency[path.index()];
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                path.label(),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            let mut first = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "[{i}, {n}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"fastpath_hit_rate\": {:.6}", self.fastpath_hit_rate());
        out.push_str("}\n");
        out
    }

    /// Parses a snapshot back from [`Self::to_json`] output.
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, String> {
        let doc = Json::parse(text)?;
        let field = |name: &str| -> Result<u64, String> {
            doc.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer field '{name}'"))
        };
        // Recovery counters postdate the format; absent means zero so dumps
        // written before NF supervision existed still parse.
        let lenient = |name: &str| doc.get(name).and_then(Json::as_u64).unwrap_or(0);
        let mut snap = TelemetrySnapshot {
            packets: field("packets")?,
            delivered: field("delivered")?,
            dropped: field("dropped")?,
            flows_opened: field("flows_opened")?,
            flows_closed: field("flows_closed")?,
            flows_expired: field("flows_expired")?,
            flows_evicted: field("flows_evicted")?,
            flows_rejected: field("flows_rejected")?,
            fid_collisions: field("fid_collisions")?,
            handshake_packets: field("handshake_packets")?,
            fastpath_hits: field("fastpath_hits")?,
            fastpath_misses: field("fastpath_misses")?,
            rules_installed: field("rules_installed")?,
            rule_rewrites: field("rule_rewrites")?,
            rules_removed: field("rules_removed")?,
            events_fired: field("events_fired")?,
            compiled_hits: field("compiled_hits")?,
            compiled_fallbacks: field("compiled_fallbacks")?,
            pool_hits: field("pool_hits")?,
            pool_misses: field("pool_misses")?,
            pool_recycled: field("pool_recycled")?,
            pool_refills: field("pool_refills")?,
            pool_flushes: field("pool_flushes")?,
            pool_depth: field("pool_depth")?,
            snapshots_taken: lenient("snapshots_taken"),
            replay_depth: lenient("replay_depth"),
            quarantine_packets: lenient("quarantine_packets"),
            nf_kills: lenient("nf_kills"),
            nf_recoveries: lenient("nf_recoveries"),
            ..TelemetrySnapshot::default()
        };
        let paths = doc.get("paths").ok_or("missing 'paths'")?;
        for path in PathClass::ALL {
            snap.paths[path.index()] = paths
                .get(path.label())
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing path '{}'", path.label()))?;
        }
        let ops = doc.get("ops").ok_or("missing 'ops'")?;
        for (slot, name) in snap.ops.0.iter_mut().zip(crate::counters::OP_NAMES) {
            *slot = ops
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing op '{name}'"))?;
        }
        let latency = doc.get("latency").ok_or("missing 'latency'")?;
        for path in PathClass::ALL {
            let h = latency
                .get(path.label())
                .ok_or_else(|| format!("missing latency '{}'", path.label()))?;
            let get = |k: &str| {
                h.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing latency.{k}"))
            };
            let dst = &mut snap.latency[path.index()];
            dst.count = get("count")?;
            dst.sum = get("sum")?;
            dst.min = get("min")?;
            dst.max = get("max")?;
            for pair in h.get("buckets").and_then(Json::as_array).ok_or("missing buckets")? {
                let pair = pair.as_array().ok_or("bucket entry is not a pair")?;
                let (i, n) = match pair {
                    [i, n] => (
                        usize::try_from(i.as_u64().ok_or("bad bucket index")?)
                            .map_err(|_| "bad bucket index")?,
                        n.as_u64().ok_or("bad bucket count")?,
                    ),
                    _ => return Err("bucket entry is not a pair".into()),
                };
                *dst.buckets.get_mut(i).ok_or("bucket index out of range")? = n;
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{PathClass, Telemetry};

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new(4);
        for i in 0..10u64 {
            t.shard(i).record_packet(PathClass::Subsequent, 40 + i, true);
        }
        t.shard(0).record_packet(PathClass::Initial, 900, true);
        t.shard(1).record_packet(PathClass::Baseline, 300, false);
        t.shard(2).add_fastpath_hits(10);
        t.shard(2).add_fastpath_misses(1);
        t.shard(3).add_rules_installed(2);
        t.shard(0).add_events_fired(1);
        t.shard(0).add_pool_hits(6);
        t.shard(0).add_pool_misses(2);
        t.shard(0).add_pool_recycled(5);
        t.shard(0).add_pool_refills(1);
        t.shard(0).add_pool_flushes(1);
        t.shard(0).set_pool_depth(4);
        t.shard(0).add_snapshots_taken(3);
        t.shard(0).add_replay_depth(7);
        t.shard(1).add_quarantine_packets(5);
        t.shard(0).add_nf_kills(1);
        t.shard(0).add_nf_recoveries(1);
        let mut ops = OpTotals::default();
        ops.0[0] = 12;
        ops.0[13] = 2;
        t.shard(1).add_ops(&ops);
        t.snapshot()
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample();
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_round_trip_extreme_values() {
        let mut snap = TelemetrySnapshot { packets: u64::MAX, ..Default::default() };
        snap.latency[0].count = 1;
        snap.latency[0].sum = u64::MAX;
        snap.latency[0].min = u64::MAX;
        snap.latency[0].max = u64::MAX;
        snap.latency[0].buckets[63] = 1;
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_sums_everything() {
        let a = sample();
        let mut m = a.clone();
        m.merge(&a);
        assert_eq!(m.packets, 2 * a.packets);
        assert_eq!(m.fastpath_hits, 2 * a.fastpath_hits);
        assert_eq!(m.ops.0[0], 2 * a.ops.0[0]);
        assert_eq!(m.latency_total().count, 2 * a.latency_total().count);
        assert_eq!(m.latency[2].min, a.latency[2].min);
    }

    #[test]
    fn hit_rate() {
        let snap = sample();
        assert!((snap.fastpath_hit_rate() - 10.0 / 12.0).abs() < 1e-9);
        assert_eq!(TelemetrySnapshot::default().fastpath_hit_rate(), 0.0);
    }

    #[test]
    fn prometheus_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("speedybox_packets_total 12"));
        assert!(text.contains("speedybox_path_packets_total{path=\"subsequent\"} 10"));
        assert!(text.contains("speedybox_ops_total{op=\"parses\"} 12"));
        assert!(text.contains("speedybox_latency_bucket{path=\"subsequent\",le=\"+Inf\"} 10"));
        assert!(text.contains("speedybox_latency_count{path=\"subsequent\"} 10"));
        // Cumulative buckets end at the total count.
        let last_sub_bucket = text
            .lines()
            .rfind(|l| l.starts_with("speedybox_latency_bucket{path=\"initial\""))
            .unwrap();
        assert!(last_sub_bucket.ends_with(" 1"));
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(TelemetrySnapshot::from_json("{}").is_err());
        assert!(TelemetrySnapshot::from_json("not json").is_err());
    }
}
