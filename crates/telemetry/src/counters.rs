//! Per-shard lock-free counter cells and the sharded [`Telemetry`] hub.
//!
//! Every counter is a relaxed [`AtomicU64`]: increments are monotone and
//! independent, so no inter-counter ordering is needed and the hot path
//! pays one uncontended RMW per event. Shards are cache-line padded and
//! selected by a caller-supplied hint (typically the 20-bit FID), so
//! concurrent writers on different flows touch different lines.

use crate::hist::AtomicHistogram;
use crate::snapshot::TelemetrySnapshot;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Which data-plane path a packet took. Index order matches
/// `RunStats::path_counts` in the platform crate: baseline, initial,
/// subsequent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum PathClass {
    /// Unconsolidated chain traversal (baseline runs, collisions, handshakes).
    Baseline = 0,
    /// First packet of a flow: slow path + instrumentation + install.
    Initial = 1,
    /// Subsequent packet served by the consolidated fast path.
    Subsequent = 2,
}

impl PathClass {
    /// All path kinds, in `path_counts` index order.
    pub const ALL: [PathClass; 3] =
        [PathClass::Baseline, PathClass::Initial, PathClass::Subsequent];

    /// Index into per-path arrays.
    #[must_use]
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase label used in exposition output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PathClass::Baseline => "baseline",
            PathClass::Initial => "initial",
            PathClass::Subsequent => "subsequent",
        }
    }
}

/// Number of abstract-operation kinds mirrored from the MAT crate's
/// `OpCounter` (kept in lock-step by the differential test).
pub const OP_KINDS: usize = 19;

/// Exposition names for the 19 abstract-operation counters, in the same
/// order as the fields of `speedybox_mat::OpCounter`.
pub const OP_NAMES: [&str; OP_KINDS] = [
    "parses",
    "classifications",
    "acl_rules_scanned",
    "hash_lookups",
    "hash_updates",
    "field_writes",
    "checksum_fixes",
    "encaps",
    "payload_bytes_scanned",
    "sf_invocations",
    "state_updates",
    "mat_records",
    "mat_lookups",
    "consolidations",
    "event_checks",
    "ring_hops",
    "drops",
    "word_writes",
    "checksum_patches",
];

/// Plain-old-data totals for the 19 abstract-operation counters.
///
/// The MAT crate converts its `OpCounter` into this (see
/// `OpCounter::telemetry_totals`) so the telemetry crate stays
/// dependency-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTotals(pub [u64; OP_KINDS]);

impl OpTotals {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &OpTotals) {
        for (dst, src) in self.0.iter_mut().zip(&other.0) {
            *dst += src;
        }
    }

    /// `(name, value)` pairs in exposition order.
    pub fn named(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        OP_NAMES.iter().copied().zip(self.0.iter().copied())
    }
}

/// One cache-line-padded cell of lock-free counters.
///
/// Alignment 128 covers adjacent-line prefetching on x86; the histograms
/// inside make each shard several cache lines anyway, so padding cost is
/// negligible next to the false-sharing it prevents.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CounterShard {
    // Data-path outcomes.
    packets: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    paths: [AtomicU64; 3],
    latency: [AtomicHistogram; 3],
    // Classifier lifecycle.
    flows_opened: AtomicU64,
    flows_closed: AtomicU64,
    flows_expired: AtomicU64,
    flows_evicted: AtomicU64,
    flows_rejected: AtomicU64,
    fid_collisions: AtomicU64,
    handshake_packets: AtomicU64,
    // Global MAT / fast path.
    fastpath_hits: AtomicU64,
    fastpath_misses: AtomicU64,
    rules_installed: AtomicU64,
    rule_rewrites: AtomicU64,
    rules_removed: AtomicU64,
    events_fired: AtomicU64,
    // Compiled fast path.
    compiled_hits: AtomicU64,
    compiled_fallbacks: AtomicU64,
    // Packet-pool substrate.
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    pool_recycled: AtomicU64,
    pool_refills: AtomicU64,
    pool_flushes: AtomicU64,
    pool_depth: AtomicU64,
    // NF crash/restart supervision.
    snapshots_taken: AtomicU64,
    replay_depth: AtomicU64,
    quarantine_packets: AtomicU64,
    nf_kills: AtomicU64,
    nf_recoveries: AtomicU64,
    // Abstract-operation mirror of `RunStats::ops`.
    ops: [AtomicU64; OP_KINDS],
}

macro_rules! inc_methods {
    ($($(#[$doc:meta])* $name:ident => $field:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $name(&self, n: u64) {
                self.$field.fetch_add(n, Relaxed);
            }
        )*
    };
}

impl CounterShard {
    inc_methods! {
        /// Counts flows newly admitted by the classifier.
        add_flows_opened => flows_opened,
        /// Counts flows explicitly torn down (FIN/RST or API removal).
        add_flows_closed => flows_closed,
        /// Counts flows reclaimed by idle expiry.
        add_flows_expired => flows_expired,
        /// Counts flows displaced by capacity-pressure LRU eviction.
        add_flows_evicted => flows_evicted,
        /// Counts flows refused admission at capacity (Reject policy).
        add_flows_rejected => flows_rejected,
        /// Counts packets steered to the slow path because their 20-bit
        /// FID collided with a live flow.
        add_fid_collisions => fid_collisions,
        /// Counts TCP handshake packets steered around the fast path.
        add_handshake_packets => handshake_packets,
        /// Counts fast-path lookups that found a consolidated rule.
        add_fastpath_hits => fastpath_hits,
        /// Counts fast-path lookups that missed (no rule installed).
        add_fastpath_misses => fastpath_misses,
        /// Counts consolidated rules installed into the Global MAT.
        add_rules_installed => rules_installed,
        /// Counts rules rewritten by Event Table firings (re-consolidation).
        add_rule_rewrites => rule_rewrites,
        /// Counts rules removed from the Global MAT.
        add_rules_removed => rules_removed,
        /// Counts Event Table conditions that fired.
        add_events_fired => events_fired,
        /// Counts fast-path packets whose header action ran as a compiled
        /// micro-op program.
        add_compiled_hits => compiled_hits,
        /// Counts fast-path packets that executed interpretively although
        /// a compiled program existed (`--interpreted` or ablation).
        add_compiled_fallbacks => compiled_fallbacks,
        /// Counts packet-pool buffer requests served from the pool.
        add_pool_hits => pool_hits,
        /// Counts pool requests that fell back to heap allocation
        /// (exhaustion — the graceful-degradation path).
        add_pool_misses => pool_misses,
        /// Counts buffers accepted back into the pool for reuse.
        add_pool_recycled => pool_recycled,
        /// Counts magazine batch refills from the pool depot.
        add_pool_refills => pool_refills,
        /// Counts magazine batch flushes back to the pool depot.
        add_pool_flushes => pool_flushes,
        /// Counts chain-consistent checkpoints taken (periodic, bound-forced
        /// or on demand).
        add_snapshots_taken => snapshots_taken,
        /// Counts in-flight log entries replayed during NF recovery.
        add_replay_depth => replay_depth,
        /// Counts packets that rode the baseline walk because a quarantine
        /// window was open.
        add_quarantine_packets => quarantine_packets,
        /// Counts NF crash (kill) events handled by the supervisor.
        add_nf_kills => nf_kills,
        /// Counts quarantine windows closed (NF recoveries).
        add_nf_recoveries => nf_recoveries,
    }

    /// Records the pool depot's current idle-buffer count (a sampled
    /// gauge, unlike the monotone counters above).
    #[inline]
    pub fn set_pool_depth(&self, depth: u64) {
        self.pool_depth.store(depth, Relaxed);
    }

    /// Records a finished packet: path mix, delivery outcome and latency
    /// (cycles in the modelled runtimes, nanoseconds in the threaded one).
    #[inline]
    pub fn record_packet(&self, path: PathClass, latency: u64, delivered: bool) {
        self.packets.fetch_add(1, Relaxed);
        if delivered {
            self.delivered.fetch_add(1, Relaxed);
        } else {
            self.dropped.fetch_add(1, Relaxed);
        }
        self.paths[path.index()].fetch_add(1, Relaxed);
        self.latency[path.index()].record(latency);
    }

    /// Merges a packet's abstract-operation counts into the shard.
    #[inline]
    pub fn add_ops(&self, ops: &OpTotals) {
        for (cell, v) in self.ops.iter().zip(&ops.0) {
            if *v != 0 {
                cell.fetch_add(*v, Relaxed);
            }
        }
    }

    /// Folds this shard's current values into a snapshot.
    pub(crate) fn drain_into(&self, s: &mut TelemetrySnapshot) {
        s.packets += self.packets.load(Relaxed);
        s.delivered += self.delivered.load(Relaxed);
        s.dropped += self.dropped.load(Relaxed);
        for (dst, src) in s.paths.iter_mut().zip(&self.paths) {
            *dst += src.load(Relaxed);
        }
        for (dst, src) in s.latency.iter_mut().zip(&self.latency) {
            dst.merge(&src.snapshot());
        }
        s.flows_opened += self.flows_opened.load(Relaxed);
        s.flows_closed += self.flows_closed.load(Relaxed);
        s.flows_expired += self.flows_expired.load(Relaxed);
        s.flows_evicted += self.flows_evicted.load(Relaxed);
        s.flows_rejected += self.flows_rejected.load(Relaxed);
        s.fid_collisions += self.fid_collisions.load(Relaxed);
        s.handshake_packets += self.handshake_packets.load(Relaxed);
        s.fastpath_hits += self.fastpath_hits.load(Relaxed);
        s.fastpath_misses += self.fastpath_misses.load(Relaxed);
        s.rules_installed += self.rules_installed.load(Relaxed);
        s.rule_rewrites += self.rule_rewrites.load(Relaxed);
        s.rules_removed += self.rules_removed.load(Relaxed);
        s.events_fired += self.events_fired.load(Relaxed);
        s.compiled_hits += self.compiled_hits.load(Relaxed);
        s.compiled_fallbacks += self.compiled_fallbacks.load(Relaxed);
        s.pool_hits += self.pool_hits.load(Relaxed);
        s.pool_misses += self.pool_misses.load(Relaxed);
        s.pool_recycled += self.pool_recycled.load(Relaxed);
        s.pool_refills += self.pool_refills.load(Relaxed);
        s.pool_flushes += self.pool_flushes.load(Relaxed);
        s.pool_depth += self.pool_depth.load(Relaxed);
        s.snapshots_taken += self.snapshots_taken.load(Relaxed);
        s.replay_depth += self.replay_depth.load(Relaxed);
        s.quarantine_packets += self.quarantine_packets.load(Relaxed);
        s.nf_kills += self.nf_kills.load(Relaxed);
        s.nf_recoveries += self.nf_recoveries.load(Relaxed);
        for (dst, src) in s.ops.0.iter_mut().zip(&self.ops) {
            *dst += src.load(Relaxed);
        }
    }
}

/// Sharded, lock-free telemetry hub shared by the classifier, the Global
/// MAT, the Event Table and the runtimes.
///
/// Shard count is rounded up to a power of two; callers pick a shard with
/// a cheap hint (`fid & mask`), so flows that live on different MAT
/// shards also count on different telemetry lines.
#[derive(Debug)]
pub struct Telemetry {
    shards: Box<[CounterShard]>,
    mask: u64,
}

impl Telemetry {
    /// Creates a hub with `shards` counter cells (rounded up to a power
    /// of two, minimum 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Box<[CounterShard]> = (0..n).map(|_| CounterShard::default()).collect();
        Telemetry { mask: (n - 1) as u64, shards }
    }

    /// Number of counter shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Selects the counter cell for a flow hint (e.g. the FID index).
    #[must_use]
    #[inline]
    // The mask is `shards.len() - 1`, so the masked value always fits usize.
    #[allow(clippy::cast_possible_truncation)]
    pub fn shard(&self, hint: u64) -> &CounterShard {
        &self.shards[(hint & self.mask) as usize]
    }

    /// Merges every shard into one consistent snapshot. While writers are
    /// active the result is a valid lower bound; once they quiesce it is
    /// exact.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::default();
        for shard in self.shards.iter() {
            shard.drain_into(&mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(Telemetry::new(0).shard_count(), 1);
        assert_eq!(Telemetry::new(1).shard_count(), 1);
        assert_eq!(Telemetry::new(3).shard_count(), 4);
        assert_eq!(Telemetry::new(16).shard_count(), 16);
    }

    #[test]
    fn hints_spread_across_shards() {
        let t = Telemetry::new(4);
        t.shard(0).add_fastpath_hits(1);
        t.shard(1).add_fastpath_hits(2);
        t.shard(5).add_fastpath_hits(4); // 5 & 3 == 1
        let s = t.snapshot();
        assert_eq!(s.fastpath_hits, 7);
    }

    #[test]
    fn record_packet_totals() {
        let t = Telemetry::new(2);
        t.shard(0).record_packet(PathClass::Baseline, 100, true);
        t.shard(1).record_packet(PathClass::Subsequent, 50, true);
        t.shard(1).record_packet(PathClass::Initial, 200, false);
        let s = t.snapshot();
        assert_eq!(s.packets, 3);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.paths, [1, 1, 1]);
        assert_eq!(s.latency[2].count, 1);
        assert_eq!(s.latency[2].sum, 50);
        assert_eq!(s.latency_total().count, 3);
        assert_eq!(s.latency_total().sum, 350);
    }

    #[test]
    fn ops_mirror_accumulates() {
        let t = Telemetry::new(1);
        let mut a = OpTotals::default();
        a.0[0] = 3; // parses
        a.0[16] = 1; // drops
        t.shard(0).add_ops(&a);
        t.shard(0).add_ops(&a);
        let s = t.snapshot();
        assert_eq!(s.ops.0[0], 6);
        assert_eq!(s.ops.0[16], 2);
        assert_eq!(s.ops.named().count(), OP_KINDS);
    }
}
