//! Lock-free fixed-bucket log2 latency histograms.
//!
//! Mirrors the bucketing of `speedybox_stats::Histogram` (bucket `i`
//! covers `[2^i, 2^(i+1))`, bucket 0 additionally holds zero) but every
//! slot is a relaxed [`AtomicU64`], so the hot path records without
//! taking a lock. Snapshots are plain-old-data and merge associatively,
//! which is what lets per-shard histograms be combined across threads.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 buckets — enough for the full `u64` range.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: floor(log2(value)), with 0 mapping to bucket 0.
#[must_use]
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).saturating_sub(1)
}

/// Inclusive upper bound of bucket `i` (used for quantile estimates and
/// the Prometheus `le` label).
#[must_use]
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// A lock-free log2 histogram. All updates use relaxed atomics: the
/// counters are monotone and independently meaningful, so no ordering
/// between them is required — a snapshot taken while writers are active
/// is a consistent *lower bound*, and exact once writers quiesce.
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("AtomicHistogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish_non_exhaustive()
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; relaxed ordering only.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Copies the current state into a plain-old-data snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// Plain-old-data copy of an [`AtomicHistogram`]. Mergeable: `merge` is
/// associative and commutative (bucket-wise `+`, `min`, `max`), so any
/// tree of per-shard / per-thread merges yields the same totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` covers `[2^i, 2^(i+1))`).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the bucket holding the
    /// q-th observation, clamped to the observed max (same estimator as
    /// `speedybox_stats::Histogram::quantile`).
    #[must_use]
    // `q` is clamped to [0, 1], so the product is in [0, count] and the
    // cast back to u64 cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Observed min, or 0 when empty (for display).
    #[must_use]
    pub fn display_min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn record_and_snapshot() {
        let h = AtomicHistogram::new();
        for v in [0, 1, 2, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1103);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[1], 1); // 2
        assert_eq!(s.buckets[6], 1); // 100
        assert_eq!(s.buckets[9], 1); // 1000
    }

    #[test]
    fn merge_totals() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(5);
        a.record(7);
        b.record(1_000_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 1_000_012);
        assert_eq!(m.min, 5);
        assert_eq!(m.max, 1_000_000);
    }

    #[test]
    fn quantile_matches_stats_estimator() {
        let h = AtomicHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p100 is exactly the max; lower quantiles are bucket upper bounds.
        assert_eq!(s.quantile(1.0), 100);
        assert!(s.quantile(0.5) >= 50);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn empty_snapshot_display() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.display_min(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
