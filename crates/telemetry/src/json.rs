//! A minimal JSON reader.
//!
//! The workspace builds offline against vendored stub crates, so there is
//! no `serde`. Snapshot dumps and the CI perf-gate baseline are small,
//! flat documents; this hand-rolled recursive-descent parser covers the
//! full JSON grammar in ~150 lines and keeps numbers as raw text so `u64`
//! values round-trip without `f64` precision loss.

/// A parsed JSON value. Numbers keep their source text so callers choose
/// `u64` or `f64` interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integer number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    raw.parse::<f64>().map_err(|e| format!("bad number '{raw}': {e}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape '\\{}'", *other as char)),
                }
            }
            Some(&c) => {
                // Collect the full UTF-8 sequence starting at this byte.
                let ch_len = if c < 0x80 {
                    1
                } else if c >= 0xF0 {
                    4
                } else if c >= 0xE0 {
                    3
                } else {
                    2
                };
                let chunk = bytes.get(*pos..*pos + ch_len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escapes a string for embedding in JSON output.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX;
        let doc = Json::parse(&big.to_string()).unwrap();
        assert_eq!(doc.as_u64(), Some(big));
    }

    #[test]
    fn parses_nested_structure() {
        let doc = Json::parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        let arr = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(doc.get("d"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn escape_round_trip() {
        let original = "line\n\"quoted\"\tend";
        let doc = Json::parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(doc.as_str(), Some(original));
    }
}
