//! Property tests: histogram and snapshot merging is associative and
//! commutative, and merging per-shard snapshots equals recording the
//! concatenated stream into one histogram.

use proptest::prelude::*;
use speedybox_telemetry::{AtomicHistogram, HistogramSnapshot, PathClass, Telemetry};

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = AtomicHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
        c in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha;
        left.merge(&hb);
        left.merge(&hc);

        // a ⊕ (b ⊕ c)
        let mut bc = hb;
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_equals_concatenated_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..40),
        b in prop::collection::vec(0u64..1_000_000, 0..40),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));

        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, hist_of(&concat));
    }

    #[test]
    fn sharded_recording_equals_single_shard(
        values in prop::collection::vec((0u64..4096, 0u64..100_000), 0..60),
    ) {
        // Record (hint, latency) pairs into a 8-shard hub and a 1-shard
        // hub; the merged snapshots must agree on every total.
        let sharded = Telemetry::new(8);
        let single = Telemetry::new(1);
        for &(hint, latency) in &values {
            sharded.shard(hint).record_packet(PathClass::Subsequent, latency, true);
            single.shard(hint).record_packet(PathClass::Subsequent, latency, true);
        }
        prop_assert_eq!(sharded.snapshot(), single.snapshot());
    }

    #[test]
    fn snapshot_merge_is_associative(
        specs in prop::collection::vec((0u64..3, 0u64..100_000), 0..30),
    ) {
        // Build three snapshots by splitting the stream round-robin.
        let hubs = [Telemetry::new(1), Telemetry::new(2), Telemetry::new(4)];
        for (i, &(path, latency)) in specs.iter().enumerate() {
            let path = PathClass::ALL[usize::try_from(path).unwrap()];
            hubs[i % 3].shard(i as u64).record_packet(path, latency, latency % 7 != 0);
        }
        let [sa, sb, sc] = [hubs[0].snapshot(), hubs[1].snapshot(), hubs[2].snapshot()];

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.packets, specs.len() as u64);
    }
}
