//! Property-based tests for the rule-compilation layer: a rule's compiled
//! micro-op program must be observationally identical to interpreting its
//! consolidated action — across random modify/encap/decap/drop chains,
//! across L4 protocols, and across Event-Table rewrites — and the batched
//! fast path's flow-affinity memo must never serve a stale rule.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use speedybox_mat::action::{EncapSpec, HeaderAction};
use speedybox_mat::compile;
use speedybox_mat::consolidate::consolidate;
use speedybox_mat::event::{Event, RulePatch};
use speedybox_mat::global::{FastPathOutcome, GlobalMat};
use speedybox_mat::local::{LocalMat, NfId};
use speedybox_mat::ops::OpCounter;
use speedybox_packet::{Fid, HeaderField, Packet, PacketBuilder};

fn arb_field() -> impl Strategy<Value = HeaderField> {
    prop::sample::select(vec![
        HeaderField::SrcIp,
        HeaderField::DstIp,
        HeaderField::SrcPort,
        HeaderField::DstPort,
        HeaderField::Ttl,
        HeaderField::Tos,
        HeaderField::SrcMac,
        HeaderField::DstMac,
    ])
}

fn arb_modify() -> impl Strategy<Value = HeaderAction> {
    (arb_field(), any::<u64>()).prop_map(|(f, v)| {
        let value = match f {
            HeaderField::SrcIp | HeaderField::DstIp => {
                Ipv4Addr::from((v & 0xFFFF_FFFF) as u32).into()
            }
            HeaderField::SrcPort | HeaderField::DstPort => ((v & 0xFFFF) as u16).into(),
            HeaderField::SrcMac | HeaderField::DstMac => (v & 0xFFFF_FFFF_FFFF).into(),
            _ => ((v & 0xFF) as u8).into(),
        };
        HeaderAction::Modify(vec![(f, value)])
    })
}

fn arb_action() -> impl Strategy<Value = HeaderAction> {
    prop_oneof![
        Just(HeaderAction::Forward),
        arb_modify(),
        (0u32..16).prop_map(|spi| HeaderAction::Encap(EncapSpec::new(spi))),
    ]
}

fn tcp_packet() -> Packet {
    PacketBuilder::tcp()
        .src("10.1.2.3:5555".parse().unwrap())
        .dst("10.4.5.6:80".parse().unwrap())
        .payload(b"compiled-vs-interpreted")
        .build()
}

fn udp_packet() -> Packet {
    PacketBuilder::udp()
        .src("10.1.2.3:5555".parse().unwrap())
        .dst("10.4.5.6:53".parse().unwrap())
        .payload(b"compiled-vs-interpreted")
        .build()
}

/// Runs both execution paths over `base` and asserts byte-identical output
/// and identical forward/drop verdicts.
fn assert_equivalent(actions: &[HeaderAction], base: &Packet) {
    let consolidated = consolidate(actions);
    let program = compile(&consolidated);
    let mut interpreted = base.clone();
    let mut compiled = base.clone();
    let mut iops = OpCounter::default();
    let mut cops = OpCounter::default();
    let isurv = consolidated.apply(&mut interpreted, &mut iops).unwrap();
    let csurv = program.run(&mut compiled, &mut cops).unwrap();
    assert_eq!(isurv, csurv, "verdict diverged for {actions:?}");
    assert_eq!(interpreted.as_bytes(), compiled.as_bytes(), "bytes diverged for {actions:?}");
    if isurv {
        assert!(compiled.verify_checksums().unwrap(), "bad checksums for {actions:?}");
    }
}

proptest! {
    /// The tentpole claim: for any chain of modifies/encaps the lowered
    /// program and the interpreter agree byte-for-byte on TCP and UDP.
    #[test]
    fn compiled_equals_interpreted(actions in prop::collection::vec(arb_action(), 0..6)) {
        assert_equivalent(&actions, &tcp_packet());
        assert_equivalent(&actions, &udp_packet());
    }

    /// A drop anywhere makes both paths drop, regardless of surroundings.
    #[test]
    fn compiled_drop_equals_interpreted(
        before in prop::collection::vec(arb_action(), 0..3),
        after in prop::collection::vec(arb_action(), 0..3),
    ) {
        let mut actions = before;
        actions.push(HeaderAction::Drop);
        actions.extend(after);
        assert_equivalent(&actions, &tcp_packet());
    }

    /// Net decaps: a chain that strips pre-existing tunnel headers lowers
    /// to `PopDecap` ops that match the interpreter on pre-encapsulated
    /// packets.
    #[test]
    fn compiled_decaps_equal_interpreted(
        layers in 1usize..3,
        modifies in prop::collection::vec(arb_modify(), 0..3),
    ) {
        let mut actions: Vec<HeaderAction> =
            (0..layers).map(|i| HeaderAction::Decap(EncapSpec::new(i as u32))).collect();
        actions.extend(modifies);
        for base in [tcp_packet(), udp_packet()] {
            let mut encapped = base;
            for i in 0..layers {
                encapped.encap_ah(i as u32, 0).unwrap();
            }
            assert_equivalent(&actions, &encapped);
        }
    }

    /// Event-Table rewrites rebuild the rule through `GlobalRule::new`, so
    /// the stored program always matches the patched consolidated action —
    /// and the post-rewrite fast path still equals interpretation.
    #[test]
    fn event_rewritten_rules_recompile(
        original_port in 1024u16..u16::MAX,
        patched in arb_modify(),
    ) {
        let local = Arc::new(LocalMat::new(NfId::new(0)));
        let gm = GlobalMat::new(vec![local.clone()]);
        let (mut first, fid) = fid_packet();
        let mut ops = OpCounter::default();
        local.add_header_action(
            fid,
            HeaderAction::modify(HeaderField::DstPort, original_port),
            &mut ops,
        );
        let patch_action = patched.clone();
        gm.events().register(Event::new(
            fid,
            NfId::new(0),
            "rewrite-once",
            |_| true,
            move |_| RulePatch::set_action(patch_action.clone()),
        ));
        gm.install(fid, &mut ops);
        // First fast-path packet fires the event and re-consolidates.
        gm.process(&mut first, &mut ops).unwrap();
        let rule = gm.rule(fid).expect("rule still installed");
        prop_assert_eq!(&compile(&rule.consolidated), &rule.compiled);
        assert_equivalent(std::slice::from_ref(&patched), &tcp_packet());
        // The live table now applies the patched action.
        let (mut next, _) = fid_packet();
        let mut expect = next.clone();
        let mut eops = OpCounter::default();
        let survived = rule.consolidated.apply(&mut expect, &mut eops).unwrap();
        let outcome = gm.process(&mut next, &mut ops).unwrap();
        match outcome {
            FastPathOutcome::Forwarded => {
                prop_assert!(survived);
                prop_assert_eq!(next.as_bytes(), expect.as_bytes());
            }
            FastPathOutcome::Dropped => prop_assert!(!survived),
            FastPathOutcome::NoRule => prop_assert!(false, "rule disappeared"),
        }
    }
}

fn fid_packet() -> (Packet, Fid) {
    let mut p = tcp_packet();
    let fid = p.five_tuple().unwrap().fid();
    p.set_fid(fid);
    (p, fid)
}

fn batch_of(n: usize) -> Vec<Packet> {
    (0..n).map(|_| fid_packet().0).collect()
}

/// The within-batch affinity memo must be invalidated the moment an event
/// rewrites the rule: batched processing stays byte-identical to one-at-a-
/// time processing even when the rewrite lands mid-batch.
#[test]
fn affinity_memo_invalidated_by_mid_batch_rewrite() {
    let build = || {
        let local = Arc::new(LocalMat::new(NfId::new(0)));
        let gm = GlobalMat::new(vec![local.clone()]);
        let (_, fid) = fid_packet();
        let mut ops = OpCounter::default();
        local.add_header_action(fid, HeaderAction::modify(HeaderField::DstPort, 8080u16), &mut ops);
        // Conditions must be monotonic: the table probes them once under
        // the read lock and again under the write lock when triggered.
        let seen = Arc::new(AtomicU64::new(0));
        gm.events().register(Event::new(
            fid,
            NfId::new(0),
            "rewrite-after-3",
            move |_| seen.fetch_add(1, Ordering::Relaxed) + 1 >= 3,
            |_| RulePatch::set_action(HeaderAction::modify(HeaderField::DstPort, 9999u16)),
        ));
        gm.install(fid, &mut ops);
        (gm, fid)
    };

    let (batched_gm, _) = build();
    let mut batched = batch_of(8);
    let mut bops = vec![OpCounter::default(); batched.len()];
    let batched_out = batched_gm.process_batch(&mut batched, &mut bops).unwrap();

    let (single_gm, _) = build();
    let mut singles = batch_of(8);
    let mut single_out = Vec::new();
    for p in &mut singles {
        let mut ops = OpCounter::default();
        single_out.push(single_gm.process(p, &mut ops).unwrap());
    }

    assert_eq!(batched_out, single_out);
    for (b, s) in batched.iter().zip(&singles) {
        assert_eq!(b.as_bytes(), s.as_bytes());
    }
    // The rewrite actually took effect mid-batch: early packets carry the
    // original port, late packets the patched one (the event fires on the
    // third fast-path packet, before its rule is applied).
    assert_eq!(batched[0].get_field(HeaderField::DstPort).unwrap().as_port(), 8080);
    assert_eq!(batched[1].get_field(HeaderField::DstPort).unwrap().as_port(), 8080);
    assert_eq!(batched[2].get_field(HeaderField::DstPort).unwrap().as_port(), 9999);
    assert_eq!(batched[7].get_field(HeaderField::DstPort).unwrap().as_port(), 9999);
}

/// A removed rule must not be resurrected by any cached handle: the next
/// batch reports `NoRule` for every packet of the flow.
#[test]
fn affinity_memo_does_not_survive_rule_removal() {
    let local = Arc::new(LocalMat::new(NfId::new(0)));
    let gm = GlobalMat::new(vec![local.clone()]);
    let (_, fid) = fid_packet();
    let mut ops = OpCounter::default();
    local.add_header_action(fid, HeaderAction::modify(HeaderField::DstPort, 8080u16), &mut ops);
    gm.install(fid, &mut ops);

    let mut warm = batch_of(4);
    let mut wops = vec![OpCounter::default(); warm.len()];
    let out = gm.process_batch(&mut warm, &mut wops).unwrap();
    assert!(out.iter().all(|o| *o == FastPathOutcome::Forwarded));

    gm.remove_flow(fid);
    let mut cold = batch_of(4);
    let mut cops = vec![OpCounter::default(); cold.len()];
    let out = gm.process_batch(&mut cold, &mut cops).unwrap();
    assert!(out.iter().all(|o| *o == FastPathOutcome::NoRule), "{out:?}");
}

/// Re-installing a flow's rule between batches (the expiry-then-reinstall
/// lifecycle) must take effect immediately; no batch-to-batch cache exists.
#[test]
fn reinstalled_rule_takes_effect_next_batch() {
    let local = Arc::new(LocalMat::new(NfId::new(0)));
    let gm = GlobalMat::new(vec![local.clone()]);
    let (_, fid) = fid_packet();
    let mut ops = OpCounter::default();
    local.add_header_action(fid, HeaderAction::modify(HeaderField::DstPort, 8080u16), &mut ops);
    gm.install(fid, &mut ops);

    let mut first = batch_of(3);
    let mut fops = vec![OpCounter::default(); first.len()];
    gm.process_batch(&mut first, &mut fops).unwrap();
    assert!(first.iter().all(|p| p.get_field(HeaderField::DstPort).unwrap().as_port() == 8080));

    // Expire and re-learn the flow with a different rewrite.
    gm.remove_flow(fid);
    local.set_header_actions(fid, vec![HeaderAction::modify(HeaderField::DstPort, 4433u16)]);
    gm.install(fid, &mut ops);

    let mut second = batch_of(3);
    let mut sops = vec![OpCounter::default(); second.len()];
    gm.process_batch(&mut second, &mut sops).unwrap();
    assert!(second.iter().all(|p| p.get_field(HeaderField::DstPort).unwrap().as_port() == 4433));
}
