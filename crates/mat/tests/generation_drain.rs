//! Threaded regression tests for the generation-drain edge the model
//! checker proves in miniature (`rcu_drain_deferred` in
//! `vendor/arcswap/src/model.rs`, run by `tests/model_rcu.rs`): a reader
//! in flight defers reclamation of retired slot generations, and an
//! explicit [`FlowTable::collect_generations`] after quiescence must drain
//! the backlog to zero — deferred forever is a leak, drained early is a
//! use-after-free. The model checker explores every interleaving of a
//! 3-thread distillation; these tests hammer the real slab/ArcSwap table
//! with OS threads to keep the distillation honest.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use speedybox_mat::{AdmissionPolicy, FlowTable};
use speedybox_packet::Fid;

const FLOWS: u32 = 64;

fn filled_table() -> Arc<FlowTable<u64>> {
    let table = Arc::new(FlowTable::new(4, 4096, AdmissionPolicy::EvictOldest));
    for n in 0..FLOWS {
        table.insert(Fid::new(n), Arc::new(u64::from(n)), 0);
    }
    table
}

/// Writer churn retires generations while readers race the reclamation
/// window; after every thread quiesces, one explicit collect must leave
/// zero pending generations and the latest values visible.
#[test]
fn drain_completes_after_reader_quiescence() {
    let table = filled_table();
    let stop = Arc::new(AtomicBool::new(false));
    const ROUNDS: u64 = 400;

    let readers: Vec<_> = (0..4)
        .map(|r| {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut held = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    for n in 0..FLOWS {
                        let value = table.get(Fid::new(n)).expect("flow stays present");
                        // Every observed generation encodes its flow: a
                        // freed-too-early value would read garbage here.
                        assert_eq!(*value % u64::from(FLOWS), u64::from(n));
                        // Pin a few generations past their retirement so
                        // the drain really is deferred, not just racing.
                        if n % 16 == r {
                            held.push(value);
                        }
                    }
                    if held.len() > 1024 {
                        held.clear();
                    }
                }
            })
        })
        .collect();

    for round in 1..=ROUNDS {
        for n in 0..FLOWS {
            let v = round * u64::from(FLOWS) + u64::from(n);
            assert!(table.replace_if_present(Fid::new(n), Arc::new(v), round), "flow {n} present");
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // Quiescent now: one collect drains every retired generation.
    table.collect_generations();
    assert_eq!(table.pending_generations(), 0, "deferred generations must drain at quiescence");
    for n in 0..FLOWS {
        assert_eq!(*table.get(Fid::new(n)).unwrap(), ROUNDS * u64::from(FLOWS) + u64::from(n));
    }
}

/// Slot recycling (remove, then a different flow re-using the slab slot)
/// retires the shared-empty generation too; the backlog must still drain
/// to zero and recycled slots must serve the new owner only.
#[test]
fn recycling_slots_drains_fully() {
    let table = filled_table();
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let table = Arc::clone(&table);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for n in 0..(2 * FLOWS) {
                    if let Some(value) = table.get(Fid::new(n)) {
                        assert_eq!(*value % u64::from(2 * FLOWS), u64::from(n));
                    }
                }
            }
        })
    };

    for round in 0..200u64 {
        // Evict the even flows, re-admit odd-offset flows into the freed
        // slots, then restore — every round recycles half the slab twice.
        for n in (0..FLOWS).step_by(2) {
            table.remove(Fid::new(n));
        }
        for n in (0..FLOWS).step_by(2) {
            let fid = FLOWS + n; // different flow, recycled slot
            table.insert(Fid::new(fid), Arc::new(u64::from(fid)), round);
        }
        for n in (0..FLOWS).step_by(2) {
            table.remove(Fid::new(FLOWS + n));
            table.insert(Fid::new(n), Arc::new(u64::from(n)), round);
        }
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().unwrap();

    table.collect_generations();
    assert_eq!(table.pending_generations(), 0, "recycled-slot generations must drain");
    for n in 0..FLOWS {
        if n % 2 == 0 {
            assert_eq!(*table.get(Fid::new(n)).unwrap(), u64::from(n));
        }
        assert!(table.get(Fid::new(FLOWS + n)).is_none(), "recycled owner evicted");
    }
}
