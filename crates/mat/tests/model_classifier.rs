//! Exhaustive model-check tier for the batch affinity-memo protocol
//! (runs under plain `cargo test`; CI's `model-check` job runs exactly
//! this).
//!
//! Clean runs prove memo-run generation consistency and memo-handle
//! liveness across a concurrent rule republication; the mutation twin
//! proves a raw-handle memo is caught as a use-after-free with a
//! deterministically replayable schedule.
#![cfg(feature = "model")]

use speedybox_check::{BugKind, Checker, Config};
use speedybox_mat::model::{scenarios, ClMutation};

const BOUND: usize = 3;

#[test]
fn memo_vs_republish_is_clean() {
    let out = Checker::new(Config::exhaustive(BOUND))
        .check("cl-memo-vs-republish", scenarios::cl_memo_vs_republish(ClMutation::None));
    out.assert_clean();
    // Both interleavings of the memo run and the republication are
    // reachable: the memo pinning the old generation, and the batch
    // starting on the new one.
    out.assert_fact("memo pinned the pre-publication rule");
    out.assert_fact("batch began after republication");
}

#[test]
fn mutation_memo_raw_handle_is_caught() {
    let out = Checker::new(Config::exhaustive(BOUND))
        .check("cl-memo-raw-handle", scenarios::cl_memo_vs_republish(ClMutation::MemoRawHandle));
    let bug = out.expect_bug(BugKind::UseAfterFree).clone();
    assert!(!bug.schedule.is_empty() && !bug.trace.is_empty());
    let replayed = Checker::new(Config::replay(bug.schedule.parse().expect("schedule parses")))
        .check("replay", scenarios::cl_memo_vs_republish(ClMutation::MemoRawHandle));
    assert!(
        replayed.bugs.iter().any(|b| b.kind == BugKind::UseAfterFree),
        "schedule `{}` did not replay to the use-after-free",
        bug.schedule
    );
}
