//! Property-based tests for the consolidation algorithm and the parallel
//! scheduler — the paper's central correctness claims.

#![allow(clippy::cast_possible_truncation)] // test data built from loop indices

use std::net::Ipv4Addr;
use std::sync::Arc;

use proptest::prelude::*;
use speedybox_mat::action::{EncapSpec, HeaderAction};
use speedybox_mat::classifier::{PacketClass, PacketClassifier};
use speedybox_mat::consolidate::{consolidate, xor_compose_all};
use speedybox_mat::global::GlobalMat;
use speedybox_mat::local::{LocalMat, NfId};
use speedybox_mat::ops::OpCounter;
use speedybox_mat::parallel::{can_parallelize, schedule_batches};
use speedybox_mat::state_fn::PayloadAccess;
use speedybox_packet::{Fid, HeaderField, Packet, PacketBuilder, TcpFlags};

fn arb_field() -> impl Strategy<Value = HeaderField> {
    prop::sample::select(vec![
        HeaderField::SrcIp,
        HeaderField::DstIp,
        HeaderField::SrcPort,
        HeaderField::DstPort,
        HeaderField::Ttl,
        HeaderField::Tos,
    ])
}

fn arb_action() -> impl Strategy<Value = HeaderAction> {
    prop_oneof![
        Just(HeaderAction::Forward),
        // Drop handled in a dedicated test (it short-circuits everything).
        (arb_field(), any::<u32>()).prop_map(|(f, v)| {
            let value = match f {
                HeaderField::SrcIp | HeaderField::DstIp => Ipv4Addr::from(v).into(),
                HeaderField::SrcPort | HeaderField::DstPort => (v as u16).into(),
                _ => (v as u8).into(),
            };
            HeaderAction::Modify(vec![(f, value)])
        }),
        (0u32..16).prop_map(|spi| HeaderAction::Encap(EncapSpec::new(spi))),
    ]
}

fn base_packet() -> Packet {
    PacketBuilder::tcp()
        .src("10.1.2.3:5555".parse().unwrap())
        .dst("10.4.5.6:80".parse().unwrap())
        .payload(b"payload-bytes")
        .build()
}

/// Applies actions one by one the way the original chain would, tracking
/// whether the packet survives. Decaps that would fail (no header present)
/// are skipped by construction of `arb_action` (we only generate encaps).
fn apply_sequentially(actions: &[HeaderAction], pkt: &mut Packet) -> bool {
    let mut ops = OpCounter::default();
    for a in actions {
        match a.apply(pkt, &mut ops) {
            Ok(true) => {}
            Ok(false) => return false,
            Err(e) => panic!("sequential application failed: {e}"),
        }
    }
    true
}

proptest! {
    /// THE core claim: the consolidated action produces a byte-identical
    /// packet to sequential application of the chain's actions.
    #[test]
    fn consolidation_equals_sequential(actions in prop::collection::vec(arb_action(), 0..6)) {
        let mut seq = base_packet();
        let survived_seq = apply_sequentially(&actions, &mut seq);
        prop_assert!(survived_seq);

        let mut fast = base_packet();
        let mut ops = OpCounter::default();
        let survived_fast = consolidate(&actions).apply(&mut fast, &mut ops).unwrap();
        prop_assert!(survived_fast);
        prop_assert_eq!(seq.as_bytes(), fast.as_bytes());
    }

    /// With balanced decaps mixed in, consolidation still matches (decaps
    /// only ever pop headers pushed earlier in the same chain).
    #[test]
    fn consolidation_with_balanced_encap_decap(
        spis in prop::collection::vec(0u32..8, 1..5),
        modify_port in any::<u16>(),
    ) {
        let mut actions = Vec::new();
        for &spi in &spis {
            actions.push(HeaderAction::Encap(EncapSpec::new(spi)));
        }
        actions.push(HeaderAction::modify(HeaderField::DstPort, modify_port));
        for &spi in spis.iter().rev() {
            actions.push(HeaderAction::Decap(EncapSpec::new(spi)));
        }
        let mut seq = base_packet();
        prop_assert!(apply_sequentially(&actions, &mut seq));
        let mut fast = base_packet();
        let mut ops = OpCounter::default();
        let c = consolidate(&actions);
        prop_assert_eq!(c.net_decaps(), 0);
        prop_assert!(c.net_encaps().is_empty());
        prop_assert!(c.apply(&mut fast, &mut ops).unwrap());
        prop_assert_eq!(seq.as_bytes(), fast.as_bytes());
    }

    /// A drop anywhere in the chain makes the consolidated action a drop,
    /// no matter what surrounds it.
    #[test]
    fn drop_dominates(
        before in prop::collection::vec(arb_action(), 0..4),
        after in prop::collection::vec(arb_action(), 0..4),
    ) {
        let mut actions = before;
        actions.push(HeaderAction::Drop);
        actions.extend(after);
        prop_assert!(consolidate(&actions).is_drop());
    }

    /// The consolidated action performs at most one checksum fix, while the
    /// sequential chain performs one per modifying NF (the R1/R3 saving).
    #[test]
    fn fast_path_fixes_checksums_once(actions in prop::collection::vec(arb_action(), 1..6)) {
        let mut fast = base_packet();
        let mut ops = OpCounter::default();
        consolidate(&actions).apply(&mut fast, &mut ops).unwrap();
        prop_assert!(ops.checksum_fixes <= 1);
        prop_assert!(fast.verify_checksums().unwrap());
    }

    /// The paper's XOR/OR composition formula agrees with field-level merge
    /// for disjoint-field modifies (pre-checksum state).
    #[test]
    fn xor_formula_matches_field_merge(
        dst_ip in any::<u32>(),
        src_port in any::<u16>(),
        ttl in any::<u8>(),
    ) {
        let base = base_packet();
        // Three single-field modifies on pairwise-distinct fields.
        let writes: [(HeaderField, speedybox_packet::FieldValue); 3] = [
            (HeaderField::DstIp, Ipv4Addr::from(dst_ip).into()),
            (HeaderField::SrcPort, src_port.into()),
            (HeaderField::Ttl, ttl.into()),
        ];
        // Per-modify outputs (no checksum fixing: compose raw states).
        let outputs: Vec<Vec<u8>> = writes
            .iter()
            .map(|(f, v)| {
                let mut p = base.clone();
                p.set_field(*f, *v).unwrap();
                p.as_bytes().to_vec()
            })
            .collect();
        let refs: Vec<&[u8]> = outputs.iter().map(Vec::as_slice).collect();
        let composed = xor_compose_all(base.as_bytes(), &refs);

        let mut merged = base;
        for (f, v) in writes {
            merged.set_field(f, v).unwrap();
        }
        prop_assert_eq!(composed, merged.as_bytes().to_vec());
    }

    /// Scheduling invariants: order preserved, waves conflict-free, all
    /// batches scheduled exactly once.
    #[test]
    fn schedule_invariants(accesses in prop::collection::vec(
        prop::sample::select(vec![
            PayloadAccess::Write,
            PayloadAccess::Read,
            PayloadAccess::Ignore,
        ]),
        0..12,
    )) {
        let waves = schedule_batches(&accesses);
        let flat: Vec<usize> = waves.iter().flatten().copied().collect();
        let expect: Vec<usize> = (0..accesses.len()).collect();
        prop_assert_eq!(flat, expect, "every batch scheduled once, in order");
        for wave in &waves {
            for (x, &i) in wave.iter().enumerate() {
                for &j in &wave[x + 1..] {
                    prop_assert!(
                        can_parallelize(accesses[i], accesses[j]),
                        "conflicting batches {} and {} share a wave",
                        i,
                        j
                    );
                }
            }
        }
        // A writer never shares a wave with a reader or another writer.
        for wave in &waves {
            let writers = wave.iter().filter(|&&i| accesses[i] == PayloadAccess::Write).count();
            let readers = wave.iter().filter(|&&i| accesses[i] == PayloadAccess::Read).count();
            prop_assert!(writers <= 1);
            prop_assert!(writers == 0 || readers == 0);
        }
    }

    /// Consolidation is idempotent in effect: applying the consolidated
    /// action of an already-consolidated single modify equals the original.
    #[test]
    fn consolidate_single_action_faithful(port in any::<u16>()) {
        let action = HeaderAction::modify(HeaderField::DstPort, port);
        let mut direct = base_packet();
        let mut ops = OpCounter::default();
        action.apply(&mut direct, &mut ops).unwrap();
        let mut via = base_packet();
        consolidate(std::slice::from_ref(&action)).apply(&mut via, &mut ops).unwrap();
        prop_assert_eq!(direct.as_bytes(), via.as_bytes());
    }

    /// Shard-invariance: the shard count of the Packet Classifier and the
    /// Global MAT is pure lock granularity. Driving the same interleaved
    /// flow mix (including FIN teardowns) through 1-, 4- and 16-shard
    /// tables yields identical classifications, identical install/hit
    /// traces, and identical final table contents.
    #[test]
    fn shard_count_never_changes_results(
        flows in prop::collection::vec((1024u16..u16::MAX, 1usize..6), 1..8),
        close_flows in any::<bool>(),
    ) {
        // Interleave flows round-robin; optionally end each with a FIN.
        let mut stream = Vec::new();
        let longest = flows.iter().map(|&(_, n)| n).max().unwrap_or(0);
        for round in 0..longest {
            for &(port, n) in &flows {
                if round < n {
                    let mut b = PacketBuilder::tcp();
                    b.src(format!("10.7.0.1:{port}").parse().unwrap())
                        .dst("10.8.0.1:80".parse().unwrap())
                        .seq(round as u32)
                        .payload(b"shard-invariance");
                    if close_flows && round == n - 1 {
                        b.flags(TcpFlags::FIN | TcpFlags::ACK);
                    }
                    stream.push(b.build());
                }
            }
        }

        // One run = classify the stream and mirror the platform's MAT
        // bookkeeping (install on Initial, prepare on Subsequent, remove on
        // FIN); the observable trace must not depend on the shard count.
        type TraceEntry = (Fid, PacketClass, bool, u64);
        let run = |shards: usize| -> (Vec<TraceEntry>, usize, usize, String) {
            let classifier = PacketClassifier::with_shards(shards);
            let local = Arc::new(LocalMat::new(NfId::new(0)));
            let gm = GlobalMat::with_shards(vec![local.clone()], shards);
            let mut trace = Vec::new();
            let mut ops = OpCounter::default();
            for p in &stream {
                let mut p = p.clone();
                let c = classifier.classify(&mut p, &mut ops).unwrap();
                match c.class {
                    PacketClass::Initial => {
                        local.set_header_actions(c.fid, vec![HeaderAction::Forward]);
                        gm.install(c.fid, &mut ops);
                    }
                    PacketClass::Subsequent | PacketClass::Handshake => {
                        let _ = gm.prepare(c.fid, &mut ops);
                    }
                    PacketClass::Collision | PacketClass::Rejected => {}
                }
                let hits = gm.rule(c.fid).map_or(0, |r| r.hits());
                trace.push((c.fid, c.class, c.closes_flow, hits));
                if c.closes_flow && c.class != PacketClass::Collision {
                    classifier.remove_flow(c.fid);
                    gm.remove_flow(c.fid);
                }
            }
            (trace, classifier.len(), gm.len(), gm.dump())
        };

        let baseline = run(1);
        for shards in [4, 16] {
            let other = run(shards);
            prop_assert_eq!(&baseline.0, &other.0, "trace diverged at {} shards", shards);
            prop_assert_eq!(baseline.1, other.1, "classifier len at {} shards", shards);
            prop_assert_eq!(baseline.2, other.2, "global len at {} shards", shards);
            prop_assert_eq!(&baseline.3, &other.3, "MAT dump at {} shards", shards);
        }
        // Shard counts round up to the next power of two but never alter
        // capacity semantics.
        prop_assert_eq!(PacketClassifier::with_shards(3).shard_count(), 4);
    }
}
