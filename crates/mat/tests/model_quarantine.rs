//! Exhaustive model-check tier for the NF-recovery quarantine/republish
//! handshake (runs under plain `cargo test`; CI's `model-check` job runs
//! exactly this).
//!
//! Clean runs prove — over every interleaving within the preemption
//! bound — that a wait-free fast-path reader racing a kill/recovery
//! never serves a rule consolidated from restored-but-not-replayed NF
//! state, that the quarantine gate refuses mid-window installs, and that
//! the quiescent model ends unquarantined with a live rule republished.
//! The mutation twin proves the checker catches the protocol weakening
//! that republishes before the in-flight log replays.
#![cfg(feature = "model")]

use speedybox_check::{BugKind, Checker, Config};
use speedybox_mat::model::{scenarios, QMutation};

const BOUND: usize = 2;

#[test]
fn kill_vs_reader_is_clean() {
    let out = Checker::new(Config::exhaustive(BOUND))
        .check("q-kill-vs-reader", scenarios::q_kill_vs_reader(QMutation::None));
    out.assert_clean();
    // The reader races the recovery window both ways, and the churn
    // install both lands and gets refused by the gate.
    out.assert_fact("reader hit the fast path");
    out.assert_fact("reader fell back to the baseline walk");
    out.assert_fact("churn install landed");
    out.assert_fact("churn install refused by the quarantine gate");
}

#[test]
fn mutation_republish_before_replay_is_caught() {
    let out = Checker::new(Config::exhaustive(BOUND)).check(
        "q-republish-before-replay",
        scenarios::q_kill_vs_reader(QMutation::RepublishBeforeReplay),
    );
    let bug = out.expect_bug(BugKind::Panic).clone();
    assert!(
        bug.message.contains("un-replayed"),
        "expected the replay-before-republish invariant, got: {}",
        bug.message
    );
    // The reported schedule replays deterministically to the same bug.
    let replayed = Checker::new(Config::replay(bug.schedule.parse().expect("schedule parses")))
        .check("replay", scenarios::q_kill_vs_reader(QMutation::RepublishBeforeReplay));
    assert!(
        replayed.bugs.iter().any(|b| b.kind == BugKind::Panic),
        "schedule `{}` did not replay to the violation",
        bug.schedule
    );
}
