//! Exhaustive model-check tier for the flow-table slot protocol (runs
//! under plain `cargo test`; CI's `model-check` job runs exactly this).
//!
//! Clean runs prove — over every interleaving within the preemption
//! bound — eviction-vs-rewrite atomicity, index/slot agreement across
//! slab recycling, reader isolation under recycle, and drain completion
//! at quiescence. The mutation twins prove the checker catches the
//! corresponding protocol weakenings, with deterministically replayable
//! schedules.
#![cfg(feature = "model")]

use speedybox_check::{BugKind, Checker, Config};
use speedybox_mat::model::{scenarios, FtMutation};

const BOUND: usize = 2;

#[test]
fn evict_vs_rewrite_is_clean() {
    let out = Checker::new(Config::exhaustive(BOUND))
        .check("ft-evict-vs-rewrite", scenarios::ft_evict_vs_rewrite(FtMutation::None));
    out.assert_clean();
    // Both race outcomes are reachable within the bound: the eviction
    // winning, and the rewrite finding the flow present first.
    out.assert_fact("eviction won the race");
    out.assert_fact("rewrite found the flow present");
}

#[test]
fn recycle_vs_reader_is_clean() {
    let out = Checker::new(Config::exhaustive(BOUND))
        .check("ft-recycle-vs-reader", scenarios::ft_recycle_vs_reader(FtMutation::None));
    out.assert_clean();
    // The reader races the recycle both ways.
    out.assert_fact("reader hit before the recycle");
    out.assert_fact("reader missed (evicted or mid-recycle)");
}

#[test]
fn mutation_toctou_replace_is_caught() {
    let out = Checker::new(Config::exhaustive(BOUND))
        .check("ft-toctou-replace", scenarios::ft_evict_vs_rewrite(FtMutation::ToctouReplace));
    let bug = out.expect_bug(BugKind::Panic).clone();
    assert!(
        bug.message.contains("resurrected"),
        "expected the resurrection invariant, got: {}",
        bug.message
    );
    // The reported schedule replays deterministically to the same bug.
    let replayed = Checker::new(Config::replay(bug.schedule.parse().expect("schedule parses")))
        .check("replay", scenarios::ft_evict_vs_rewrite(FtMutation::ToctouReplace));
    assert!(
        replayed.bugs.iter().any(|b| b.kind == BugKind::Panic),
        "schedule `{}` did not replay to the violation",
        bug.schedule
    );
}

#[test]
fn mutation_skip_index_reset_is_caught() {
    let out = Checker::new(Config::exhaustive(BOUND))
        .check("ft-skip-index-reset", scenarios::ft_recycle_vs_reader(FtMutation::SkipIndexReset));
    let bug = out.expect_bug(BugKind::Panic).clone();
    assert!(
        bug.message.contains("index[0]"),
        "expected the index/slot agreement invariant, got: {}",
        bug.message
    );
    let replayed = Checker::new(Config::replay(bug.schedule.parse().expect("schedule parses")))
        .check("replay", scenarios::ft_recycle_vs_reader(FtMutation::SkipIndexReset));
    assert!(
        replayed.bugs.iter().any(|b| b.kind == BugKind::Panic),
        "schedule `{}` did not replay to the violation",
        bug.schedule
    );
}
