//! Bounded slab-backed flow-state store shared by the Packet Classifier
//! and the Global MAT.
//!
//! Up to PR 6 both tables published whole `HashMap` generations per shard:
//! correct, but every structural change cloned the map — O(n) per flow
//! open, O(n²) to fill the 20-bit FID space. This store keeps the PR 6
//! read contract (readers are wait-free and never lock; replaced values
//! retire through the same `pending`/`collect` RCU path) while making
//! every operation O(1):
//!
//! * **Slab slots.** Each shard owns a dense `u32`-indexed arena of slots,
//!   allocated lazily in fixed-size chunks and recycled through a free
//!   list. A slot is one cache line: an RCU cell ([`arcswap::ArcSwap`])
//!   holding `(Fid, Arc<T>)` plus the authoritative `touch` stamp.
//!   [`FlowHandle`] names a slot; it replaces the ad-hoc map values.
//! * **Direct FID index.** A lazily-chunked `AtomicU32` array maps each
//!   FID in the shard's slice to its slot (+1; 0 = absent), so a lookup is
//!   index load → slot load → owner check: wait-free, no hashing, no
//!   generation clone.
//! * **Timer wheel.** Each shard embeds a [`TimerWheel`] scheduled at
//!   every entry's `touch` tick. The wheel is lazy — touching a flow never
//!   moves its item; pops re-check `touch` and reschedule busy flows — so
//!   idle expiry and LRU victim selection are amortized O(1) against the
//!   deterministic packet clock.
//! * **Bounded capacity.** `capacity` caps live entries (enforced per
//!   shard at ⌈capacity/shards⌉ plus a global check; exact in the
//!   single-threaded deterministic model). When full, [`AdmissionPolicy`]
//!   picks graceful degradation: evict the least-recently-touched entry,
//!   or reject the newcomer (which then rides the original chain
//!   uninstrumented — always equivalence-preserving).
//!
//! Eviction and the RCU scheme compose: clearing a slot `store`s the
//! shared empty value, which retires the evicted entry into the slot's
//! retired list — the same path [`FlowTable::pending_generations`] /
//! [`FlowTable::collect_generations`] drain.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, OnceLock};

use arcswap::ArcSwap;
use parking_lot::Mutex;
use speedybox_packet::Fid;

use crate::timer_wheel::TimerWheel;

/// Size of the 20-bit FID space: the most flows that can ever be live.
pub const FID_SPACE: usize = 1 << 20;

/// Slots (and index cells) per lazily-allocated chunk.
const CHUNK: usize = 4096;

/// What to do with a new flow when the table is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Evict the least-recently-touched entry to make room (default).
    #[default]
    EvictOldest,
    /// Reject the newcomer; existing entries are left alone.
    Reject,
}

/// Names one slab slot: the shard it lives in plus the slot index within
/// that shard's arena. Returned by [`FlowTable::lookup`] so hot paths can
/// [`FlowTable::touch`] the entry without re-resolving the FID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowHandle {
    shard: u32,
    slot: u32,
}

/// An entry forced out of the table (idle expiry or capacity pressure).
#[derive(Debug)]
pub struct Evicted<T> {
    /// The evicted flow.
    pub fid: Fid,
    /// Its value, still alive for the caller's teardown.
    pub value: Arc<T>,
    /// The entry's last `touch` tick.
    pub touch: u64,
}

/// Outcome of [`FlowTable::insert`].
#[derive(Debug)]
pub enum Admission<T> {
    /// A fresh entry was created; at capacity, `evicted` carries the LRU
    /// entry that made room.
    Inserted {
        /// Handle of the new entry.
        handle: FlowHandle,
        /// The entry evicted to make room, if the table was full.
        evicted: Option<Evicted<T>>,
    },
    /// The FID was already present; its value was replaced in place (the
    /// old value retires through the RCU path).
    Replaced {
        /// Handle of the existing entry.
        handle: FlowHandle,
    },
    /// The table is full and the policy is [`AdmissionPolicy::Reject`].
    Rejected,
}

/// Outcome of [`FlowTable::open_with`].
#[derive(Debug)]
pub enum Opened<T> {
    /// This call created the entry; at capacity, `evicted` carries the
    /// LRU entry that made room.
    Created {
        /// Handle of the new entry.
        handle: FlowHandle,
        /// The freshly created value.
        value: Arc<T>,
        /// The entry evicted to make room, if the table was full.
        evicted: Option<Evicted<T>>,
    },
    /// The entry already existed (possibly created by a concurrent
    /// opener); it was touched, not replaced.
    Existing {
        /// Handle of the existing entry.
        handle: FlowHandle,
        /// The existing value.
        value: Arc<T>,
    },
    /// The table is full and the policy is [`AdmissionPolicy::Reject`].
    Rejected,
}

/// A slot's published state: empty, or owned by a flow.
type SlotVal<T> = Option<(Fid, Arc<T>)>;

/// One slab slot: the RCU value cell plus the authoritative recency stamp.
#[derive(Debug)]
struct Slot<T> {
    val: ArcSwap<SlotVal<T>>,
    /// Last tick the flow saw activity. Written wait-free by readers via
    /// [`FlowTable::touch`]; read by the eviction truth checks.
    touch: AtomicU64,
}

/// Mutable shard state, serialized behind the writer mutex.
#[derive(Debug)]
struct ShardWriter {
    /// Recycled slot indices.
    free: Vec<u32>,
    /// High-water mark: next never-used slot index.
    allocated: u32,
    /// Live entries in this shard.
    live: usize,
    /// Lazy eviction wheel over this shard's slots.
    wheel: TimerWheel,
}

/// A lazily-allocated chunk of the slot arena.
type SlotChunk<T> = OnceLock<Box<[Slot<T>]>>;

struct TableShard<T> {
    /// FID-slice index: `index[local / CHUNK][local % CHUNK]` holds
    /// slot + 1, or 0 when the FID is absent.
    index: Box<[OnceLock<Box<[AtomicU32]>>]>,
    /// Slot arena, allocated a chunk at a time as the high-water mark
    /// grows.
    slots: Box<[SlotChunk<T>]>,
    writer: Mutex<ShardWriter>,
}

impl<T> TableShard<T> {
    fn new(index_chunks: usize, slot_chunks: usize) -> Self {
        Self {
            index: (0..index_chunks).map(|_| OnceLock::new()).collect(),
            slots: (0..slot_chunks).map(|_| OnceLock::new()).collect(),
            writer: Mutex::new(ShardWriter {
                free: Vec::new(),
                allocated: 0,
                live: 0,
                wheel: TimerWheel::new(),
            }),
        }
    }

    /// The index cell for a shard-local FID key, if its chunk exists.
    fn index_cell(&self, local: usize) -> Option<&AtomicU32> {
        self.index[local / CHUNK].get().map(|chunk| &chunk[local % CHUNK])
    }

    /// The index cell for a shard-local key, allocating its chunk.
    fn index_cell_mut(&self, local: usize) -> &AtomicU32 {
        let chunk = self.index[local / CHUNK]
            .get_or_init(|| (0..CHUNK).map(|_| AtomicU32::new(0)).collect());
        &chunk[local % CHUNK]
    }

    /// The slot for an allocated handle. Panics on an unallocated chunk —
    /// handles are only ever minted after their chunk exists.
    fn slot(&self, slot: u32) -> &Slot<T> {
        let chunk = self.slots[slot as usize / CHUNK].get().expect("slot chunk allocated");
        &chunk[slot as usize % CHUNK]
    }
}

/// The bounded, sharded, slab-backed flow-state store. See module docs.
pub struct FlowTable<T> {
    shards: Box<[TableShard<T>]>,
    /// `log2(shards.len())`; a FID's shard is `fid & (shards - 1)` and its
    /// shard-local key is `fid >> shard_bits`.
    shard_bits: u32,
    /// Global live-entry bound.
    capacity: usize,
    /// Per-shard hard bound: `ceil(capacity / shards)`, clamped to the
    /// shard's FID-slice size.
    shard_cap: usize,
    policy: AdmissionPolicy,
    /// Global live count (exact; maintained under shard writer locks).
    live: AtomicUsize,
    /// Shared empty slot value: cleared slots `store` a clone of this, so
    /// emptying a slot retires its old `(Fid, Arc<T>)` through the RCU
    /// path. Misses never load it (the index is checked first).
    empty: Arc<SlotVal<T>>,
}

impl<T> std::fmt::Debug for FlowTable<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTable")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("live", &self.live.load(SeqCst))
            .finish()
    }
}

impl<T: Send + Sync> FlowTable<T> {
    /// Creates a table with (at least) `shards` shards (rounded up to a
    /// power of two), bounded at `capacity` live entries. A `capacity` of
    /// 0 or ≥ [`FID_SPACE`] means unbounded (the FID space itself is the
    /// bound).
    #[must_use]
    pub fn new(shards: usize, capacity: usize, policy: AdmissionPolicy) -> Self {
        let n = shards.max(1).next_power_of_two().min(FID_SPACE);
        let shard_bits = n.trailing_zeros();
        let capacity = if capacity == 0 { FID_SPACE } else { capacity.min(FID_SPACE) };
        let slice = FID_SPACE >> shard_bits; // FIDs mapping to one shard
        let shard_cap = capacity.div_ceil(n).min(slice).max(1);
        let index_chunks = slice.div_ceil(CHUNK).max(1);
        let slot_chunks = shard_cap.div_ceil(CHUNK).max(1);
        Self {
            shards: (0..n).map(|_| TableShard::new(index_chunks, slot_chunks)).collect(),
            shard_bits,
            capacity,
            shard_cap,
            policy,
            live: AtomicUsize::new(0),
            empty: Arc::new(None),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The live-entry bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The admission policy applied when full.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Live entries. O(1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.load(SeqCst)
    }

    /// True if no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, fid: Fid) -> (usize, usize) {
        let idx = fid.index();
        (idx & (self.shards.len() - 1), idx >> self.shard_bits)
    }

    /// Looks up a flow. Wait-free: one index load, one RCU cell load, one
    /// owner check. Returns the slot handle for follow-up
    /// [`FlowTable::touch`] calls.
    #[must_use]
    pub fn lookup(&self, fid: Fid) -> Option<(FlowHandle, Arc<T>)> {
        let (s, local) = self.shard_of(fid);
        let shard = &self.shards[s];
        let cell = shard.index_cell(local)?;
        let slot_plus_one = cell.load(SeqCst);
        if slot_plus_one == 0 {
            return None;
        }
        let slot = slot_plus_one - 1;
        let val = shard.slot(slot).val.load();
        match val.as_ref() {
            // Owner check: the slot may have been recycled to a different
            // FID between the index load and the cell load; a mismatch
            // linearizes as "absent".
            Some((owner, value)) if *owner == fid => {
                let handle =
                    FlowHandle { shard: u32::try_from(s).expect("shard count fits u32"), slot };
                Some((handle, Arc::clone(value)))
            }
            _ => None,
        }
    }

    /// The value for a flow, if present. Wait-free.
    #[must_use]
    pub fn get(&self, fid: Fid) -> Option<Arc<T>> {
        self.lookup(fid).map(|(_, v)| v)
    }

    /// True if the flow is present. Wait-free.
    #[must_use]
    pub fn contains(&self, fid: Fid) -> bool {
        self.lookup(fid).is_some()
    }

    /// Stamps the entry's recency. Wait-free (one atomic store); the
    /// entry's wheel item is *not* moved — eviction re-checks this stamp.
    pub fn touch(&self, handle: FlowHandle, now: u64) {
        self.shards[handle.shard as usize].slot(handle.slot).touch.store(now, SeqCst);
    }

    /// The entry's last-touch tick (0 if the handle's slot was recycled).
    #[must_use]
    pub fn last_touch(&self, handle: FlowHandle) -> u64 {
        self.shards[handle.shard as usize].slot(handle.slot).touch.load(SeqCst)
    }

    /// Clears `slot` (which must hold `fid`), returning the retired value.
    /// Caller holds the shard writer lock.
    fn clear_slot(&self, s: usize, w: &mut ShardWriter, slot: u32) -> Option<(Fid, Arc<T>)> {
        let shard = &self.shards[s];
        let val = shard.slot(slot).val.load();
        let (fid, value) = val.as_ref().clone()?;
        // Retires the old (Fid, Arc<T>) into the slot's RCU retired list —
        // the same pending/collect path as a value replacement.
        shard.slot(slot).val.store(Arc::clone(&self.empty));
        let local = fid.index() >> self.shard_bits;
        shard.index_cell_mut(local).store(0, SeqCst);
        w.free.push(slot);
        w.live -= 1;
        self.live.fetch_sub(1, SeqCst);
        Some((fid, value))
    }

    /// Pops this shard's true LRU entry off the wheel (truth-checking and
    /// rescheduling busy flows), without evicting it. Caller holds the
    /// writer lock. Returns `(slot, touch)`.
    fn pop_victim(&self, s: usize, w: &mut ShardWriter) -> Option<(u32, u64)> {
        let shard = &self.shards[s];
        while let Some(item) = w.wheel.pop_earliest() {
            let slot = shard.slot(item.slot);
            if slot.val.load().is_none() {
                continue; // stale item for a freed slot
            }
            let touch = slot.touch.load(SeqCst);
            if touch > item.deadline {
                // Lazy reschedule: the flow was touched since this item
                // was scheduled; move it to its true deadline.
                w.wheel.schedule(item.slot, touch);
                continue;
            }
            return Some((item.slot, touch));
        }
        None
    }

    /// Allocates a fresh or recycled slot and publishes `(fid, value)`
    /// into it. Caller holds the writer lock and has made room.
    fn publish(&self, s: usize, w: &mut ShardWriter, fid: Fid, value: Arc<T>, now: u64) -> u32 {
        let shard = &self.shards[s];
        let slot = w.free.pop().unwrap_or_else(|| {
            let slot = w.allocated;
            w.allocated += 1;
            shard.slots[slot as usize / CHUNK].get_or_init(|| {
                (0..CHUNK)
                    .map(|_| Slot {
                        val: ArcSwap::new(Arc::clone(&self.empty)),
                        touch: AtomicU64::new(0),
                    })
                    .collect()
            });
            slot
        });
        let cell = &shard.slot(slot);
        cell.touch.store(now, SeqCst);
        cell.val.store(Arc::new(Some((fid, value))));
        let local = fid.index() >> self.shard_bits;
        shard.index_cell_mut(local).store(slot + 1, SeqCst);
        w.wheel.schedule(slot, now);
        w.live += 1;
        self.live.fetch_add(1, SeqCst);
        slot
    }

    /// Inserts or replaces the entry for `fid`, stamping it with `now`.
    /// At capacity, applies the admission policy — see [`Admission`].
    pub fn insert(&self, fid: Fid, value: Arc<T>, now: u64) -> Admission<T> {
        let (s, local) = self.shard_of(fid);
        let shard = &self.shards[s];
        let mut w = shard.writer.lock();
        let cell = shard.index_cell_mut(local);
        let slot_plus_one = cell.load(SeqCst);
        if slot_plus_one != 0 {
            let slot = slot_plus_one - 1;
            let slot_ref = shard.slot(slot);
            slot_ref.touch.store(now, SeqCst);
            // In-place replace: the old value retires through the slot's
            // RCU cell. The existing wheel item (deadline <= old touch <=
            // now) keeps the lazy invariant, so no reschedule is needed.
            slot_ref.val.store(Arc::new(Some((fid, value))));
            return Admission::Replaced {
                handle: FlowHandle { shard: u32::try_from(s).expect("shard count fits u32"), slot },
            };
        }
        let full = w.live >= self.shard_cap || self.live.load(SeqCst) >= self.capacity;
        let mut evicted = None;
        if full {
            match self.policy {
                AdmissionPolicy::Reject => return Admission::Rejected,
                // A `None` victim means this shard holds nothing to evict
                // (global pressure from other shards): admit rather than
                // starve the FID slice; overshoot is bounded by the shard
                // count.
                AdmissionPolicy::EvictOldest => {
                    if let Some((slot, touch)) = self.pop_victim(s, &mut w) {
                        let (vfid, vval) =
                            self.clear_slot(s, &mut w, slot).expect("victim slot is occupied");
                        evicted = Some(Evicted { fid: vfid, value: vval, touch });
                    }
                }
            }
        }
        let slot = self.publish(s, &mut w, fid, value, now);
        Admission::Inserted {
            handle: FlowHandle { shard: u32::try_from(s).expect("shard count fits u32"), slot },
            evicted,
        }
    }

    /// Gets the entry for `fid`, creating it with `make` if absent —
    /// the racing-opener-safe variant of [`FlowTable::insert`]: a
    /// concurrent opener that loses the race gets the winner's entry back
    /// instead of replacing it (which would clobber its state).
    pub fn open_with(&self, fid: Fid, now: u64, make: impl FnOnce() -> Arc<T>) -> Opened<T> {
        let (s, local) = self.shard_of(fid);
        let shard = &self.shards[s];
        let mut w = shard.writer.lock();
        let cell = shard.index_cell_mut(local);
        let slot_plus_one = cell.load(SeqCst);
        if slot_plus_one != 0 {
            let slot = slot_plus_one - 1;
            let slot_ref = shard.slot(slot);
            let value = slot_ref
                .val
                .load()
                .as_ref()
                .as_ref()
                .map(|(_, v)| Arc::clone(v))
                .expect("indexed slot is occupied");
            slot_ref.touch.store(now, SeqCst);
            return Opened::Existing {
                handle: FlowHandle { shard: u32::try_from(s).expect("shard count fits u32"), slot },
                value,
            };
        }
        let full = w.live >= self.shard_cap || self.live.load(SeqCst) >= self.capacity;
        let mut evicted = None;
        if full {
            match self.policy {
                AdmissionPolicy::Reject => return Opened::Rejected,
                AdmissionPolicy::EvictOldest => {
                    if let Some((slot, touch)) = self.pop_victim(s, &mut w) {
                        let (vfid, vval) =
                            self.clear_slot(s, &mut w, slot).expect("victim slot is occupied");
                        evicted = Some(Evicted { fid: vfid, value: vval, touch });
                    }
                }
            }
        }
        let value = make();
        let slot = self.publish(s, &mut w, fid, Arc::clone(&value), now);
        Opened::Created {
            handle: FlowHandle { shard: u32::try_from(s).expect("shard count fits u32"), slot },
            value,
            evicted,
        }
    }

    /// Replaces the entry for `fid` only if it is still present, in one
    /// writer-lock critical section. Returns false (without inserting) if
    /// the flow is gone — the eviction-vs-rewrite atomicity primitive: a
    /// rewrite that loses the race to an eviction must not resurrect the
    /// rule from emptied Local MATs.
    pub fn replace_if_present(&self, fid: Fid, value: Arc<T>, now: u64) -> bool {
        let (s, local) = self.shard_of(fid);
        let shard = &self.shards[s];
        let _w = shard.writer.lock();
        let Some(cell) = shard.index_cell(local) else {
            return false;
        };
        let slot_plus_one = cell.load(SeqCst);
        if slot_plus_one == 0 {
            return false;
        }
        let slot = shard.slot(slot_plus_one - 1);
        slot.touch.store(now, SeqCst);
        slot.val.store(Arc::new(Some((fid, value))));
        true
    }

    /// Removes the entry for `fid`, returning its value if present.
    pub fn remove(&self, fid: Fid) -> Option<Arc<T>> {
        let (s, local) = self.shard_of(fid);
        let shard = &self.shards[s];
        let mut w = shard.writer.lock();
        let slot_plus_one = shard.index_cell(local)?.load(SeqCst);
        if slot_plus_one == 0 {
            return None;
        }
        // Stale wheel items for the freed slot are dropped lazily by the
        // eviction truth checks.
        self.clear_slot(s, &mut w, slot_plus_one - 1).map(|(_, v)| v)
    }

    /// Evicts every entry idle for more than `max_idle` ticks at `now`
    /// (i.e. `now - touch > max_idle`), in deterministic wheel order.
    /// Amortized O(1) per clock tick plus O(1) per due entry.
    pub fn expire_idle(&self, now: u64, max_idle: u64) -> Vec<Evicted<T>> {
        let Some(target) = now.checked_sub(max_idle + 1) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut due = Vec::new();
        for s in 0..self.shards.len() {
            let shard = &self.shards[s];
            let mut w = shard.writer.lock();
            due.clear();
            w.wheel.advance(target, &mut due);
            for item in &due {
                let slot = shard.slot(item.slot);
                if slot.val.load().is_none() {
                    continue; // stale item for a freed slot
                }
                let touch = slot.touch.load(SeqCst);
                if touch > target {
                    // Busy flow popped early (lazy wheel): reschedule at
                    // its true deadline.
                    w.wheel.schedule(item.slot, touch);
                    continue;
                }
                if let Some((fid, value)) = self.clear_slot(s, &mut w, item.slot) {
                    out.push(Evicted { fid, value, touch });
                }
            }
        }
        out
    }

    /// Force-evicts the `k` least-recently-touched entries table-wide
    /// (deterministic: global minimum by `(touch, shard)` per round),
    /// exercising the same wheel-driven LRU path capacity pressure takes.
    pub fn evict_oldest(&self, k: usize) -> Vec<Evicted<T>> {
        let mut out = Vec::new();
        for _ in 0..k {
            // Peek each shard's LRU candidate, then evict the global
            // minimum and put the others' wheel items back.
            let mut best: Option<(u64, usize, u32)> = None;
            for s in 0..self.shards.len() {
                let mut w = self.shards[s].writer.lock();
                if let Some((slot, touch)) = self.pop_victim(s, &mut w) {
                    let restore_at = touch.max(w.wheel.now() + 1);
                    w.wheel.schedule(slot, restore_at);
                    if best.is_none_or(|(bt, bs, _)| (touch, s) < (bt, bs)) {
                        best = Some((touch, s, slot));
                    }
                }
            }
            let Some((_, s, slot)) = best else {
                break;
            };
            let mut w = self.shards[s].writer.lock();
            // Re-verify under the re-taken lock: the candidate may have
            // been touched or removed in between.
            let shard = &self.shards[s];
            if shard.slot(slot).val.load().is_none() {
                continue;
            }
            let touch = shard.slot(slot).touch.load(SeqCst);
            if let Some((fid, value)) = self.clear_slot(s, &mut w, slot) {
                out.push(Evicted { fid, value, touch });
            }
        }
        out
    }

    /// A conservative lower bound on the earliest tick any entry could
    /// expire at, or `u64::MAX` when the table is empty. Cheap gate for
    /// batch-boundary expiry: nothing can be due before this tick.
    #[must_use]
    pub fn next_due(&self) -> u64 {
        self.shards
            .iter()
            .filter_map(|shard| shard.writer.lock().wheel.next_due())
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Visits every live entry as `(fid, value, touch)`, shard by shard,
    /// slot order within a shard. Control-plane only (dumps, sweeps).
    pub fn for_each(&self, mut f: impl FnMut(Fid, &Arc<T>, u64)) {
        for shard in self.shards.iter() {
            let allocated = shard.writer.lock().allocated;
            for slot_idx in 0..allocated {
                let slot = shard.slot(slot_idx);
                if let Some((fid, value)) = slot.val.load().as_ref() {
                    f(*fid, value, slot.touch.load(SeqCst));
                }
            }
        }
    }

    /// Retired slot values not yet reclaimed, summed over every allocated
    /// slot — the table-wide RCU backlog (bounded by writer frequency,
    /// never by reader count).
    #[must_use]
    pub fn pending_generations(&self) -> usize {
        self.fold_slots(0, |acc, slot| acc + slot.val.pending())
    }

    /// Attempts to reclaim retired slot values; returns how many were
    /// freed. Safe at any time — a value is freed only once provably
    /// unreferenced.
    pub fn collect_generations(&self) -> usize {
        self.fold_slots(0, |acc, slot| acc + slot.val.collect())
    }

    fn fold_slots<A>(&self, init: A, mut f: impl FnMut(A, &Slot<T>) -> A) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            let allocated = shard.writer.lock().allocated;
            for slot_idx in 0..allocated {
                acc = f(acc, shard.slot(slot_idx));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::cast_possible_truncation)] // test data built from small constants
    use super::*;

    fn fid(n: u32) -> Fid {
        Fid::new(n)
    }

    fn table(shards: usize, cap: usize, policy: AdmissionPolicy) -> FlowTable<u64> {
        FlowTable::new(shards, cap, policy)
    }

    fn insert(t: &FlowTable<u64>, n: u32, now: u64) -> Admission<u64> {
        t.insert(fid(n), Arc::new(u64::from(n)), now)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let t = table(4, 0, AdmissionPolicy::EvictOldest);
        assert!(t.is_empty());
        assert!(matches!(insert(&t, 7, 1), Admission::Inserted { evicted: None, .. }));
        let (handle, v) = t.lookup(fid(7)).expect("present");
        assert_eq!(*v, 7);
        assert_eq!(t.last_touch(handle), 1);
        t.touch(handle, 9);
        assert_eq!(t.last_touch(handle), 9);
        assert_eq!(t.len(), 1);
        assert_eq!(*t.remove(fid(7)).expect("present"), 7);
        assert!(t.lookup(fid(7)).is_none());
        assert!(t.is_empty());
        assert!(t.remove(fid(7)).is_none());
    }

    #[test]
    fn replace_in_place_retires_old_value() {
        let t = table(1, 0, AdmissionPolicy::EvictOldest);
        insert(&t, 3, 1);
        let probe = t.get(fid(3)).unwrap();
        assert!(matches!(insert(&t, 3, 2), Admission::Replaced { .. }));
        assert_eq!(t.len(), 1);
        drop(probe);
        t.collect_generations();
        assert_eq!(t.pending_generations(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_touched() {
        let t = table(1, 3, AdmissionPolicy::EvictOldest);
        insert(&t, 1, 10);
        insert(&t, 2, 11);
        insert(&t, 3, 12);
        // Refresh flow 1 so flow 2 is now the LRU.
        let (h1, _) = t.lookup(fid(1)).unwrap();
        t.touch(h1, 20);
        let Admission::Inserted { evicted: Some(victim), .. } = insert(&t, 4, 21) else {
            panic!("expected an eviction");
        };
        assert_eq!(victim.fid, fid(2));
        assert_eq!(victim.touch, 11);
        assert_eq!(t.len(), 3);
        assert!(t.contains(fid(1)));
        assert!(t.contains(fid(4)));
        assert!(!t.contains(fid(2)));
    }

    #[test]
    fn reject_policy_bounces_newcomers() {
        let t = table(1, 2, AdmissionPolicy::Reject);
        insert(&t, 1, 1);
        insert(&t, 2, 2);
        assert!(matches!(insert(&t, 3, 3), Admission::Rejected));
        assert_eq!(t.len(), 2);
        assert!(!t.contains(fid(3)));
        // Existing flows still replace fine at capacity.
        assert!(matches!(insert(&t, 1, 4), Admission::Replaced { .. }));
        // Removing one re-opens admission.
        t.remove(fid(1));
        assert!(matches!(insert(&t, 3, 5), Admission::Inserted { .. }));
    }

    #[test]
    fn expire_idle_is_exact_and_deterministic() {
        let t = table(2, 0, AdmissionPolicy::EvictOldest);
        insert(&t, 1, 0);
        insert(&t, 2, 1);
        insert(&t, 3, 2);
        // Touch flow 2 late so only 1 and 3 are idle at now=30.
        let (h2, _) = t.lookup(fid(2)).unwrap();
        t.touch(h2, 25);
        let evicted = t.expire_idle(30, 10);
        let fids: Vec<Fid> = evicted.iter().map(|e| e.fid).collect();
        assert_eq!(fids.len(), 2);
        assert!(fids.contains(&fid(1)) && fids.contains(&fid(3)));
        assert_eq!(t.len(), 1);
        // Nothing further to expire; a larger max_idle is vacuous.
        assert!(t.expire_idle(30, 20).is_empty());
        // Flow 2 expires once it ages out.
        let evicted = t.expire_idle(100, 10);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].fid, fid(2));
        assert!(t.is_empty());
    }

    #[test]
    fn evict_oldest_takes_global_minimum() {
        let t = table(4, 0, AdmissionPolicy::EvictOldest);
        for (n, at) in [(1u32, 5u64), (2, 3), (3, 9), (4, 1)] {
            insert(&t, n, at);
        }
        let evicted = t.evict_oldest(2);
        let fids: Vec<Fid> = evicted.iter().map(|e| e.fid).collect();
        assert_eq!(fids, vec![fid(4), fid(2)]);
        assert_eq!(t.len(), 2);
        // Evicting more than live drains the table and stops.
        assert_eq!(t.evict_oldest(10).len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn slots_are_recycled_through_the_free_list() {
        let t = table(1, 0, AdmissionPolicy::EvictOldest);
        insert(&t, 1, 1);
        let (h1, _) = t.lookup(fid(1)).unwrap();
        t.remove(fid(1));
        insert(&t, 2, 2);
        let (h2, _) = t.lookup(fid(2)).unwrap();
        assert_eq!(h1, h2, "freed slot is reused");
        // The old FID no longer resolves through the recycled slot.
        assert!(t.lookup(fid(1)).is_none());
    }

    #[test]
    fn eviction_retires_through_the_rcu_path() {
        let t = table(1, 2, AdmissionPolicy::EvictOldest);
        insert(&t, 1, 1);
        insert(&t, 2, 2);
        let held = t.get(fid(1)).unwrap(); // reader still holds the value
        let Admission::Inserted { evicted: Some(victim), .. } = insert(&t, 3, 3) else {
            panic!("expected an eviction");
        };
        assert_eq!(victim.fid, fid(1));
        drop(victim);
        // The evicted slot value sits in the retired backlog until
        // collected — same path as generation replacement.
        t.collect_generations();
        assert_eq!(t.pending_generations(), 0);
        assert_eq!(*held, 1);
    }

    #[test]
    fn len_and_for_each_agree_across_shards() {
        let t = table(8, 0, AdmissionPolicy::EvictOldest);
        for n in 0..100u32 {
            insert(&t, n * 131, u64::from(n));
        }
        assert_eq!(t.len(), 100);
        let mut seen = 0;
        t.for_each(|_, _, _| seen += 1);
        assert_eq!(seen, 100);
    }

    #[test]
    fn next_due_gates_expiry() {
        let t = table(2, 0, AdmissionPolicy::EvictOldest);
        assert_eq!(t.next_due(), u64::MAX);
        insert(&t, 1, 100);
        assert!(t.next_due() <= 100);
    }

    #[test]
    fn replace_if_present_refuses_absent_flows() {
        let t = table(2, 0, AdmissionPolicy::EvictOldest);
        assert!(!t.replace_if_present(fid(1), Arc::new(9), 1));
        assert!(t.is_empty());
        insert(&t, 1, 1);
        assert!(t.replace_if_present(fid(1), Arc::new(9), 2));
        assert_eq!(*t.get(fid(1)).unwrap(), 9);
        t.remove(fid(1));
        assert!(!t.replace_if_present(fid(1), Arc::new(10), 3));
        assert!(t.get(fid(1)).is_none());
    }

    #[test]
    fn open_with_returns_existing_without_replacing() {
        let t = table(1, 2, AdmissionPolicy::Reject);
        let Opened::Created { value, .. } = t.open_with(fid(1), 1, || Arc::new(7)) else {
            panic!("expected creation");
        };
        assert_eq!(*value, 7);
        // A second opener gets the first entry back, untouched.
        let Opened::Existing { value, .. } = t.open_with(fid(1), 2, || Arc::new(8)) else {
            panic!("expected existing entry");
        };
        assert_eq!(*value, 7);
        let (h, _) = t.lookup(fid(1)).unwrap();
        assert_eq!(t.last_touch(h), 2, "existing entry is touched");
        // Rejection applies to creations only.
        t.open_with(fid(2), 3, || Arc::new(9));
        assert!(matches!(t.open_with(fid(3), 4, || Arc::new(10)), Opened::Rejected));
        assert!(matches!(t.open_with(fid(1), 5, || Arc::new(11)), Opened::Existing { .. }));
    }

    #[test]
    fn capacity_spans_multiple_chunks() {
        // Force slot allocation past one chunk boundary.
        let t = table(1, CHUNK + 10, AdmissionPolicy::EvictOldest);
        for n in 0..(CHUNK as u32 + 10) {
            insert(&t, n, u64::from(n));
        }
        assert_eq!(t.len(), CHUNK + 10);
        let Admission::Inserted { evicted: Some(victim), .. } =
            insert(&t, CHUNK as u32 + 11, u64::from(CHUNK as u32) + 11)
        else {
            panic!("expected an eviction at capacity");
        };
        assert_eq!(victim.fid, fid(0));
    }
}
