//! Model-checkable ports of the two concurrency-critical MAT protocols,
//! built on `speedybox-check`'s virtual primitives so the checker can
//! exhaustively enumerate interleavings within a preemption bound.
//!
//! Two protocols are distilled here:
//!
//! * [`FlowTableModel`] — the slab slot protocol of
//!   [`crate::flow_table::FlowTable`], shrunk to one shard, two FIDs and
//!   two slots but keeping every step that matters for the races: the
//!   direct FID index (`AtomicU32` holding slot + 1), the per-slot RCU
//!   value cell, the owner check on lookup, the shared-empty store that
//!   retires cleared values, the free-list recycle, and the writer mutex
//!   that serializes all structural changes. The proved invariants are the
//!   eviction-vs-rewrite atomicity of
//!   [`crate::flow_table::FlowTable::replace_if_present`] (a rewrite that
//!   loses to an eviction must not resurrect the entry) and index/slot
//!   agreement across slab recycling under a concurrent wait-free reader.
//! * [`ClassifierModel`] — the rule-generation publication protocol of
//!   [`crate::global::GlobalMat::process_batch`]'s flow-affinity memo: a
//!   batch reader resolves a flow's rule once and serves same-flow
//!   packets from the memo while the control plane republishes. The
//!   proved invariants are memo-run generation consistency and liveness
//!   of the memoized handle (the memo holds a strong clone, so a
//!   republication plus drain cannot free it).
//!
//! Each model carries seeded-bug mutations ([`FtMutation`],
//! [`ClMutation`]) that weaken the protocol the way a plausible
//! refactoring would; the checker must catch every one, which is the
//! evidence a clean run means something. The correspondence argument
//! between these distillations and the real code is written out in
//! DESIGN.md §14.

use std::sync::Arc as StdArc;

use arcswap::model::{ArcSwapModel, Mutation as CellMutation};
use speedybox_check::{fact, raw_read, ModelArc, ModelAtomicUsize, ModelMutex, Ordering};

/// FIDs used by the distilled flow-table model.
const FIDS: usize = 2;
/// Slab slots. Two are enough to express recycling.
const SLOTS: usize = 2;

/// A slot's published state: empty, or `(owner fid, value)` — the model
/// twin of `flow_table::SlotVal`.
type SlotVal = Option<(usize, u64)>;

/// Seeded bugs for the flow-table slot protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtMutation {
    /// Faithful port of the shipped protocol.
    None,
    /// `replace_if_present` releases the writer lock between its index
    /// check and its store — the TOCTOU a "shorten the critical section"
    /// refactoring would introduce. A rewrite can then lose to an
    /// eviction yet still publish, resurrecting the entry into a freed
    /// (and recyclable) slot.
    ToctouReplace,
    /// `clear_slot` forgets to reset the FID index cell, leaving the
    /// index pointing at an empty (and soon recycled) slot.
    SkipIndexReset,
}

/// Mutable shard-writer state, serialized behind the writer mutex —
/// the model twin of `flow_table::ShardWriter` (no timer wheel: recency
/// is not part of the proved invariants).
struct Writer {
    free: Vec<usize>,
    allocated: usize,
    live: usize,
}

/// Distilled one-shard [`crate::flow_table::FlowTable`]. See module docs
/// for what is kept and what is elided.
pub struct FlowTableModel {
    /// `index[fid]` holds slot + 1, or 0 when the FID is absent — the
    /// model twin of the `AtomicU32` FID-index cells.
    index: [ModelAtomicUsize; FIDS],
    /// Slot value cells, each the model twin of `Slot::val`.
    slots: [ArcSwapModel<SlotVal>; SLOTS],
    writer: ModelMutex<Writer>,
    /// Shared empty value: clearing a slot stores a clone of this, which
    /// retires the old `(fid, value)` through the slot's RCU path —
    /// exactly like `FlowTable::empty`.
    empty: ModelArc<SlotVal>,
    mutation: FtMutation,
}

impl std::fmt::Debug for FlowTableModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTableModel").field("mutation", &self.mutation).finish_non_exhaustive()
    }
}

impl FlowTableModel {
    /// Creates the empty distilled table (must run inside a checker
    /// execution).
    pub fn new(mutation: FtMutation) -> Self {
        FlowTableModel {
            index: [ModelAtomicUsize::new("ft.index0", 0), ModelAtomicUsize::new("ft.index1", 0)],
            slots: [
                ArcSwapModel::new("ft.slot0.empty", None, CellMutation::None),
                ArcSwapModel::new("ft.slot1.empty", None, CellMutation::None),
            ],
            writer: ModelMutex::new(
                "ft.writer",
                Writer { free: Vec::new(), allocated: 0, live: 0 },
            ),
            empty: ModelArc::new("ft.empty", None),
            mutation,
        }
    }

    /// Mirror of `FlowTable::lookup`: index load, slot cell load, owner
    /// check. Wait-free — never touches the writer mutex.
    pub fn lookup(&self, fid: usize) -> Option<u64> {
        let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
        if slot_plus_one == 0 {
            return None;
        }
        let val = self.slots[slot_plus_one - 1].load();
        match val.value() {
            // Owner check: the slot may have been recycled to a different
            // FID between the index load and the cell load; a mismatch
            // linearizes as "absent".
            Some((owner, value)) if *owner == fid => Some(*value),
            _ => None,
        }
    }

    /// Mirror of `FlowTable::insert` (fresh-entry path plus in-place
    /// replace), minus capacity/eviction policy.
    pub fn insert(&self, fid: usize, value: u64) {
        let mut w = self.writer.lock();
        let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
        if slot_plus_one != 0 {
            // In-place replace: the old value retires through the slot's
            // RCU cell.
            self.slots[slot_plus_one - 1].store(ModelArc::new("ft.val", Some((fid, value))));
            return;
        }
        let slot = w.free.pop().unwrap_or_else(|| {
            let s = w.allocated;
            w.allocated += 1;
            s
        });
        // Publish order matters and matches `FlowTable::publish`: value
        // first, then the index — a reader racing the index store must
        // find either nothing or the fully published entry.
        self.slots[slot].store(ModelArc::new("ft.val", Some((fid, value))));
        self.index[fid].store(slot + 1, Ordering::SeqCst);
        w.live += 1;
    }

    /// Mirror of `FlowTable::remove` / the eviction half of `clear_slot`.
    pub fn remove(&self, fid: usize) -> bool {
        let mut w = self.writer.lock();
        let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
        if slot_plus_one == 0 {
            return false;
        }
        self.clear_slot(&mut w, fid, slot_plus_one - 1);
        true
    }

    /// Mirror of `FlowTable::clear_slot`: store the shared empty (which
    /// retires the old value through the RCU path), reset the index,
    /// recycle the slot. Caller holds the writer lock.
    fn clear_slot(&self, w: &mut Writer, fid: usize, slot: usize) {
        self.slots[slot].store(self.empty.clone());
        if self.mutation != FtMutation::SkipIndexReset {
            self.index[fid].store(0, Ordering::SeqCst);
        }
        w.free.push(slot);
        w.live -= 1;
    }

    /// Mirror of `FlowTable::replace_if_present`: replace the entry only
    /// if the flow is still present, atomically with respect to evictions
    /// — the primitive that keeps a lost rewrite from resurrecting a rule
    /// whose Local MATs were already torn down.
    pub fn replace_if_present(&self, fid: usize, value: u64) -> bool {
        if self.mutation == FtMutation::ToctouReplace {
            // Seeded bug: check and store in separate critical sections.
            let slot = {
                let _w = self.writer.lock();
                let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
                if slot_plus_one == 0 {
                    return false;
                }
                slot_plus_one - 1
            };
            let _w = self.writer.lock();
            self.slots[slot].store(ModelArc::new("ft.val", Some((fid, value))));
            return true;
        }
        let _w = self.writer.lock();
        let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
        if slot_plus_one == 0 {
            return false;
        }
        self.slots[slot_plus_one - 1].store(ModelArc::new("ft.val", Some((fid, value))));
        true
    }

    /// Quiescent-state invariant: the index and the slots agree. Checked
    /// by scenarios after all racing threads joined, so a violation means
    /// a race left the table permanently inconsistent (not merely a
    /// transiently stale view).
    pub fn check_consistency(&self) {
        for fid in 0..FIDS {
            let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
            if slot_plus_one == 0 {
                continue;
            }
            let val = self.slots[slot_plus_one - 1].load();
            match val.value() {
                Some((owner, _)) => {
                    assert_eq!(*owner, fid, "index[{fid}] points at a slot owned by fid {owner}")
                }
                None => panic!("index[{fid}] points at an empty slot"),
            }
        }
        for slot in 0..SLOTS {
            let val = self.slots[slot].load();
            if let Some((owner, _)) = val.value() {
                assert_eq!(
                    self.index[*owner].load(Ordering::SeqCst),
                    slot + 1,
                    "slot {slot} holds fid {owner} but the index does not point at it \
                     (resurrected entry)"
                );
            }
        }
    }

    /// Retired slot values not yet reclaimed, summed over the slots — the
    /// model twin of `FlowTable::pending_generations`.
    pub fn pending_generations(&self) -> usize {
        self.slots.iter().map(ArcSwapModel::pending).sum()
    }

    /// Model twin of `FlowTable::collect_generations`.
    pub fn collect_generations(&self) -> usize {
        self.slots.iter().map(ArcSwapModel::collect).sum()
    }
}

/// Seeded bugs for the classifier/batch affinity-memo protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClMutation {
    /// Faithful port: the memo holds a strong clone of the rule handle.
    None,
    /// The memo caches the raw allocation handle instead of a clone —
    /// the "avoid the refcount bump per packet" optimization. A
    /// republication plus drain between two same-flow packets then frees
    /// the memoized rule under the batch.
    MemoRawHandle,
}

/// Distilled rule-publication cell for one flow: the model twin of the
/// Global MAT's per-flow rule slot as seen by
/// [`crate::global::GlobalMat::process_batch`]'s affinity memo.
pub struct ClassifierModel {
    rule: ArcSwapModel<u64>,
}

impl std::fmt::Debug for ClassifierModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassifierModel").finish_non_exhaustive()
    }
}

impl ClassifierModel {
    /// Creates the cell publishing generation 0 (must run inside a
    /// checker execution).
    pub fn new() -> Self {
        ClassifierModel { rule: ArcSwapModel::new("rule-g0", 0, CellMutation::None) }
    }

    /// Mirror of the batch fast path for a two-packet same-flow run: the
    /// first packet resolves the rule through the cell, the memo serves
    /// the second. Returns `(first, second)` generation observations.
    pub fn batch_of_two(&self, mutation: ClMutation) -> (u64, u64) {
        let resolved = self.rule.load();
        let first = *resolved.value();
        match mutation {
            ClMutation::None => {
                // The memo is a strong clone (`Arc::clone` in
                // `process_batch`); the resolved guard itself is dropped,
                // as the real code drops its temporaries.
                let memo = resolved.clone();
                drop(resolved);
                let second = *memo.value();
                (first, second)
            }
            ClMutation::MemoRawHandle => {
                // Seeded bug: cache the raw handle, drop the strong
                // reference, dereference later.
                let raw = resolved.raw_id();
                drop(resolved);
                let second = raw_read::<u64>(raw);
                (first, second)
            }
        }
    }

    /// Control-plane republication: publish generation `gen`.
    pub fn republish(&self, gen: u64) {
        self.rule.store(ModelArc::new("rule-g1", gen));
    }

    /// Retired rule generations not yet reclaimed.
    pub fn pending(&self) -> usize {
        self.rule.pending()
    }

    /// Attempts to reclaim retired generations; returns how many freed.
    pub fn collect(&self) -> usize {
        self.rule.collect()
    }
}

impl Default for ClassifierModel {
    fn default() -> Self {
        Self::new()
    }
}

/// Checker scenarios over the MAT models, shared by the `cargo test`
/// exhaustive tier (tests/model_flow_table.rs, tests/model_classifier.rs)
/// and the `speedybox-check` binary.
pub mod scenarios {
    use super::*;

    /// Eviction racing a conditional rewrite on the same flow. In every
    /// schedule the quiescent table must be consistent: either the
    /// rewrite won (entry present, indexed, owned by the flow) or the
    /// eviction won (entry absent, slot free) — never a resurrected
    /// entry in a freed slot. [`FtMutation::ToctouReplace`] must be
    /// caught by the consistency check.
    pub fn ft_evict_vs_rewrite(mutation: FtMutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let table = StdArc::new(FlowTableModel::new(mutation));
            table.insert(0, 10);
            let t = table.clone();
            let evictor = speedybox_check::spawn(move || {
                if t.remove(0) {
                    fact("eviction won the race");
                }
            });
            let t = table.clone();
            let rewriter = speedybox_check::spawn(move || {
                if t.replace_if_present(0, 11) {
                    fact("rewrite found the flow present");
                }
            });
            evictor.join();
            rewriter.join();
            table.check_consistency();
            // Whatever the outcome, retired values must drain now.
            table.collect_generations();
            assert_eq!(table.pending_generations(), 0, "retired backlog not drained");
        }
    }

    /// A wait-free reader racing a remove + insert that recycles the
    /// freed slot for a different flow. The reader must observe its FID's
    /// value or a miss — never the other flow's value (the owner check),
    /// and the quiescent index must agree with the slots.
    /// [`FtMutation::SkipIndexReset`] must be caught.
    pub fn ft_recycle_vs_reader(mutation: FtMutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let table = StdArc::new(FlowTableModel::new(mutation));
            table.insert(0, 10);
            let t = table.clone();
            let reader = speedybox_check::spawn(move || match t.lookup(0) {
                Some(v) => {
                    assert_eq!(v, 10, "reader observed another flow's value for fid 0");
                    fact("reader hit before the recycle");
                }
                None => fact("reader missed (evicted or mid-recycle)"),
            });
            let t = table.clone();
            let recycler = speedybox_check::spawn(move || {
                t.remove(0);
                // Recycles slot 0 for fid 1 through the free list.
                t.insert(1, 20);
            });
            reader.join();
            recycler.join();
            table.check_consistency();
            assert_eq!(table.lookup(1), Some(20), "recycled entry lost");
            if mutation == FtMutation::None {
                assert_eq!(table.lookup(0), None, "removed entry still resolves");
            }
            table.collect_generations();
            assert_eq!(table.pending_generations(), 0, "retired backlog not drained");
        }
    }

    /// A batch's two-packet same-flow memo run racing a rule
    /// republication. Invariants: the memo run observes one consistent
    /// generation, and the memoized handle stays alive across the
    /// republication and its drain. [`ClMutation::MemoRawHandle`] must be
    /// caught as a use-after-free.
    pub fn cl_memo_vs_republish(mutation: ClMutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let cl = StdArc::new(ClassifierModel::new());
            let c = cl.clone();
            let batch = speedybox_check::spawn(move || {
                let (first, second) = c.batch_of_two(mutation);
                assert_eq!(first, second, "memo run saw two generations");
                if first == 0 {
                    fact("memo pinned the pre-publication rule");
                } else {
                    fact("batch began after republication");
                }
            });
            let c = cl.clone();
            let publisher = speedybox_check::spawn(move || {
                c.republish(1);
            });
            batch.join();
            publisher.join();
            cl.collect();
            assert_eq!(cl.pending(), 0, "retired rule generation not drained");
        }
    }
}
