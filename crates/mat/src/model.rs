//! Model-checkable ports of the two concurrency-critical MAT protocols,
//! built on `speedybox-check`'s virtual primitives so the checker can
//! exhaustively enumerate interleavings within a preemption bound.
//!
//! Three protocols are distilled here:
//!
//! * [`FlowTableModel`] — the slab slot protocol of
//!   [`crate::flow_table::FlowTable`], shrunk to one shard, two FIDs and
//!   two slots but keeping every step that matters for the races: the
//!   direct FID index (`AtomicU32` holding slot + 1), the per-slot RCU
//!   value cell, the owner check on lookup, the shared-empty store that
//!   retires cleared values, the free-list recycle, and the writer mutex
//!   that serializes all structural changes. The proved invariants are the
//!   eviction-vs-rewrite atomicity of
//!   [`crate::flow_table::FlowTable::replace_if_present`] (a rewrite that
//!   loses to an eviction must not resurrect the entry) and index/slot
//!   agreement across slab recycling under a concurrent wait-free reader.
//! * [`ClassifierModel`] — the rule-generation publication protocol of
//!   [`crate::global::GlobalMat::process_batch`]'s flow-affinity memo: a
//!   batch reader resolves a flow's rule once and serves same-flow
//!   packets from the memo while the control plane republishes. The
//!   proved invariants are memo-run generation consistency and liveness
//!   of the memoized handle (the memo holds a strong clone, so a
//!   republication plus drain cannot free it).
//! * [`QuarantineModel`] — the NF-recovery quarantine/republish
//!   handshake of [`crate::global::GlobalMat::quarantine_nf`] and the
//!   platform supervisor's kill path: quarantine → sweep → restore →
//!   replay → reopen → republish, raced by a wait-free fast-path reader
//!   and a churn install. The proved invariant is that no reader ever
//!   serves a rule consolidated from restored-but-not-replayed NF state.
//!
//! Each model carries seeded-bug mutations ([`FtMutation`],
//! [`ClMutation`], [`QMutation`]) that weaken the protocol the way a plausible
//! refactoring would; the checker must catch every one, which is the
//! evidence a clean run means something. The correspondence argument
//! between these distillations and the real code is written out in
//! DESIGN.md §14.

use std::sync::Arc as StdArc;

use arcswap::model::{ArcSwapModel, Mutation as CellMutation};
use speedybox_check::{fact, raw_read, ModelArc, ModelAtomicUsize, ModelMutex, Ordering};

/// FIDs used by the distilled flow-table model.
const FIDS: usize = 2;
/// Slab slots. Two are enough to express recycling.
const SLOTS: usize = 2;

/// A slot's published state: empty, or `(owner fid, value)` — the model
/// twin of `flow_table::SlotVal`.
type SlotVal = Option<(usize, u64)>;

/// Seeded bugs for the flow-table slot protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtMutation {
    /// Faithful port of the shipped protocol.
    None,
    /// `replace_if_present` releases the writer lock between its index
    /// check and its store — the TOCTOU a "shorten the critical section"
    /// refactoring would introduce. A rewrite can then lose to an
    /// eviction yet still publish, resurrecting the entry into a freed
    /// (and recyclable) slot.
    ToctouReplace,
    /// `clear_slot` forgets to reset the FID index cell, leaving the
    /// index pointing at an empty (and soon recycled) slot.
    SkipIndexReset,
}

/// Mutable shard-writer state, serialized behind the writer mutex —
/// the model twin of `flow_table::ShardWriter` (no timer wheel: recency
/// is not part of the proved invariants).
struct Writer {
    free: Vec<usize>,
    allocated: usize,
    live: usize,
}

/// Distilled one-shard [`crate::flow_table::FlowTable`]. See module docs
/// for what is kept and what is elided.
pub struct FlowTableModel {
    /// `index[fid]` holds slot + 1, or 0 when the FID is absent — the
    /// model twin of the `AtomicU32` FID-index cells.
    index: [ModelAtomicUsize; FIDS],
    /// Slot value cells, each the model twin of `Slot::val`.
    slots: [ArcSwapModel<SlotVal>; SLOTS],
    writer: ModelMutex<Writer>,
    /// Shared empty value: clearing a slot stores a clone of this, which
    /// retires the old `(fid, value)` through the slot's RCU path —
    /// exactly like `FlowTable::empty`.
    empty: ModelArc<SlotVal>,
    mutation: FtMutation,
}

impl std::fmt::Debug for FlowTableModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowTableModel").field("mutation", &self.mutation).finish_non_exhaustive()
    }
}

impl FlowTableModel {
    /// Creates the empty distilled table (must run inside a checker
    /// execution).
    pub fn new(mutation: FtMutation) -> Self {
        FlowTableModel {
            index: [ModelAtomicUsize::new("ft.index0", 0), ModelAtomicUsize::new("ft.index1", 0)],
            slots: [
                ArcSwapModel::new("ft.slot0.empty", None, CellMutation::None),
                ArcSwapModel::new("ft.slot1.empty", None, CellMutation::None),
            ],
            writer: ModelMutex::new(
                "ft.writer",
                Writer { free: Vec::new(), allocated: 0, live: 0 },
            ),
            empty: ModelArc::new("ft.empty", None),
            mutation,
        }
    }

    /// Mirror of `FlowTable::lookup`: index load, slot cell load, owner
    /// check. Wait-free — never touches the writer mutex.
    pub fn lookup(&self, fid: usize) -> Option<u64> {
        let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
        if slot_plus_one == 0 {
            return None;
        }
        let val = self.slots[slot_plus_one - 1].load();
        match val.value() {
            // Owner check: the slot may have been recycled to a different
            // FID between the index load and the cell load; a mismatch
            // linearizes as "absent".
            Some((owner, value)) if *owner == fid => Some(*value),
            _ => None,
        }
    }

    /// Mirror of `FlowTable::insert` (fresh-entry path plus in-place
    /// replace), minus capacity/eviction policy.
    pub fn insert(&self, fid: usize, value: u64) {
        let mut w = self.writer.lock();
        let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
        if slot_plus_one != 0 {
            // In-place replace: the old value retires through the slot's
            // RCU cell.
            self.slots[slot_plus_one - 1].store(ModelArc::new("ft.val", Some((fid, value))));
            return;
        }
        let slot = w.free.pop().unwrap_or_else(|| {
            let s = w.allocated;
            w.allocated += 1;
            s
        });
        // Publish order matters and matches `FlowTable::publish`: value
        // first, then the index — a reader racing the index store must
        // find either nothing or the fully published entry.
        self.slots[slot].store(ModelArc::new("ft.val", Some((fid, value))));
        self.index[fid].store(slot + 1, Ordering::SeqCst);
        w.live += 1;
    }

    /// Mirror of `FlowTable::remove` / the eviction half of `clear_slot`.
    pub fn remove(&self, fid: usize) -> bool {
        let mut w = self.writer.lock();
        let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
        if slot_plus_one == 0 {
            return false;
        }
        self.clear_slot(&mut w, fid, slot_plus_one - 1);
        true
    }

    /// Mirror of `FlowTable::clear_slot`: store the shared empty (which
    /// retires the old value through the RCU path), reset the index,
    /// recycle the slot. Caller holds the writer lock.
    fn clear_slot(&self, w: &mut Writer, fid: usize, slot: usize) {
        self.slots[slot].store(self.empty.clone());
        if self.mutation != FtMutation::SkipIndexReset {
            self.index[fid].store(0, Ordering::SeqCst);
        }
        w.free.push(slot);
        w.live -= 1;
    }

    /// Mirror of `FlowTable::replace_if_present`: replace the entry only
    /// if the flow is still present, atomically with respect to evictions
    /// — the primitive that keeps a lost rewrite from resurrecting a rule
    /// whose Local MATs were already torn down.
    pub fn replace_if_present(&self, fid: usize, value: u64) -> bool {
        if self.mutation == FtMutation::ToctouReplace {
            // Seeded bug: check and store in separate critical sections.
            let slot = {
                let _w = self.writer.lock();
                let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
                if slot_plus_one == 0 {
                    return false;
                }
                slot_plus_one - 1
            };
            let _w = self.writer.lock();
            self.slots[slot].store(ModelArc::new("ft.val", Some((fid, value))));
            return true;
        }
        let _w = self.writer.lock();
        let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
        if slot_plus_one == 0 {
            return false;
        }
        self.slots[slot_plus_one - 1].store(ModelArc::new("ft.val", Some((fid, value))));
        true
    }

    /// Quiescent-state invariant: the index and the slots agree. Checked
    /// by scenarios after all racing threads joined, so a violation means
    /// a race left the table permanently inconsistent (not merely a
    /// transiently stale view).
    pub fn check_consistency(&self) {
        for fid in 0..FIDS {
            let slot_plus_one = self.index[fid].load(Ordering::SeqCst);
            if slot_plus_one == 0 {
                continue;
            }
            let val = self.slots[slot_plus_one - 1].load();
            match val.value() {
                Some((owner, _)) => {
                    assert_eq!(*owner, fid, "index[{fid}] points at a slot owned by fid {owner}")
                }
                None => panic!("index[{fid}] points at an empty slot"),
            }
        }
        for slot in 0..SLOTS {
            let val = self.slots[slot].load();
            if let Some((owner, _)) = val.value() {
                assert_eq!(
                    self.index[*owner].load(Ordering::SeqCst),
                    slot + 1,
                    "slot {slot} holds fid {owner} but the index does not point at it \
                     (resurrected entry)"
                );
            }
        }
    }

    /// Retired slot values not yet reclaimed, summed over the slots — the
    /// model twin of `FlowTable::pending_generations`.
    pub fn pending_generations(&self) -> usize {
        self.slots.iter().map(ArcSwapModel::pending).sum()
    }

    /// Model twin of `FlowTable::collect_generations`.
    pub fn collect_generations(&self) -> usize {
        self.slots.iter().map(ArcSwapModel::collect).sum()
    }
}

/// Seeded bugs for the classifier/batch affinity-memo protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClMutation {
    /// Faithful port: the memo holds a strong clone of the rule handle.
    None,
    /// The memo caches the raw allocation handle instead of a clone —
    /// the "avoid the refcount bump per packet" optimization. A
    /// republication plus drain between two same-flow packets then frees
    /// the memoized rule under the batch.
    MemoRawHandle,
}

/// Distilled rule-publication cell for one flow: the model twin of the
/// Global MAT's per-flow rule slot as seen by
/// [`crate::global::GlobalMat::process_batch`]'s affinity memo.
pub struct ClassifierModel {
    rule: ArcSwapModel<u64>,
}

impl std::fmt::Debug for ClassifierModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassifierModel").finish_non_exhaustive()
    }
}

impl ClassifierModel {
    /// Creates the cell publishing generation 0 (must run inside a
    /// checker execution).
    pub fn new() -> Self {
        ClassifierModel { rule: ArcSwapModel::new("rule-g0", 0, CellMutation::None) }
    }

    /// Mirror of the batch fast path for a two-packet same-flow run: the
    /// first packet resolves the rule through the cell, the memo serves
    /// the second. Returns `(first, second)` generation observations.
    pub fn batch_of_two(&self, mutation: ClMutation) -> (u64, u64) {
        let resolved = self.rule.load();
        let first = *resolved.value();
        match mutation {
            ClMutation::None => {
                // The memo is a strong clone (`Arc::clone` in
                // `process_batch`); the resolved guard itself is dropped,
                // as the real code drops its temporaries.
                let memo = resolved.clone();
                drop(resolved);
                let second = *memo.value();
                (first, second)
            }
            ClMutation::MemoRawHandle => {
                // Seeded bug: cache the raw handle, drop the strong
                // reference, dereference later.
                let raw = resolved.raw_id();
                drop(resolved);
                let second = raw_read::<u64>(raw);
                (first, second)
            }
        }
    }

    /// Control-plane republication: publish generation `gen`.
    pub fn republish(&self, gen: u64) {
        self.rule.store(ModelArc::new("rule-g1", gen));
    }

    /// Retired rule generations not yet reclaimed.
    pub fn pending(&self) -> usize {
        self.rule.pending()
    }

    /// Attempts to reclaim retired generations; returns how many freed.
    pub fn collect(&self) -> usize {
        self.rule.collect()
    }
}

impl Default for ClassifierModel {
    fn default() -> Self {
        Self::new()
    }
}

/// NF state epoch at the last chain-consistent checkpoint.
const EPOCH_SNAPSHOT: u64 = 3;
/// NF state epoch after the bounded in-flight log replays — the live,
/// fully recovered state.
const EPOCH_LIVE: u64 = 5;

/// Seeded bugs for the NF-recovery quarantine/republish handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QMutation {
    /// Faithful port of the recovery protocol: quarantine, sweep,
    /// restore, replay, reopen publication, republish from live state.
    None,
    /// The recovery path republishes the flow's rule right after the
    /// snapshot restore, before the in-flight log replays — the "get the
    /// fast path back up early" refactoring. A reader can then serve a
    /// rule consolidated from half-recovered NF state.
    RepublishBeforeReplay,
}

/// Distilled quarantine/republish handshake for one NF and one flow: the
/// model twin of the Global MAT quarantine mask
/// ([`crate::global::GlobalMat::quarantine_nf`]) plus the supervisor's
/// kill → quarantine → replay → republish sequence. The rule cell
/// carries the NF-state *epoch* the rule was consolidated from, which is
/// all the invariant needs: a published rule is only valid if it was
/// consolidated from fully replayed (live) state.
pub struct QuarantineModel {
    /// Model twin of the quarantine bit mask (`AtomicU64` in the real
    /// MAT; one NF here, so one bit).
    mask: ModelAtomicUsize,
    /// The flow's published rule slot: `None` = swept (fast path misses),
    /// `Some(epoch)` = a rule consolidated from NF state at `epoch`.
    rule: ArcSwapModel<Option<u64>>,
    /// The NF's state, reduced to the epoch it has advanced to — guarded
    /// like the `Arc<Mutex<..>>` state containers of the real NFs.
    nf_state: ModelMutex<u64>,
    /// Shared empty value: sweeping stores a clone of this, retiring the
    /// old rule through the cell's RCU path.
    empty: ModelArc<Option<u64>>,
    mutation: QMutation,
}

impl std::fmt::Debug for QuarantineModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuarantineModel").field("mutation", &self.mutation).finish_non_exhaustive()
    }
}

impl QuarantineModel {
    /// Creates the steady-state model: live NF state, a rule consolidated
    /// from it already published (must run inside a checker execution).
    pub fn new(mutation: QMutation) -> Self {
        QuarantineModel {
            mask: ModelAtomicUsize::new("q.mask", 0),
            rule: ArcSwapModel::new("q.rule.live", Some(EPOCH_LIVE), CellMutation::None),
            nf_state: ModelMutex::new("q.nf-state", EPOCH_LIVE),
            empty: ModelArc::new("q.empty", None),
            mutation,
        }
    }

    /// Mirror of `GlobalMat::install` under recovery: the quarantine gate
    /// refuses publication while the mask is set; otherwise a rule
    /// consolidated from `epoch` state publishes through the RCU cell.
    pub fn install(&self, epoch: u64) -> bool {
        if self.mask.load(Ordering::SeqCst) != 0 {
            return false;
        }
        self.rule.store(ModelArc::new("q.rule", Some(epoch)));
        true
    }

    /// Mirror of the worker fast path: the per-packet quarantine check
    /// routes to the baseline walk (`None`) while the mask is set;
    /// otherwise the published rule, if any, is served. Wait-free.
    pub fn serve(&self) -> Option<u64> {
        if self.mask.load(Ordering::SeqCst) != 0 {
            return None;
        }
        *self.rule.load().value()
    }

    /// Mirror of the supervisor's kill path: quarantine first, sweep the
    /// published rule, roll the NF back to the checkpoint, replay the
    /// in-flight log, reopen publication, then republish from the
    /// now-live state (the organic slow-path re-record).
    pub fn kill_and_recover(&self) {
        self.mask.store(1, Ordering::SeqCst);
        self.rule.store(self.empty.clone());
        *self.nf_state.lock() = EPOCH_SNAPSHOT;
        if self.mutation == QMutation::RepublishBeforeReplay {
            // Seeded bug: consolidate and republish from the restored
            // state before the in-flight log has replayed.
            let epoch = *self.nf_state.lock();
            self.rule.store(ModelArc::new("q.rule.stale", Some(epoch)));
        }
        *self.nf_state.lock() = EPOCH_LIVE;
        self.mask.store(0, Ordering::SeqCst);
        let epoch = *self.nf_state.lock();
        self.install(epoch);
    }

    /// Quiescent-state invariant: mask clear, state fully replayed, and
    /// the republished rule consolidated from live state.
    pub fn check_quiescent(&self) {
        assert_eq!(self.mask.load(Ordering::SeqCst), 0, "quarantine mask left set");
        assert_eq!(*self.nf_state.lock(), EPOCH_LIVE, "NF state not fully replayed");
        match self.rule.load().value() {
            Some(epoch) => {
                assert_eq!(*epoch, EPOCH_LIVE, "quiescent rule consolidated from epoch {epoch}")
            }
            None => panic!("recovered flow left with no republished rule"),
        }
    }

    /// Retired rule generations not yet reclaimed.
    pub fn pending(&self) -> usize {
        self.rule.pending()
    }

    /// Attempts to reclaim retired generations; returns how many freed.
    pub fn collect(&self) -> usize {
        self.rule.collect()
    }
}

/// Checker scenarios over the MAT models, shared by the `cargo test`
/// exhaustive tier (tests/model_flow_table.rs, tests/model_classifier.rs,
/// tests/model_quarantine.rs) and the `speedybox-check` binary.
pub mod scenarios {
    use super::*;

    /// Eviction racing a conditional rewrite on the same flow. In every
    /// schedule the quiescent table must be consistent: either the
    /// rewrite won (entry present, indexed, owned by the flow) or the
    /// eviction won (entry absent, slot free) — never a resurrected
    /// entry in a freed slot. [`FtMutation::ToctouReplace`] must be
    /// caught by the consistency check.
    pub fn ft_evict_vs_rewrite(mutation: FtMutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let table = StdArc::new(FlowTableModel::new(mutation));
            table.insert(0, 10);
            let t = table.clone();
            let evictor = speedybox_check::spawn(move || {
                if t.remove(0) {
                    fact("eviction won the race");
                }
            });
            let t = table.clone();
            let rewriter = speedybox_check::spawn(move || {
                if t.replace_if_present(0, 11) {
                    fact("rewrite found the flow present");
                }
            });
            evictor.join();
            rewriter.join();
            table.check_consistency();
            // Whatever the outcome, retired values must drain now.
            table.collect_generations();
            assert_eq!(table.pending_generations(), 0, "retired backlog not drained");
        }
    }

    /// A wait-free reader racing a remove + insert that recycles the
    /// freed slot for a different flow. The reader must observe its FID's
    /// value or a miss — never the other flow's value (the owner check),
    /// and the quiescent index must agree with the slots.
    /// [`FtMutation::SkipIndexReset`] must be caught.
    pub fn ft_recycle_vs_reader(mutation: FtMutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let table = StdArc::new(FlowTableModel::new(mutation));
            table.insert(0, 10);
            let t = table.clone();
            let reader = speedybox_check::spawn(move || match t.lookup(0) {
                Some(v) => {
                    assert_eq!(v, 10, "reader observed another flow's value for fid 0");
                    fact("reader hit before the recycle");
                }
                None => fact("reader missed (evicted or mid-recycle)"),
            });
            let t = table.clone();
            let recycler = speedybox_check::spawn(move || {
                t.remove(0);
                // Recycles slot 0 for fid 1 through the free list.
                t.insert(1, 20);
            });
            reader.join();
            recycler.join();
            table.check_consistency();
            assert_eq!(table.lookup(1), Some(20), "recycled entry lost");
            if mutation == FtMutation::None {
                assert_eq!(table.lookup(0), None, "removed entry still resolves");
            }
            table.collect_generations();
            assert_eq!(table.pending_generations(), 0, "retired backlog not drained");
        }
    }

    /// A batch's two-packet same-flow memo run racing a rule
    /// republication. Invariants: the memo run observes one consistent
    /// generation, and the memoized handle stays alive across the
    /// republication and its drain. [`ClMutation::MemoRawHandle`] must be
    /// caught as a use-after-free.
    pub fn cl_memo_vs_republish(mutation: ClMutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let cl = StdArc::new(ClassifierModel::new());
            let c = cl.clone();
            let batch = speedybox_check::spawn(move || {
                let (first, second) = c.batch_of_two(mutation);
                assert_eq!(first, second, "memo run saw two generations");
                if first == 0 {
                    fact("memo pinned the pre-publication rule");
                } else {
                    fact("batch began after republication");
                }
            });
            let c = cl.clone();
            let publisher = speedybox_check::spawn(move || {
                c.republish(1);
            });
            batch.join();
            publisher.join();
            cl.collect();
            assert_eq!(cl.pending(), 0, "retired rule generation not drained");
        }
    }

    /// An NF kill/recovery racing a wait-free fast-path reader and a
    /// churn install. In every schedule a reader that hits the fast path
    /// must observe a rule consolidated from fully replayed (live) NF
    /// state — mid-window it falls back to the baseline walk instead —
    /// and the quiescent model must end with the mask clear and a live
    /// rule republished. [`QMutation::RepublishBeforeReplay`] must be
    /// caught: it lets the reader serve a rule consolidated from
    /// restored-but-not-replayed state.
    pub fn q_kill_vs_reader(mutation: QMutation) -> impl Fn() + Send + Sync + 'static {
        move || {
            let q = StdArc::new(QuarantineModel::new(mutation));
            let m = q.clone();
            let supervisor = speedybox_check::spawn(move || {
                m.kill_and_recover();
            });
            let m = q.clone();
            let reader = speedybox_check::spawn(move || match m.serve() {
                Some(epoch) => {
                    assert_eq!(
                        epoch, EPOCH_LIVE,
                        "fast path served a rule consolidated from un-replayed state"
                    );
                    fact("reader hit the fast path");
                }
                None => fact("reader fell back to the baseline walk"),
            });
            let m = q.clone();
            let installer = speedybox_check::spawn(move || {
                // Churn consolidating a still-valid recording (recordings
                // are made from live state; the sweep tears them down, so
                // a mid-window rebuild can only be refused by the gate).
                if m.install(EPOCH_LIVE) {
                    fact("churn install landed");
                } else {
                    fact("churn install refused by the quarantine gate");
                }
            });
            supervisor.join();
            reader.join();
            installer.join();
            q.check_quiescent();
            q.collect();
            assert_eq!(q.pending(), 0, "retired rule generations not drained");
        }
    }
}
