//! The Event Table: stateful behaviour on the fast path (paper §V-C1).
//!
//! Observation 2 of the paper: some NFs change a flow's actions at runtime
//! when internal state reaches a condition (Maglev re-routing on backend
//! failure, a DoS guard flipping to drop past a SYN threshold). NFs
//! register events through `register_event` (Fig 2); the Global MAT checks
//! the registered conditions and, when one fires, patches the flow's rule
//! and re-consolidates — Fig 3's workflow.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use speedybox_packet::Fid;

use crate::action::HeaderAction;
use crate::local::NfId;
use crate::ops::OpCounter;
use crate::state_fn::StateFunction;

/// The rule update an event applies to the registering NF's per-flow rule.
///
/// `None` fields leave that part of the rule unchanged. Mirrors Fig 2's
/// `register_event(..., HA update_action, update_function_handler*)`: an
/// event may replace the header action, the state functions, or both.
#[derive(Clone, Default)]
pub struct RulePatch {
    /// Replacement header actions for the flow at this NF.
    pub header_actions: Option<Vec<HeaderAction>>,
    /// Replacement state functions for the flow at this NF.
    pub state_functions: Option<Vec<StateFunction>>,
}

impl RulePatch {
    /// A patch that replaces the header action.
    #[must_use]
    pub fn set_action(action: HeaderAction) -> Self {
        Self { header_actions: Some(vec![action]), state_functions: None }
    }

    /// A patch that replaces the state functions.
    #[must_use]
    pub fn set_state_functions(funcs: Vec<StateFunction>) -> Self {
        Self { header_actions: None, state_functions: Some(funcs) }
    }

    /// True if the patch changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.header_actions.is_none() && self.state_functions.is_none()
    }
}

impl fmt::Debug for RulePatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RulePatch")
            .field("header_actions", &self.header_actions)
            .field(
                "state_functions",
                &self
                    .state_functions
                    .as_ref()
                    .map(|v| v.iter().map(|s| s.name().to_owned()).collect::<Vec<_>>()),
            )
            .finish()
    }
}

/// Condition handler: "a general callback handler that can be implemented
/// with user-defined functions" (paper Fig 1, `state.matchCondition`).
/// Typically captures the NF's shared state.
pub type CondHandler = Arc<dyn Fn(Fid) -> bool + Send + Sync>;

/// Update handler: computes the rule patch when the condition fires
/// (computed at trigger time — e.g. Maglev picks the *new* backend then).
pub type UpdateHandler = Arc<dyn Fn(Fid) -> RulePatch + Send + Sync>;

/// A registered event: condition plus update, owned by one NF for one flow.
#[derive(Clone)]
pub struct Event {
    /// Flow the event watches.
    pub fid: Fid,
    /// The NF whose rule the patch applies to.
    pub nf: NfId,
    /// Diagnostic name.
    pub name: String,
    /// If true the event is deregistered after it fires once.
    pub one_shot: bool,
    condition: CondHandler,
    update: UpdateHandler,
}

impl Event {
    /// Creates an event.
    pub fn new(
        fid: Fid,
        nf: NfId,
        name: impl Into<String>,
        condition: impl Fn(Fid) -> bool + Send + Sync + 'static,
        update: impl Fn(Fid) -> RulePatch + Send + Sync + 'static,
    ) -> Self {
        Self {
            fid,
            nf,
            name: name.into(),
            one_shot: true,
            condition: Arc::new(condition),
            update: Arc::new(update),
        }
    }

    /// Makes the event persistent: it keeps firing whenever its condition
    /// holds (default is one-shot).
    #[must_use]
    pub fn recurring(mut self) -> Self {
        self.one_shot = false;
        self
    }

    /// Evaluates the condition.
    #[must_use]
    pub fn is_triggered(&self) -> bool {
        (self.condition)(self.fid)
    }

    /// Computes the patch (call when triggered).
    #[must_use]
    pub fn compute_patch(&self) -> RulePatch {
        (self.update)(self.fid)
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event")
            .field("fid", &self.fid)
            .field("nf", &self.nf)
            .field("name", &self.name)
            .field("one_shot", &self.one_shot)
            .finish_non_exhaustive()
    }
}

/// The Event Table: per-flow registered events, checked by the Global MAT
/// before each fast-path rule application.
///
/// ```
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
///
/// use speedybox_mat::{Event, EventTable, HeaderAction, NfId, OpCounter, RulePatch};
/// use speedybox_packet::Fid;
///
/// let table = EventTable::new();
/// let tripped = Arc::new(AtomicBool::new(false));
/// let t = tripped.clone();
/// table.register(Event::new(
///     Fid::new(7),
///     NfId::new(0),
///     "threshold",
///     move |_| t.load(Ordering::Relaxed),
///     |_| RulePatch::set_action(HeaderAction::Drop),
/// ));
/// let mut ops = OpCounter::default();
/// assert!(table.check(Fid::new(7), &mut ops).is_empty());
/// tripped.store(true, Ordering::Relaxed);
/// let fired = table.check(Fid::new(7), &mut ops);
/// assert_eq!(fired.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EventTable {
    events: RwLock<HashMap<Fid, Vec<Event>>>,
    /// Optional telemetry sink (events-fired counter). Set once, after
    /// construction, because the table is created inside `GlobalMat` and
    /// shared as an `Arc`.
    sink: std::sync::OnceLock<Arc<speedybox_telemetry::Telemetry>>,
}

impl EventTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry sink. Later calls on an already-sinked table
    /// are ignored (first sink wins).
    pub fn set_telemetry(&self, sink: Arc<speedybox_telemetry::Telemetry>) {
        let _ = self.sink.set(sink);
    }

    /// Registers an event (the `register_event` API of Fig 2).
    pub fn register(&self, event: Event) {
        self.events.write().entry(event.fid).or_default().push(event);
    }

    /// Checks all events registered for `fid`; returns the `(nf, patch)`
    /// pairs of triggered events, in registration order. Triggered one-shot
    /// events are deregistered.
    pub fn check(&self, fid: Fid, ops: &mut OpCounter) -> Vec<(NfId, RulePatch)> {
        // Fast path: most packets have no triggered events; take the read
        // lock and bail before paying for the write lock.
        let any_triggered = {
            let events = self.events.read();
            let Some(list) = events.get(&fid) else { return Vec::new() };
            ops.event_checks += list.len() as u64;
            list.iter().any(Event::is_triggered)
        };
        if !any_triggered {
            return Vec::new();
        }
        let mut events = self.events.write();
        let Some(list) = events.get_mut(&fid) else { return Vec::new() };
        let mut fired = Vec::new();
        let mut keep = Vec::with_capacity(list.len());
        for event in list.drain(..) {
            if event.is_triggered() {
                fired.push((event.nf, event.compute_patch()));
                if !event.one_shot {
                    keep.push(event);
                }
            } else {
                keep.push(event);
            }
        }
        *list = keep;
        if list.is_empty() {
            events.remove(&fid);
        }
        if !fired.is_empty() {
            if let Some(sink) = self.sink.get() {
                sink.shard(fid.index() as u64).add_events_fired(fired.len() as u64);
            }
        }
        fired
    }

    /// Number of flows with registered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.read().len()
    }

    /// True if no events are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.read().is_empty()
    }

    /// Drops all events for a flow (FIN/RST cleanup).
    pub fn remove_flow(&self, fid: Fid) {
        self.events.write().remove(&fid);
    }

    /// A snapshot of the events registered for `fid`, in registration
    /// order. Used by `speedybox-verify`'s event-rewrite pass to check the
    /// rule each registered `(condition, update)` pair would install,
    /// before any condition ever fires.
    #[must_use]
    pub fn events_for(&self, fid: Fid) -> Vec<Event> {
        self.events.read().get(&fid).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

    use super::*;

    fn fid(n: u32) -> Fid {
        Fid::new(n)
    }

    #[test]
    fn untriggered_event_stays() {
        let table = EventTable::new();
        table.register(Event::new(
            fid(1),
            NfId::new(0),
            "never",
            |_| false,
            |_| RulePatch::default(),
        ));
        let mut ops = OpCounter::default();
        assert!(table.check(fid(1), &mut ops).is_empty());
        assert_eq!(table.len(), 1);
        assert_eq!(ops.event_checks, 1);
    }

    #[test]
    fn one_shot_event_fires_once() {
        let armed = Arc::new(AtomicBool::new(true));
        let a = armed;
        let table = EventTable::new();
        table.register(Event::new(
            fid(1),
            NfId::new(2),
            "flip",
            move |_| a.load(Ordering::Relaxed),
            |_| RulePatch::set_action(HeaderAction::Drop),
        ));
        let mut ops = OpCounter::default();
        let fired = table.check(fid(1), &mut ops);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, NfId::new(2));
        assert_eq!(fired[0].1.header_actions, Some(vec![HeaderAction::Drop]));
        // Deregistered after firing.
        assert!(table.is_empty());
        assert!(table.check(fid(1), &mut ops).is_empty());
    }

    #[test]
    fn recurring_event_keeps_firing() {
        let table = EventTable::new();
        table.register(
            Event::new(fid(1), NfId::new(0), "always", |_| true, |_| RulePatch::default())
                .recurring(),
        );
        let mut ops = OpCounter::default();
        assert_eq!(table.check(fid(1), &mut ops).len(), 1);
        assert_eq!(table.check(fid(1), &mut ops).len(), 1);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn events_keyed_by_flow() {
        let table = EventTable::new();
        table.register(Event::new(fid(1), NfId::new(0), "e1", |_| true, |_| RulePatch::default()));
        let mut ops = OpCounter::default();
        assert!(table.check(fid(2), &mut ops).is_empty());
        assert_eq!(ops.event_checks, 0);
    }

    #[test]
    fn multiple_events_fire_in_registration_order() {
        let table = EventTable::new();
        table.register(Event::new(fid(1), NfId::new(0), "a", |_| true, |_| RulePatch::default()));
        table.register(Event::new(fid(1), NfId::new(1), "b", |_| true, |_| RulePatch::default()));
        let mut ops = OpCounter::default();
        let fired = table.check(fid(1), &mut ops);
        assert_eq!(fired.iter().map(|(nf, _)| nf.index()).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn patch_computed_at_trigger_time() {
        // The update handler must observe state as of the trigger, not
        // registration (Maglev picks the new backend when the old one dies).
        let value = Arc::new(AtomicU32::new(0));
        let v = value.clone();
        let table = EventTable::new();
        table.register(Event::new(
            fid(1),
            NfId::new(0),
            "dyn",
            |_| true,
            move |_| {
                assert_eq!(v.load(Ordering::Relaxed), 7);
                RulePatch::default()
            },
        ));
        value.store(7, Ordering::Relaxed);
        let mut ops = OpCounter::default();
        assert_eq!(table.check(fid(1), &mut ops).len(), 1);
    }

    #[test]
    fn remove_flow_clears_events() {
        let table = EventTable::new();
        table.register(Event::new(fid(1), NfId::new(0), "e", |_| true, |_| RulePatch::default()));
        table.remove_flow(fid(1));
        assert!(table.is_empty());
    }

    #[test]
    fn patch_constructors() {
        assert!(RulePatch::default().is_empty());
        assert!(!RulePatch::set_action(HeaderAction::Drop).is_empty());
        assert!(!RulePatch::set_state_functions(vec![]).is_empty());
    }
}
