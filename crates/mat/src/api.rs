//! The NF instrumentation API (paper Fig 2).
//!
//! The paper instruments NFs with four C functions:
//!
//! ```c
//! int  nf_extract_fid(packet_descriptor*);
//! void localmat_add_HA(int FID, HA header_action, args* arg_list);
//! void localmat_add_SF(int FID, function_handler*, int function_type, args* arg_list);
//! void register_event(int FID, condition_handler*, args* arg_list,
//!                     HA update_action, update_function_handler*);
//! ```
//!
//! [`NfInstrument`] is the Rust equivalent: a per-NF handle bundling the
//! NF's Local MAT with the chain's Event Table. An NF receives one in its
//! processing context and calls these methods while handling a flow's
//! initial packet — the calls *record* behaviour, they never change it
//! (§IV-B: "the APIs seek to only record NF behaviors ... the modifications
//! do not change the original processing logic").

use std::sync::Arc;

use speedybox_packet::{Fid, Packet};

use crate::action::HeaderAction;
use crate::event::{Event, EventTable, RulePatch};
use crate::local::{LocalMat, NfId};
use crate::ops::OpCounter;
use crate::state_fn::{PayloadAccess, StateFunction};

/// Per-NF instrumentation handle (the paper's Fig 2 API surface).
#[derive(Debug, Clone)]
pub struct NfInstrument {
    local: Arc<LocalMat>,
    events: Arc<EventTable>,
}

impl NfInstrument {
    /// Creates a handle binding an NF's Local MAT to the chain's Event
    /// Table.
    #[must_use]
    pub fn new(local: Arc<LocalMat>, events: Arc<EventTable>) -> Self {
        Self { local, events }
    }

    /// The instrumented NF's chain position.
    #[must_use]
    pub fn nf(&self) -> NfId {
        self.local.nf()
    }

    /// The NF's Local MAT.
    #[must_use]
    pub fn local_mat(&self) -> &Arc<LocalMat> {
        &self.local
    }

    /// `nf_extract_fid`: reads the FID metadata the classifier attached.
    /// Returns `None` for packets that bypassed the classifier.
    #[must_use]
    pub fn extract_fid(&self, packet: &Packet) -> Option<Fid> {
        packet.fid()
    }

    /// `localmat_add_HA`: records the flow's header action.
    pub fn add_header_action(&self, fid: Fid, action: HeaderAction, ops: &mut OpCounter) {
        self.local.add_header_action(fid, action, ops);
    }

    /// `localmat_add_SF`: records a state function (handler + payload
    /// access type) for the flow.
    pub fn add_state_function(
        &self,
        fid: Fid,
        name: impl Into<String>,
        access: PayloadAccess,
        handler: impl Fn(&mut crate::state_fn::SfContext<'_>) + Send + Sync + 'static,
        ops: &mut OpCounter,
    ) {
        self.local.add_state_function(fid, StateFunction::new(name, access, handler), ops);
    }

    /// `localmat_add_SF` taking a pre-built [`StateFunction`] (for handlers
    /// shared across flows, as with shared-state NFs, §IV-A2).
    pub fn add_state_function_handle(&self, fid: Fid, func: StateFunction, ops: &mut OpCounter) {
        self.local.add_state_function(fid, func, ops);
    }

    /// `register_event`: registers a condition and the rule patch to apply
    /// when it fires. One-shot by default; call `.recurring()` on the
    /// [`Event`] via [`NfInstrument::register_event_full`] for repeating
    /// events.
    pub fn register_event(
        &self,
        fid: Fid,
        name: impl Into<String>,
        condition: impl Fn(Fid) -> bool + Send + Sync + 'static,
        update: impl Fn(Fid) -> RulePatch + Send + Sync + 'static,
    ) {
        self.events.register(Event::new(fid, self.local.nf(), name, condition, update));
    }

    /// Registers a fully-built [`Event`] (must target this NF).
    ///
    /// # Panics
    /// Panics if the event's NF id differs from this handle's — an event
    /// patching another NF's rule is an instrumentation bug.
    pub fn register_event_full(&self, event: Event) {
        assert_eq!(event.nf, self.local.nf(), "event must target the registering NF");
        self.events.register(event);
    }
}

#[cfg(test)]
mod tests {
    use speedybox_packet::PacketBuilder;

    use super::*;

    fn instrument() -> NfInstrument {
        NfInstrument::new(Arc::new(LocalMat::new(NfId::new(3))), Arc::new(EventTable::new()))
    }

    #[test]
    fn extract_fid_reads_metadata() {
        let inst = instrument();
        let mut p = PacketBuilder::tcp().build();
        assert_eq!(inst.extract_fid(&p), None);
        let fid = Fid::new(42);
        p.set_fid(fid);
        assert_eq!(inst.extract_fid(&p), Some(fid));
    }

    #[test]
    fn add_header_action_lands_in_local_mat() {
        let inst = instrument();
        let mut ops = OpCounter::default();
        inst.add_header_action(Fid::new(1), HeaderAction::Drop, &mut ops);
        let rule = inst.local_mat().rule(Fid::new(1)).unwrap();
        assert_eq!(rule.header_actions, vec![HeaderAction::Drop]);
    }

    #[test]
    fn add_state_function_lands_in_local_mat() {
        let inst = instrument();
        let mut ops = OpCounter::default();
        inst.add_state_function(Fid::new(1), "f", PayloadAccess::Read, |_| {}, &mut ops);
        let rule = inst.local_mat().rule(Fid::new(1)).unwrap();
        assert_eq!(rule.state_functions.len(), 1);
        assert_eq!(rule.state_functions[0].access(), PayloadAccess::Read);
    }

    #[test]
    fn register_event_targets_own_nf() {
        let events = Arc::new(EventTable::new());
        let inst = NfInstrument::new(Arc::new(LocalMat::new(NfId::new(3))), events.clone());
        inst.register_event(Fid::new(1), "e", |_| true, |_| RulePatch::default());
        let mut ops = OpCounter::default();
        let fired = events.check(Fid::new(1), &mut ops);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, NfId::new(3));
    }

    #[test]
    #[should_panic(expected = "event must target the registering NF")]
    fn register_event_full_rejects_foreign_nf() {
        let inst = instrument();
        let event =
            Event::new(Fid::new(1), NfId::new(99), "bad", |_| true, |_| RulePatch::default());
        inst.register_event_full(event);
    }
}
