//! Abstract operation counting for deterministic cost accounting.
//!
//! The paper reports *CPU cycles per packet* on a specific Xeon testbed.
//! Instead of chasing absolute cycle counts, every component in this
//! reproduction counts the abstract operations it performs (parses,
//! classifications, ACL rules scanned, payload bytes inspected, field
//! writes, ring hops, MAT lookups, ...). The platform crate's cycle model
//! then maps operation counts to cycles with calibrated per-op costs,
//! which makes every figure deterministic and unit-testable while keeping
//! the paper's *ratios* (the actual claims) intact.

/// Counts of abstract operations performed while processing packets.
///
/// Additive: combine counters from pipeline stages with `+`/`+=`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounter {
    /// Full header parses (Ethernet+IPv4+L4).
    pub parses: u64,
    /// Flow-table classifications (hash of the 5-tuple + table probe).
    pub classifications: u64,
    /// ACL rules scanned linearly (IPFilter-style matching).
    pub acl_rules_scanned: u64,
    /// Hash-table lookups (NAT mappings, Maglev connection table, ...).
    pub hash_lookups: u64,
    /// Hash-table inserts/removals.
    pub hash_updates: u64,
    /// Header fields written in place.
    pub field_writes: u64,
    /// Checksum fix-ups (IPv4 + L4 recompute).
    pub checksum_fixes: u64,
    /// Encapsulation or decapsulation operations.
    pub encaps: u64,
    /// Payload bytes run through inspection (Aho-Corasick steps).
    pub payload_bytes_scanned: u64,
    /// State-function invocations.
    pub sf_invocations: u64,
    /// Counter/state updates (monitor counters, SYN counters, ...).
    pub state_updates: u64,
    /// Local MAT record insertions (instrumentation writes).
    pub mat_records: u64,
    /// Global MAT fast-path rule lookups.
    pub mat_lookups: u64,
    /// Consolidation runs (initial packets and event re-consolidations).
    pub consolidations: u64,
    /// Event-table condition checks.
    pub event_checks: u64,
    /// Inter-core ring-buffer hops (OpenNetVM-style IO).
    pub ring_hops: u64,
    /// Packets dropped.
    pub drops: u64,
    /// Masked word writes executed by compiled fast-path programs.
    pub word_writes: u64,
    /// O(1) incremental checksum patches (RFC 1624) by compiled programs.
    pub checksum_patches: u64,
}

impl OpCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &OpCounter) {
        self.parses += other.parses;
        self.classifications += other.classifications;
        self.acl_rules_scanned += other.acl_rules_scanned;
        self.hash_lookups += other.hash_lookups;
        self.hash_updates += other.hash_updates;
        self.field_writes += other.field_writes;
        self.checksum_fixes += other.checksum_fixes;
        self.encaps += other.encaps;
        self.payload_bytes_scanned += other.payload_bytes_scanned;
        self.sf_invocations += other.sf_invocations;
        self.state_updates += other.state_updates;
        self.mat_records += other.mat_records;
        self.mat_lookups += other.mat_lookups;
        self.consolidations += other.consolidations;
        self.event_checks += other.event_checks;
        self.ring_hops += other.ring_hops;
        self.drops += other.drops;
        self.word_writes += other.word_writes;
        self.checksum_patches += other.checksum_patches;
    }

    /// The counter as telemetry [`OpTotals`](speedybox_telemetry::OpTotals),
    /// field order matching `speedybox_telemetry::OP_NAMES`. The
    /// differential test in the workspace root keeps the two types in
    /// lock-step.
    #[must_use]
    pub fn telemetry_totals(&self) -> speedybox_telemetry::OpTotals {
        speedybox_telemetry::OpTotals([
            self.parses,
            self.classifications,
            self.acl_rules_scanned,
            self.hash_lookups,
            self.hash_updates,
            self.field_writes,
            self.checksum_fixes,
            self.encaps,
            self.payload_bytes_scanned,
            self.sf_invocations,
            self.state_updates,
            self.mat_records,
            self.mat_lookups,
            self.consolidations,
            self.event_checks,
            self.ring_hops,
            self.drops,
            self.word_writes,
            self.checksum_patches,
        ])
    }

    /// Sum of all counted operations (rough activity measure for tests).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.parses
            + self.classifications
            + self.acl_rules_scanned
            + self.hash_lookups
            + self.hash_updates
            + self.field_writes
            + self.checksum_fixes
            + self.encaps
            + self.payload_bytes_scanned
            + self.sf_invocations
            + self.state_updates
            + self.mat_records
            + self.mat_lookups
            + self.consolidations
            + self.event_checks
            + self.ring_hops
            + self.drops
            + self.word_writes
            + self.checksum_patches
    }
}

impl std::ops::Add for OpCounter {
    type Output = OpCounter;

    fn add(mut self, rhs: OpCounter) -> OpCounter {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for OpCounter {
    fn add_assign(&mut self, rhs: OpCounter) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for OpCounter {
    fn sum<I: Iterator<Item = OpCounter>>(iter: I) -> Self {
        iter.fold(OpCounter::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_additive() {
        let a = OpCounter { parses: 2, drops: 1, ..OpCounter::default() };
        let b = OpCounter { parses: 3, ring_hops: 4, ..OpCounter::default() };
        let c = a + b;
        assert_eq!(c.parses, 5);
        assert_eq!(c.drops, 1);
        assert_eq!(c.ring_hops, 4);
    }

    #[test]
    fn total_counts_everything() {
        let mut c = OpCounter::default();
        assert_eq!(c.total(), 0);
        c.parses = 1;
        c.event_checks = 2;
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            OpCounter { sf_invocations: 1, ..OpCounter::default() },
            OpCounter { sf_invocations: 2, ..OpCounter::default() },
        ];
        let total: OpCounter = parts.into_iter().sum();
        assert_eq!(total.sf_invocations, 3);
    }
}
