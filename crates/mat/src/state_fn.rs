//! State functions: the stateful half of the NF abstraction (paper §IV-A2).
//!
//! A state function is a callback an NF registers per flow — payload
//! inspection, counter updates, connection tracking. SpeedyBox records the
//! *handler* in the Local MAT and invokes it on the fast path, so the NF's
//! stateful logic runs unchanged. Each function declares how it touches the
//! packet payload ([`PayloadAccess`]), which drives the Table I parallelism
//! analysis in [`crate::parallel`].

use std::fmt;
use std::sync::Arc;

use speedybox_packet::{Fid, Packet};

use crate::local::NfId;
use crate::ops::OpCounter;

/// How a state function interacts with the packet payload (paper §IV-A2:
/// READ / WRITE / IGNORE). Ordered by the paper's batch priority
/// `WRITE > READ > IGNORE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PayloadAccess {
    /// Does not read or modify the payload (counters, connection state).
    Ignore,
    /// Reads the payload (deep packet inspection).
    Read,
    /// Writes the payload (payload rewriting, scrubbing). A WRITE function
    /// must leave the packet's checksums valid — the same obligation its
    /// NF has on the original path — so that execution order relative to
    /// consolidated header actions cannot change the final bytes.
    Write,
}

impl fmt::Display for PayloadAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadAccess::Ignore => f.write_str("ignore"),
            PayloadAccess::Read => f.write_str("read"),
            PayloadAccess::Write => f.write_str("write"),
        }
    }
}

/// Execution context handed to a state-function handler.
#[derive(Debug)]
pub struct SfContext<'a> {
    /// The packet being processed. Handlers declared `Ignore` must not
    /// touch the payload (enforced by convention and by the equivalence
    /// test suite, as in the paper's prototype).
    pub packet: &'a mut Packet,
    /// Flow the packet belongs to.
    pub fid: Fid,
    /// Operation counter for cost accounting.
    pub ops: &'a mut OpCounter,
    /// Positional frame-length correction (see [`SfContext::frame_len`]).
    /// Zero on the original path and for every batch outside an
    /// encap/decap window.
    pub len_adjust: i64,
}

impl SfContext<'_> {
    /// The frame length the owning NF would observe at its position in the
    /// *original* chain.
    ///
    /// On the fast path the consolidated header action runs before any
    /// state function, so `packet.len()` is the egress length. When an
    /// encap/decap pair annihilates during consolidation (paper §V-B), an
    /// NF that sat inside the tunnel window never sees the encapsulated
    /// frame — its recorded state functions would under-count by the
    /// header length. `len_adjust` (computed at consolidation time from
    /// the chain's per-NF length deltas) restores the positional view;
    /// length-reading handlers must use this instead of
    /// `packet.len()`.
    #[must_use]
    pub fn frame_len(&self) -> usize {
        usize::try_from(self.packet.len() as i64 + self.len_adjust).unwrap_or(0)
    }
}

/// Handler signature for state functions.
pub type SfHandler = Arc<dyn Fn(&mut SfContext<'_>) + Send + Sync>;

/// A recorded state function: named handler plus payload-access type.
///
/// Cloning is cheap (the handler is shared through an `Arc`), which is how
/// the same handler is stored in a Local MAT and replayed from the Global
/// MAT without duplication.
#[derive(Clone)]
pub struct StateFunction {
    name: String,
    access: PayloadAccess,
    handler: SfHandler,
}

impl StateFunction {
    /// Wraps `handler` as a state function with the given payload-access
    /// declaration.
    pub fn new(
        name: impl Into<String>,
        access: PayloadAccess,
        handler: impl Fn(&mut SfContext<'_>) + Send + Sync + 'static,
    ) -> Self {
        Self { name: name.into(), access, handler: Arc::new(handler) }
    }

    /// The function's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared payload access.
    #[must_use]
    pub fn access(&self) -> PayloadAccess {
        self.access
    }

    /// Invokes the handler, accounting the invocation.
    ///
    /// In debug builds, handlers declared [`PayloadAccess::Ignore`] or
    /// [`PayloadAccess::Read`] run under the payload-access tracker: the
    /// payload is snapshotted around the call and any byte change is
    /// recorded as an [`crate::track::AccessViolation`] — a lying
    /// declaration becomes a diagnostic instead of silent corruption on a
    /// parallel schedule. Release builds compile the snapshot out; debug
    /// builds snapshot into a reused thread-local buffer, so even the
    /// instrumented fast path stays allocation-free once warm (the
    /// `tests/zero_alloc.rs` gate runs with `debug_assertions` on).
    pub fn invoke(&self, ctx: &mut SfContext<'_>) {
        ctx.ops.sf_invocations += 1;
        if crate::track::enabled() && self.access != PayloadAccess::Write {
            let mut before = crate::track::snapshot_buf();
            before.clear();
            let have = match ctx.packet.payload() {
                Ok(p) => {
                    before.extend_from_slice(p);
                    true
                }
                Err(_) => false,
            };
            (self.handler)(ctx);
            if have && ctx.packet.payload().map(|p| p != &before[..]).unwrap_or(false) {
                crate::track::record_write_violation(&self.name, self.access);
            }
            crate::track::return_snapshot_buf(before);
            return;
        }
        (self.handler)(ctx);
    }
}

impl fmt::Debug for StateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateFunction")
            .field("name", &self.name)
            .field("access", &self.access)
            .finish_non_exhaustive()
    }
}

/// All state functions one NF recorded for a flow — the paper's *state
/// function batch* (§V-C1: "all state functions in a batch should be
/// executed in sequence").
#[derive(Debug, Clone, Default)]
pub struct SfBatch {
    /// The NF that owns this batch.
    pub nf: NfId,
    /// The functions, in registration order.
    pub funcs: Vec<StateFunction>,
    /// Positional frame-length correction for this batch's NF: input
    /// length at the NF's chain position minus the chain's egress length.
    /// Computed at consolidation time; exposed to handlers through
    /// [`SfContext::frame_len`].
    pub len_adjust: i64,
}

impl SfBatch {
    /// Creates a batch for one NF (no positional length correction).
    #[must_use]
    pub fn new(nf: NfId, funcs: Vec<StateFunction>) -> Self {
        Self { nf, funcs, len_adjust: 0 }
    }

    /// Sets the positional frame-length correction (consolidation time).
    #[must_use]
    pub fn with_len_adjust(mut self, len_adjust: i64) -> Self {
        self.len_adjust = len_adjust;
        self
    }

    /// The batch's effective payload access: "the action of the state
    /// function that has the highest priority in the batch (priority:
    /// WRITE > READ > IGNORE)" (paper §V-C2).
    #[must_use]
    pub fn access(&self) -> PayloadAccess {
        self.funcs.iter().map(StateFunction::access).max().unwrap_or(PayloadAccess::Ignore)
    }

    /// Runs all functions in order against the packet.
    pub fn execute(&self, packet: &mut Packet, fid: Fid, ops: &mut OpCounter) {
        let mut ctx = SfContext { packet, fid, ops, len_adjust: self.len_adjust };
        for f in &self.funcs {
            f.invoke(&mut ctx);
        }
    }

    /// True if the batch holds no functions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    use speedybox_packet::PacketBuilder;

    use super::*;

    fn pkt() -> Packet {
        PacketBuilder::tcp().payload(b"abc").build()
    }

    #[test]
    fn priority_ordering_matches_paper() {
        assert!(PayloadAccess::Write > PayloadAccess::Read);
        assert!(PayloadAccess::Read > PayloadAccess::Ignore);
    }

    #[test]
    fn invoke_runs_handler_and_counts() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let sf = StateFunction::new("count", PayloadAccess::Ignore, move |_ctx| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let mut p = pkt();
        let mut ops = OpCounter::default();
        let fid = p.five_tuple().unwrap().fid();
        let mut ctx = SfContext { packet: &mut p, fid, ops: &mut ops, len_adjust: 0 };
        sf.invoke(&mut ctx);
        sf.invoke(&mut ctx);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(ops.sf_invocations, 2);
    }

    #[test]
    fn frame_len_applies_positional_adjustment() {
        let mut p = pkt();
        let plain = p.len();
        let fid = p.five_tuple().unwrap().fid();
        let mut ops = OpCounter::default();
        let ctx = SfContext { packet: &mut p, fid, ops: &mut ops, len_adjust: 24 };
        assert_eq!(ctx.frame_len(), plain + 24);
        let ctx0 = SfContext { packet: &mut p, fid, ops: &mut ops, len_adjust: 0 };
        assert_eq!(ctx0.frame_len(), plain);
        // A pathological negative adjustment saturates at zero rather
        // than panicking.
        let neg = SfContext { packet: &mut p, fid, ops: &mut ops, len_adjust: -(plain as i64) - 8 };
        assert_eq!(neg.frame_len(), 0);
    }

    #[test]
    fn batch_len_adjust_reaches_handlers() {
        let seen = Arc::new(AtomicU64::new(0));
        let s = seen.clone();
        let sf = StateFunction::new("len", PayloadAccess::Ignore, move |ctx| {
            s.store(ctx.frame_len() as u64, Ordering::Relaxed);
        });
        let batch = SfBatch::new(NfId::new(0), vec![sf]).with_len_adjust(24);
        assert_eq!(batch.len_adjust, 24);
        let mut p = pkt();
        let plain = p.len();
        let fid = p.five_tuple().unwrap().fid();
        let mut ops = OpCounter::default();
        batch.execute(&mut p, fid, &mut ops);
        assert_eq!(seen.load(Ordering::Relaxed), (plain + 24) as u64);
    }

    #[test]
    fn batch_access_is_max_priority() {
        let mk = |a| StateFunction::new("f", a, |_| {});
        let batch = SfBatch::new(
            NfId::new(0),
            vec![mk(PayloadAccess::Read), mk(PayloadAccess::Read), mk(PayloadAccess::Write)],
        );
        assert_eq!(batch.access(), PayloadAccess::Write);
        let batch2 = SfBatch::new(NfId::new(0), vec![mk(PayloadAccess::Ignore)]);
        assert_eq!(batch2.access(), PayloadAccess::Ignore);
        let empty = SfBatch::new(NfId::new(0), vec![]);
        assert_eq!(empty.access(), PayloadAccess::Ignore);
        assert!(empty.is_empty());
    }

    #[test]
    fn batch_executes_in_registration_order() {
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mk = |tag: u8, order: Arc<parking_lot::Mutex<Vec<u8>>>| {
            StateFunction::new(format!("f{tag}"), PayloadAccess::Ignore, move |_| {
                order.lock().push(tag);
            })
        };
        let batch = SfBatch::new(
            NfId::new(0),
            vec![mk(1, order.clone()), mk(2, order.clone()), mk(3, order.clone())],
        );
        let mut p = pkt();
        let fid = p.five_tuple().unwrap().fid();
        let mut ops = OpCounter::default();
        batch.execute(&mut p, fid, &mut ops);
        assert_eq!(*order.lock(), vec![1, 2, 3]);
        assert_eq!(ops.sf_invocations, 3);
    }

    #[test]
    fn handlers_can_mutate_payload() {
        let sf = StateFunction::new("upper", PayloadAccess::Write, |ctx| {
            if let Ok(p) = ctx.packet.payload_mut() {
                for b in p {
                    *b = b.to_ascii_uppercase();
                }
            }
        });
        let mut p = pkt();
        let fid = p.five_tuple().unwrap().fid();
        let mut ops = OpCounter::default();
        let mut ctx = SfContext { packet: &mut p, fid, ops: &mut ops, len_adjust: 0 };
        sf.invoke(&mut ctx);
        assert_eq!(p.payload().unwrap(), b"ABC");
    }

    #[test]
    fn debug_is_nonempty() {
        let sf = StateFunction::new("dbg", PayloadAccess::Read, |_| {});
        assert!(format!("{sf:?}").contains("dbg"));
    }
}
