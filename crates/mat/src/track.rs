//! Runtime payload-access tracking (debug builds only).
//!
//! Every state function *declares* how it touches the packet payload
//! ([`crate::state_fn::PayloadAccess`]); the Table I parallel schedule is
//! only sound if those declarations are honest. A function declared
//! `Ignore` or `Read` that actually *writes* the payload can be scheduled
//! into the same wave as a reader and silently corrupt it.
//!
//! Under `debug_assertions`, [`crate::state_fn::StateFunction::invoke`]
//! snapshots the payload around every non-`Write` handler invocation and
//! records a [`AccessViolation`] here when the bytes changed — turning a
//! lying declaration into a diagnosable fact instead of silent corruption.
//! `speedybox-verify` renders recorded violations as `SBX010` diagnostics.
//!
//! Release builds compile the snapshot out entirely ([`enabled`] is a
//! `cfg!` constant); the recording functions remain callable but are never
//! reached from the hot path.

use std::cell::RefCell;
use std::sync::Mutex;

use crate::state_fn::PayloadAccess;

thread_local! {
    /// Reused payload-snapshot buffer for the debug tracker. Taking it out
    /// (instead of borrowing across the handler call) keeps a nested
    /// state-function invocation from panicking on a double borrow — the
    /// inner call just works with a fresh, empty vector.
    static SNAPSHOT: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Hands out the thread's reusable snapshot buffer (possibly empty).
pub(crate) fn snapshot_buf() -> Vec<u8> {
    SNAPSHOT.with(|s| std::mem::take(&mut *s.borrow_mut()))
}

/// Returns a snapshot buffer, keeping the larger capacity for next time.
pub(crate) fn return_snapshot_buf(buf: Vec<u8>) {
    SNAPSHOT.with(|s| {
        let mut slot = s.borrow_mut();
        if buf.capacity() > slot.capacity() {
            *slot = buf;
        }
    });
}

/// One observed declared-vs-actual payload-access mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessViolation {
    /// Diagnostic name of the state function (see
    /// [`crate::state_fn::StateFunction::name`]).
    pub function: String,
    /// What the function declared.
    pub declared: PayloadAccess,
    /// What was observed (always [`PayloadAccess::Write`]: byte-diffing can
    /// prove a write happened, never that a read did).
    pub observed: PayloadAccess,
    /// How many invocations exhibited the mismatch.
    pub count: u64,
}

/// Process-global violation log. Deduplicated by function name so a lying
/// handler invoked per-packet cannot grow this without bound.
static VIOLATIONS: Mutex<Vec<AccessViolation>> = Mutex::new(Vec::new());

/// True when the tracker is active (debug builds). The check is a compile
/// time constant, so release builds pay nothing for the instrumentation.
#[must_use]
pub fn enabled() -> bool {
    cfg!(debug_assertions)
}

/// Records that `function`, declared as `declared`, was observed writing
/// the payload. Called by [`crate::state_fn::StateFunction::invoke`].
pub(crate) fn record_write_violation(function: &str, declared: PayloadAccess) {
    let mut log = VIOLATIONS.lock().expect("access-tracker mutex poisoned");
    match log.iter_mut().find(|v| v.function == function) {
        Some(v) => v.count += 1,
        None => log.push(AccessViolation {
            function: function.to_owned(),
            declared,
            observed: PayloadAccess::Write,
            count: 1,
        }),
    }
}

/// A snapshot of the recorded violations (does not clear the log).
#[must_use]
pub fn violations() -> Vec<AccessViolation> {
    VIOLATIONS.lock().expect("access-tracker mutex poisoned").clone()
}

/// Drains the recorded violations, returning them and clearing the log.
/// Call between runs (or tests) to scope findings to one chain execution.
#[must_use]
pub fn take_violations() -> Vec<AccessViolation> {
    std::mem::take(&mut *VIOLATIONS.lock().expect("access-tracker mutex poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the log is process-global, so tests here only use function
    // names no other test records, and never assert global emptiness.

    #[test]
    fn record_dedupes_by_function_name() {
        record_write_violation("track-test-a", PayloadAccess::Ignore);
        record_write_violation("track-test-a", PayloadAccess::Ignore);
        let v = violations();
        let hit = v.iter().find(|v| v.function == "track-test-a").unwrap();
        assert!(hit.count >= 2);
        assert_eq!(hit.declared, PayloadAccess::Ignore);
        assert_eq!(hit.observed, PayloadAccess::Write);
    }

    #[test]
    fn enabled_matches_build_profile() {
        assert_eq!(enabled(), cfg!(debug_assertions));
    }
}
