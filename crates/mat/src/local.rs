//! The per-NF Local Match-Action Table (paper §IV).
//!
//! As a flow's initial packet traverses the chain, each NF records its
//! per-flow header actions and state functions here through the
//! instrumentation APIs ([`crate::api`]). "We use a queue data structure to
//! maintain the sequence" — registration order of state functions is
//! preserved, because reordering them could violate code dependencies
//! (§IV-B).

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;
use speedybox_packet::Fid;

use crate::action::HeaderAction;
use crate::ops::OpCounter;
use crate::state_fn::StateFunction;

/// Identifies an NF by its position in the service chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NfId(usize);

impl NfId {
    /// Creates an NF id for chain position `index` (0-based).
    #[must_use]
    pub fn new(index: usize) -> Self {
        NfId(index)
    }

    /// The chain position.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nf{}", self.0)
    }
}

/// One NF's recorded per-flow rule: its header actions and state functions
/// in registration order.
#[derive(Debug, Clone, Default)]
pub struct LocalRule {
    /// Header actions in registration order (usually exactly one).
    pub header_actions: Vec<HeaderAction>,
    /// State functions in registration order (the paper's queue).
    pub state_functions: Vec<StateFunction>,
}

impl LocalRule {
    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.header_actions.is_empty() && self.state_functions.is_empty()
    }
}

/// The stateful Local MAT associated with one NF.
///
/// Thread-safe: in the OpenNetVM-style runtime each NF thread writes its
/// own Local MAT while the manager core reads it for consolidation.
#[derive(Debug)]
pub struct LocalMat {
    nf: NfId,
    rules: RwLock<HashMap<Fid, LocalRule>>,
}

impl LocalMat {
    /// Creates an empty Local MAT for the NF at `nf`.
    #[must_use]
    pub fn new(nf: NfId) -> Self {
        Self { nf, rules: RwLock::new(HashMap::new()) }
    }

    /// The owning NF.
    #[must_use]
    pub fn nf(&self) -> NfId {
        self.nf
    }

    /// Appends a header action to the flow's rule
    /// (the `localmat_add_HA` API of Fig 2).
    pub fn add_header_action(&self, fid: Fid, action: HeaderAction, ops: &mut OpCounter) {
        self.rules.write().entry(fid).or_default().header_actions.push(action);
        ops.mat_records += 1;
    }

    /// Appends a state function to the flow's rule
    /// (the `localmat_add_SF` API of Fig 2).
    pub fn add_state_function(&self, fid: Fid, func: StateFunction, ops: &mut OpCounter) {
        self.rules.write().entry(fid).or_default().state_functions.push(func);
        ops.mat_records += 1;
    }

    /// Replaces the flow's header actions (used by Event Table updates).
    pub fn set_header_actions(&self, fid: Fid, actions: Vec<HeaderAction>) {
        self.rules.write().entry(fid).or_default().header_actions = actions;
    }

    /// Replaces the flow's state functions (used by Event Table updates).
    pub fn set_state_functions(&self, fid: Fid, funcs: Vec<StateFunction>) {
        self.rules.write().entry(fid).or_default().state_functions = funcs;
    }

    /// A snapshot of the flow's rule, if present.
    #[must_use]
    pub fn rule(&self, fid: Fid) -> Option<LocalRule> {
        self.rules.read().get(&fid).cloned()
    }

    /// True if the flow has a recorded rule.
    #[must_use]
    pub fn contains(&self, fid: Fid) -> bool {
        self.rules.read().contains_key(&fid)
    }

    /// Removes the flow's rule (FIN/RST garbage collection, §VI-B), returning
    /// whether one existed.
    pub fn remove(&self, fid: Fid) -> bool {
        self.rules.write().remove(&fid).is_some()
    }

    /// Number of flows with recorded rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.read().len()
    }

    /// True if no flow has a recorded rule.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use speedybox_packet::HeaderField;

    use super::*;
    use crate::state_fn::PayloadAccess;

    fn fid(n: u32) -> Fid {
        Fid::new(n)
    }

    #[test]
    fn records_header_actions_in_order() {
        let mat = LocalMat::new(NfId::new(0));
        let mut ops = OpCounter::default();
        mat.add_header_action(fid(1), HeaderAction::modify(HeaderField::DstPort, 1u16), &mut ops);
        mat.add_header_action(fid(1), HeaderAction::Forward, &mut ops);
        let rule = mat.rule(fid(1)).unwrap();
        assert_eq!(rule.header_actions.len(), 2);
        assert!(rule.header_actions[1].is_forward());
        assert_eq!(ops.mat_records, 2);
    }

    #[test]
    fn records_state_functions_in_order() {
        let mat = LocalMat::new(NfId::new(1));
        let mut ops = OpCounter::default();
        for name in ["a", "b", "c"] {
            mat.add_state_function(
                fid(2),
                StateFunction::new(name, PayloadAccess::Ignore, |_| {}),
                &mut ops,
            );
        }
        let rule = mat.rule(fid(2)).unwrap();
        let names: Vec<&str> = rule.state_functions.iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn flows_are_isolated() {
        let mat = LocalMat::new(NfId::new(0));
        let mut ops = OpCounter::default();
        mat.add_header_action(fid(1), HeaderAction::Drop, &mut ops);
        assert!(mat.rule(fid(2)).is_none());
        assert!(mat.contains(fid(1)));
        assert!(!mat.contains(fid(2)));
    }

    #[test]
    fn remove_cleans_up() {
        let mat = LocalMat::new(NfId::new(0));
        let mut ops = OpCounter::default();
        mat.add_header_action(fid(1), HeaderAction::Drop, &mut ops);
        assert_eq!(mat.len(), 1);
        assert!(mat.remove(fid(1)));
        assert!(!mat.remove(fid(1)));
        assert!(mat.is_empty());
    }

    #[test]
    fn set_replaces() {
        let mat = LocalMat::new(NfId::new(0));
        let mut ops = OpCounter::default();
        mat.add_header_action(fid(1), HeaderAction::Forward, &mut ops);
        mat.set_header_actions(fid(1), vec![HeaderAction::Drop]);
        let rule = mat.rule(fid(1)).unwrap();
        assert_eq!(rule.header_actions, vec![HeaderAction::Drop]);
    }

    #[test]
    fn empty_rule_is_empty() {
        assert!(LocalRule::default().is_empty());
    }

    #[test]
    fn is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LocalMat>();
    }
}
