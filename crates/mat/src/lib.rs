//! SpeedyBox core: Match-Action Tables and cross-NF runtime consolidation.
//!
//! This crate implements the primary contribution of *"SpeedyBox:
//! Low-Latency NFV Service Chains with Cross-NF Runtime Consolidation"*
//! (ICDCS 2019):
//!
//! * the five standardized **header actions** and the consolidation
//!   algorithm that merges a whole service chain's actions into one
//!   ([`action`], [`mod@consolidate`]),
//! * **state functions** — typed callbacks (payload WRITE/READ/IGNORE)
//!   recorded per flow ([`state_fn`]), with the Table I dependency analysis
//!   and wavefront scheduling for cross-NF parallelism ([`parallel`]),
//! * the per-NF **Local MAT** populated through the paper's four
//!   instrumentation APIs ([`local`], [`api`]),
//! * the **Global MAT** holding the consolidated fast-path rules
//!   ([`global`]),
//! * the **Event Table** that keeps stateful NF behaviour correct on the
//!   fast path ([`event`]), and
//! * the **Packet Classifier** that assigns 20-bit FIDs and steers
//!   initial vs. subsequent packets ([`classifier`]).
//!
//! Execution environments (BESS-style and OpenNetVM-style) live in
//! `speedybox-platform`; concrete NFs live in `speedybox-nf`.
//!
//! # Quickstart
//!
//! ```
//! use speedybox_mat::action::HeaderAction;
//! use speedybox_mat::consolidate::consolidate;
//! use speedybox_packet::HeaderField;
//! use std::net::Ipv4Addr;
//!
//! // A NAT rewrites the destination IP; a load balancer rewrites it again
//! // and also the port; a firewall forwards. Consolidation folds the three
//! // NFs' actions into one (latter modify wins).
//! let chain = [
//!     HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(10, 0, 0, 1)),
//!     HeaderAction::modify2(
//!         (HeaderField::DstIp, Ipv4Addr::new(10, 9, 9, 9).into()),
//!         (HeaderField::DstPort, 8080u16.into()),
//!     ),
//!     HeaderAction::Forward,
//! ];
//! let merged = consolidate(&chain);
//! assert!(!merged.is_drop());
//! assert_eq!(merged.modifies().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod api;
pub mod classifier;
pub mod compiled;
pub mod consolidate;
pub mod error;
pub mod event;
pub mod flow_table;
pub mod global;
pub mod local;
#[cfg(feature = "model")]
pub mod model;
pub mod ops;
pub mod parallel;
pub mod state_fn;
pub mod timer_wheel;
pub mod track;

pub use action::{EncapSpec, HeaderAction};
pub use api::NfInstrument;
pub use classifier::{Classification, ClassifyScratch, PacketClass, PacketClassifier};
pub use compiled::{compile, Anchor, CompiledProgram, MicroOp};
pub use consolidate::{consolidate, ConsolidatedAction};
pub use error::MatError;
pub use event::{Event, EventTable, RulePatch};
pub use flow_table::{
    Admission, AdmissionPolicy, Evicted, FlowHandle, FlowTable, Opened, FID_SPACE,
};
pub use global::{FastPathOutcome, GlobalMat, GlobalRule};
pub use local::{LocalMat, LocalRule, NfId};
pub use ops::OpCounter;
pub use parallel::{can_parallelize, schedule_batches};
pub use state_fn::{PayloadAccess, SfContext, StateFunction};
pub use timer_wheel::{TimerWheel, WheelItem};
pub use track::AccessViolation;

/// Result alias for MAT operations.
pub type Result<T, E = MatError> = core::result::Result<T, E>;
