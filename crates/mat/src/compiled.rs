//! Rule compilation: lowering a [`ConsolidatedAction`] to a straight-line
//! micro-op program at install/rewrite time.
//!
//! The interpreted fast path walks the consolidated action's vectors per
//! packet — branching over field kinds, resolving offsets through
//! `set_field`, and finishing with a full checksum recompute. This module
//! moves all of that to rule-install time: [`compile`] lowers the action
//! into a [`CompiledProgram`], a flat `Vec` of [`MicroOp`]s the per-packet
//! [`CompiledProgram::run`] replays as masked 8-byte word writes plus O(1)
//! incremental checksum patches (RFC 1624). Encapsulation headers are
//! precomputed into byte templates so the hot path copies instead of
//! serializing.
//!
//! Byte-identity contract: `run` produces the same frame bytes as
//! [`ConsolidatedAction::apply`] for any packet whose *ingress* checksums
//! are valid (the incremental patch extends a correct checksum; a full
//! recompute would also repair a corrupt one). All workload generators in
//! this repository emit valid checksums, and the static verifier's SBX011
//! pass cross-checks the two paths per rule. The `--interpreted` runtime
//! flag remains as an escape hatch.

use speedybox_packet::headers::{AuthHeader, AH_LEN};
use speedybox_packet::{FieldValue, HeaderField, HeaderLayout, Packet, PacketError};

use crate::consolidate::ConsolidatedAction;
use crate::ops::OpCounter;
use crate::Result;

/// Base a [`MicroOp::WriteWord`] offset is relative to.
///
/// Offsets cannot be fully resolved at compile time because VLAN tags and
/// AH layers shift L3/L4; instead each write names its anchor and `run`
/// resolves the anchor table once per packet ([`Packet::layout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Frame start (Ethernet header) — MAC rewrites.
    Frame,
    /// IPv4 header start — ToS/TTL/address rewrites.
    L3,
    /// Innermost L4 header start (past AH layers) — port rewrites.
    L4,
}

/// One straight-line instruction of a compiled rule program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// Release the packet (early drop; always the sole op).
    Drop,
    /// Pop the outermost AH layer that arrived on the packet.
    PopDecap,
    /// Push one AH layer from a precomputed byte template (SPI/seq/ICV
    /// serialized at compile time; only the next-header byte is patched
    /// from the packet's current protocol at push time).
    PushEncap {
        /// The serialized AH bytes to copy into the packet.
        template: [u8; AH_LEN],
    },
    /// Masked big-endian write of one aligned 8-byte window:
    /// `new = (old & !mask) | (value & mask)`.
    WriteWord {
        /// Which header the offset is relative to.
        anchor: Anchor,
        /// Even byte offset from the anchor (16-bit word aligned, so the
        /// window's words line up with checksum coverage words).
        offset: usize,
        /// Bits to replace (big-endian window order).
        mask: u64,
        /// Replacement bits, pre-shifted into window position.
        value: u64,
        /// Whether the rewritten bytes are covered by the IPv4 header
        /// checksum.
        ip_csum: bool,
        /// Whether the rewritten bytes are covered by the L4 checksum
        /// (directly or via the pseudo-header).
        l4_csum: bool,
    },
    /// Patch the trailing checksums incrementally from the word sums
    /// accumulated by the preceding `WriteWord`s.
    AdjustTrailing {
        /// Patch the IPv4 header checksum.
        ip: bool,
        /// Patch the TCP/UDP checksum.
        l4: bool,
    },
}

/// A consolidated action lowered to straight-line micro-ops.
///
/// Built once per rule install or Event-Table rewrite (see
/// [`GlobalRule::new`](crate::GlobalRule::new)); executed per packet by
/// [`CompiledProgram::run`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompiledProgram {
    ops: Vec<MicroOp>,
}

impl CompiledProgram {
    /// Builds a program directly from micro-ops.
    ///
    /// [`compile`] is the production entry point; this constructor exists
    /// for the static verifier's SBX012 bounds pass and for tests that
    /// need programs `compile` would never emit.
    #[must_use]
    pub fn from_ops(ops: Vec<MicroOp>) -> Self {
        CompiledProgram { ops }
    }

    /// The lowered instruction sequence.
    #[must_use]
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// True if running this program leaves the packet untouched.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the program against a packet.
    ///
    /// Returns `false` if the packet is dropped. Semantically equivalent to
    /// [`ConsolidatedAction::apply`] (see the module docs for the ingress
    /// checksum caveat) but counts `word_writes`/`checksum_patches` instead
    /// of `field_writes`/`checksum_fixes`.
    ///
    /// # Errors
    /// Propagates packet manipulation failures exactly as the interpreted
    /// path does (e.g. decap of a packet carrying no AH).
    pub fn run(&self, packet: &mut Packet, ops: &mut OpCounter) -> Result<bool> {
        // Anchor table, resolved lazily at the first WriteWord so it sees
        // the post-encap/decap layout.
        let mut layout: Option<HeaderLayout> = None;
        // Accumulated 16-bit word sums over rewritten windows, old and new,
        // per checksum domain. Unchanged words appear in both sums and
        // cancel under the end-around fold; overlapping windows telescope.
        let (mut ip_old, mut ip_new) = (0u32, 0u32);
        let (mut l4_old, mut l4_new) = (0u32, 0u32);
        for op in &self.ops {
            match op {
                MicroOp::Drop => {
                    ops.drops += 1;
                    return Ok(false);
                }
                MicroOp::PopDecap => {
                    packet.decap_ah()?;
                    ops.encaps += 1;
                }
                MicroOp::PushEncap { template } => {
                    packet.encap_ah_template(template)?;
                    ops.encaps += 1;
                }
                MicroOp::WriteWord { anchor, offset, mask, value, ip_csum, l4_csum } => {
                    let lay = match layout {
                        Some(l) => l,
                        None => {
                            let l = packet.layout()?;
                            layout = Some(l);
                            l
                        }
                    };
                    let base = match anchor {
                        Anchor::Frame => 0,
                        Anchor::L3 => lay.l3,
                        Anchor::L4 => lay.l4,
                    };
                    let off = base + offset;
                    let frame = packet.frame_mut();
                    let Some(window) = frame.get_mut(off..off + 8) else {
                        return Err(
                            PacketError::Truncated { needed: off + 8, have: frame.len() }.into()
                        );
                    };
                    let mut bytes = [0u8; 8];
                    bytes.copy_from_slice(window);
                    let old = u64::from_be_bytes(bytes);
                    let new = (old & !mask) | (value & mask);
                    window.copy_from_slice(&new.to_be_bytes());
                    if *ip_csum {
                        ip_old += word_sum(old);
                        ip_new += word_sum(new);
                    }
                    if *l4_csum {
                        l4_old += word_sum(old);
                        l4_new += word_sum(new);
                    }
                    ops.word_writes += 1;
                }
                MicroOp::AdjustTrailing { ip, l4 } => {
                    if *ip {
                        packet.patch_ipv4_checksum_incremental(ip_old, ip_new);
                    }
                    if *l4 {
                        packet.patch_l4_checksum_incremental(l4_old, l4_new)?;
                    }
                    ops.checksum_patches += 1;
                }
            }
        }
        Ok(true)
    }
}

/// Sum of the four big-endian 16-bit words of an 8-byte window.
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub fn word_sum(window: u64) -> u32 {
    ((window >> 48) as u16 as u32)
        + ((window >> 32) as u16 as u32)
        + ((window >> 16) as u16 as u32)
        + (window as u16 as u32)
}

/// Which checksums cover a header field: `(ipv4_header, l4)`.
///
/// Shared by [`compile`] and the interpreted
/// [`ConsolidatedAction::apply`]'s incremental trailing fix so the two
/// paths can never disagree about coverage.
pub(crate) fn checksum_domains(field: HeaderField) -> (bool, bool) {
    match field {
        HeaderField::SrcMac | HeaderField::DstMac => (false, false),
        // Addresses sit in the IPv4 header and the L4 pseudo-header.
        HeaderField::SrcIp | HeaderField::DstIp => (true, true),
        HeaderField::SrcPort | HeaderField::DstPort => (false, true),
        HeaderField::Ttl | HeaderField::Tos => (true, false),
    }
}

/// A field value's contribution to its covering checksums, expressed as a
/// sum of the 16-bit words it occupies on the wire (position-correct for
/// odd-offset single-byte fields).
#[allow(clippy::cast_possible_truncation)]
pub(crate) fn word_contribution(field: HeaderField, value: FieldValue) -> u32 {
    let raw = value.raw();
    match field {
        // MACs are outside both checksum domains; the value is never used.
        HeaderField::SrcMac | HeaderField::DstMac => 0,
        HeaderField::SrcIp | HeaderField::DstIp => {
            let ip = raw as u32;
            (ip >> 16) + (ip & 0xFFFF)
        }
        HeaderField::SrcPort | HeaderField::DstPort => (raw as u16).into(),
        // TTL is the high byte of the word at L3+8.
        HeaderField::Ttl => u32::from(raw as u8) << 8,
        // ToS is the low byte of the word at L3+0.
        HeaderField::Tos => u32::from(raw as u8),
    }
}

/// Lowers one merged field write to a masked word write.
///
/// Every window is 8 bytes at an even anchor-relative offset, so its four
/// 16-bit words line up with IPv4-header and pseudo-header checksum words,
/// and all windows stay in-bounds for the minimal 42-byte UDP frame.
fn lower_field(field: HeaderField, value: FieldValue) -> MicroOp {
    let raw = value.raw();
    let (ip_csum, l4_csum) = checksum_domains(field);
    let (anchor, offset, mask, value) = match field {
        // Bytes 0..6 of the frame; window tail overlaps the source MAC.
        HeaderField::DstMac => (Anchor::Frame, 0, 0xFFFF_FFFF_FFFF_0000, raw << 16),
        // Bytes 6..12 of the frame; window tail overlaps the ethertype.
        HeaderField::SrcMac => (Anchor::Frame, 6, 0xFFFF_FFFF_FFFF_0000, raw << 16),
        HeaderField::Tos => (Anchor::L3, 0, 0x00FF_0000_0000_0000, raw << 48),
        HeaderField::Ttl => (Anchor::L3, 8, 0xFF00_0000_0000_0000, raw << 56),
        HeaderField::SrcIp => (Anchor::L3, 12, 0xFFFF_FFFF_0000_0000, raw << 32),
        HeaderField::DstIp => (Anchor::L3, 16, 0xFFFF_FFFF_0000_0000, raw << 32),
        HeaderField::SrcPort => (Anchor::L4, 0, 0xFFFF_0000_0000_0000, raw << 48),
        HeaderField::DstPort => (Anchor::L4, 0, 0x0000_FFFF_0000_0000, raw << 32),
    };
    MicroOp::WriteWord { anchor, offset, mask, value, ip_csum, l4_csum }
}

/// Lowers a consolidated action into a compiled program (paper §V-B, done
/// once per rule install or Event-Table rewrite instead of per packet).
#[must_use]
pub fn compile(action: &ConsolidatedAction) -> CompiledProgram {
    let mut ops = Vec::new();
    if action.is_drop() {
        ops.push(MicroOp::Drop);
        return CompiledProgram { ops };
    }
    for _ in 0..action.net_decaps() {
        ops.push(MicroOp::PopDecap);
    }
    for spec in action.net_encaps() {
        let mut template = [0u8; AH_LEN];
        // Next-header is a placeholder: `encap_ah_template` patches it from
        // the packet's current protocol, mirroring `encap_ah`.
        AuthHeader::new(spec.spi, 0, 0).write(&mut template);
        ops.push(MicroOp::PushEncap { template });
    }
    let (mut ip, mut l4) = (false, false);
    for (field, value) in action.modifies() {
        let op = lower_field(*field, *value);
        if let MicroOp::WriteWord { ip_csum, l4_csum, .. } = op {
            ip |= ip_csum;
            l4 |= l4_csum;
        }
        ops.push(op);
    }
    if ip || l4 {
        ops.push(MicroOp::AdjustTrailing { ip, l4 });
    }
    CompiledProgram { ops }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use speedybox_packet::PacketBuilder;

    use super::*;
    use crate::action::{EncapSpec, HeaderAction};
    use crate::consolidate::consolidate;

    fn tcp_pkt() -> Packet {
        PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(b"compiled")
            .build()
    }

    fn udp_pkt() -> Packet {
        PacketBuilder::udp()
            .src("10.0.0.1:53".parse().unwrap())
            .dst("10.0.0.2:5353".parse().unwrap())
            .payload(b"dns")
            .build()
    }

    /// Runs both paths on clones of `pkt` and asserts byte identity.
    fn assert_paths_agree(action: &ConsolidatedAction, pkt: &Packet) {
        let program = compile(action);
        let mut interpreted = pkt.clone();
        let mut compiled = pkt.clone();
        let mut iops = OpCounter::default();
        let mut cops = OpCounter::default();
        let a = action.apply(&mut interpreted, &mut iops).unwrap();
        let b = program.run(&mut compiled, &mut cops).unwrap();
        assert_eq!(a, b);
        assert_eq!(interpreted.as_bytes(), compiled.as_bytes());
        // The compiled path never counts interpreted op kinds and vice
        // versa.
        assert_eq!(cops.field_writes, 0);
        assert_eq!(cops.checksum_fixes, 0);
        assert_eq!(iops.word_writes, 0);
        assert_eq!(iops.checksum_patches, 0);
    }

    #[test]
    fn noop_compiles_to_empty_program() {
        let program = compile(&consolidate(&[HeaderAction::Forward]));
        assert!(program.is_noop());
        let mut p = tcp_pkt();
        let before = p.as_bytes().to_vec();
        let mut ops = OpCounter::default();
        assert!(program.run(&mut p, &mut ops).unwrap());
        assert_eq!(p.as_bytes(), &before[..]);
        assert_eq!(ops, OpCounter::default());
    }

    #[test]
    fn drop_compiles_to_single_op() {
        let program = compile(&consolidate(&[HeaderAction::Drop]));
        assert_eq!(program.ops(), &[MicroOp::Drop]);
        let mut p = tcp_pkt();
        let mut ops = OpCounter::default();
        assert!(!program.run(&mut p, &mut ops).unwrap());
        assert_eq!(ops.drops, 1);
    }

    #[test]
    fn every_field_matches_interpreted_on_tcp_and_udp() {
        let values: [(HeaderField, FieldValue); 8] = [
            (HeaderField::SrcMac, [0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0x01].into()),
            (HeaderField::DstMac, [0x02, 0x11, 0x22, 0x33, 0x44, 0x55].into()),
            (HeaderField::SrcIp, Ipv4Addr::new(172, 16, 0, 9).into()),
            (HeaderField::DstIp, Ipv4Addr::new(192, 168, 7, 7).into()),
            (HeaderField::SrcPort, 4242u16.into()),
            (HeaderField::DstPort, 8080u16.into()),
            (HeaderField::Ttl, 17u8.into()),
            (HeaderField::Tos, 0xb8u8.into()),
        ];
        for (field, value) in values {
            let action = consolidate(&[HeaderAction::Modify(vec![(field, value)])]);
            assert_paths_agree(&action, &tcp_pkt());
            assert_paths_agree(&action, &udp_pkt());
        }
    }

    #[test]
    fn overlapping_port_writes_telescope() {
        // SrcPort and DstPort share the L4+0 window; the second write must
        // see the first one's output as its "old" bytes and the accumulated
        // sums must telescope to the exact L4 delta.
        let action = consolidate(&[
            HeaderAction::modify(HeaderField::SrcPort, 1u16),
            HeaderAction::modify(HeaderField::DstPort, 65535u16),
        ]);
        assert_paths_agree(&action, &tcp_pkt());
        assert_paths_agree(&action, &udp_pkt());
    }

    #[test]
    fn full_rewrite_matches_interpreted() {
        let action = consolidate(&[
            HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(10, 9, 9, 9)),
            HeaderAction::modify(HeaderField::DstPort, 8080u16),
            HeaderAction::modify(HeaderField::SrcIp, Ipv4Addr::new(10, 8, 8, 8)),
            HeaderAction::modify(HeaderField::Ttl, 63u8),
        ]);
        assert_paths_agree(&action, &tcp_pkt());
        assert_paths_agree(&action, &udp_pkt());
    }

    #[test]
    fn encap_decap_match_interpreted() {
        let encap = consolidate(&[HeaderAction::Encap(EncapSpec::new(0xbeef))]);
        assert_paths_agree(&encap, &tcp_pkt());

        let mut wrapped = tcp_pkt();
        wrapped.encap_ah(7, 0).unwrap();
        let decap = consolidate(&[HeaderAction::Decap(EncapSpec::new(7))]);
        assert_paths_agree(&decap, &wrapped);

        let swap = consolidate(&[
            HeaderAction::Decap(EncapSpec::new(7)),
            HeaderAction::Encap(EncapSpec::new(0x1001)),
            HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(10, 1, 2, 3)),
        ]);
        assert_paths_agree(&swap, &wrapped);
    }

    #[test]
    fn decap_error_matches_interpreted() {
        let decap = consolidate(&[HeaderAction::Decap(EncapSpec::new(1))]);
        let program = compile(&decap);
        let mut ops = OpCounter::default();
        // No AH on the packet: both paths must fail identically.
        let interpreted = decap.apply(&mut tcp_pkt(), &mut ops).unwrap_err();
        let compiled = program.run(&mut tcp_pkt(), &mut ops).unwrap_err();
        assert_eq!(interpreted, compiled);
    }

    #[test]
    fn op_accounting_counts_compiled_kinds() {
        let action = consolidate(&[
            HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(10, 0, 0, 1)),
            HeaderAction::modify(HeaderField::DstPort, 80u16),
            HeaderAction::Encap(EncapSpec::new(3)),
        ]);
        let program = compile(&action);
        let mut p = tcp_pkt();
        let mut ops = OpCounter::default();
        assert!(program.run(&mut p, &mut ops).unwrap());
        assert_eq!(ops.word_writes, 2);
        assert_eq!(ops.checksum_patches, 1);
        assert_eq!(ops.encaps, 1);
        assert_eq!(ops.field_writes, 0);
        assert_eq!(ops.checksum_fixes, 0);
    }

    #[test]
    fn checksums_stay_verifiable_after_run() {
        let action = consolidate(&[
            HeaderAction::modify(HeaderField::SrcIp, Ipv4Addr::new(203, 0, 113, 1)),
            HeaderAction::modify(HeaderField::SrcPort, 1u16),
        ]);
        for pkt in [tcp_pkt(), udp_pkt()] {
            let mut p = pkt;
            let mut ops = OpCounter::default();
            assert!(compile(&action).run(&mut p, &mut ops).unwrap());
            assert!(p.verify_checksums().unwrap());
        }
    }

    #[test]
    fn word_sum_sums_be_words() {
        assert_eq!(word_sum(0x0001_0002_0003_0004), 10);
        assert_eq!(word_sum(0xFFFF_0000_0000_0001), 0x1_0000);
        assert_eq!(word_sum(0), 0);
    }
}
