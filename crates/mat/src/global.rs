//! The Global MAT: the consolidated fast path (paper §V).
//!
//! After a flow's initial packet has traversed the original chain and every
//! NF has populated its Local MAT, the Global MAT consolidates the per-NF
//! rules into one [`GlobalRule`]: a single [`ConsolidatedAction`] for the
//! headers plus the ordered state-function batches (with a precomputed
//! parallel schedule). Subsequent packets are processed directly from here;
//! the Event Table is consulted first so stateful updates take effect
//! immediately (Fig 1's workflow).

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use speedybox_packet::{Fid, Packet};
use speedybox_telemetry::{CounterShard, Telemetry};

use crate::compiled::{compile, CompiledProgram};
use crate::consolidate::{consolidate, ConsolidatedAction};
use crate::event::EventTable;
use crate::flow_table::{Admission, AdmissionPolicy, FlowTable, FID_SPACE};
use crate::local::LocalMat;
use crate::ops::OpCounter;
use crate::parallel::schedule;
use crate::state_fn::SfBatch;
use crate::{MatError, Result};

/// The rule's hit counter, padded onto its own cache line (128 bytes
/// covers adjacent-line prefetch pairs) so relaxed increments from
/// concurrent fast-path cores never false-share with the read-mostly rule
/// data sitting next to it.
#[derive(Debug, Default)]
#[repr(align(128))]
struct PaddedCounter(std::sync::atomic::AtomicU64);

/// A consolidated fast-path rule for one flow.
#[derive(Debug)]
pub struct GlobalRule {
    /// The single header action equivalent to the whole chain's.
    pub consolidated: ConsolidatedAction,
    /// `consolidated` lowered to a straight-line micro-op program at
    /// install/rewrite time ([`crate::compiled`]). Event-Table rewrites go
    /// through [`GlobalRule::new`], so the program can never go stale
    /// relative to the action.
    pub compiled: CompiledProgram,
    /// Per-NF state-function batches, in chain order (empty batches
    /// omitted).
    pub batches: Vec<SfBatch>,
    /// Wavefront schedule over `batches` (Table I analysis), precomputed at
    /// consolidation time.
    pub schedule: Vec<Vec<usize>>,
    /// Fast-path hits served by this rule (operational statistics).
    hits: PaddedCounter,
}

impl Clone for GlobalRule {
    fn clone(&self) -> Self {
        Self {
            consolidated: self.consolidated.clone(),
            compiled: self.compiled.clone(),
            batches: self.batches.clone(),
            schedule: self.schedule.clone(),
            hits: PaddedCounter(std::sync::atomic::AtomicU64::new(self.hits())),
        }
    }
}

impl GlobalRule {
    /// Builds a rule, lowering the consolidated action to its compiled
    /// program (hit counter starts at zero).
    #[must_use]
    pub fn new(
        consolidated: ConsolidatedAction,
        batches: Vec<SfBatch>,
        schedule: Vec<Vec<usize>>,
    ) -> Self {
        let compiled = compile(&consolidated);
        Self { consolidated, compiled, batches, schedule, hits: PaddedCounter::default() }
    }

    /// Fast-path packets served by this rule so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.0.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn record_hit(&self) {
        self.hits.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Executes all state-function batches sequentially (the
    /// non-parallel execution mode; the parallel executor in
    /// `speedybox-platform` uses [`GlobalRule::schedule`] instead).
    pub fn execute_batches(&self, packet: &mut Packet, fid: Fid, ops: &mut OpCounter) {
        for batch in &self.batches {
            batch.execute(packet, fid, ops);
        }
    }
}

/// Outcome of fast-path processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPathOutcome {
    /// The packet was processed and survives.
    Forwarded,
    /// The packet was dropped (early drop at the head of the chain).
    Dropped,
    /// No rule is installed; the caller must send the packet down the
    /// original (slow) path.
    NoRule,
}

/// Default shard count for the rule table. Power of two so the shard index
/// is a mask of the (uniformly hashed) 20-bit FID.
pub const DEFAULT_GLOBAL_SHARDS: usize = 16;

/// The Global MAT, shared by the classifier and all NFs of one chain.
///
/// Holds the chain's Local MATs so that event-triggered rule patches can be
/// written back and re-consolidated in place (Fig 3).
///
/// Rules live in a bounded [`FlowTable`] keyed by FID: fast-path lookups
/// are **wait-free** — one direct-index probe plus one RCU slot load, no
/// lock, no hashing, regardless of concurrent rule churn — and rule
/// execution stays lock-free after the lookup (rules are handed out as
/// `Arc<GlobalRule>` clones). The table is bounded like the classifier's
/// (`max_flows`); it always uses LRU eviction as its when-full policy —
/// the classifier governs *admission*, this table's bound is a safety net
/// that can never refuse an install for an admitted flow.
#[derive(Debug)]
pub struct GlobalMat {
    locals: Vec<Arc<LocalMat>>,
    table: FlowTable<GlobalRule>,
    /// Monotonic install/touch counter: the recency timebase for the rule
    /// table's LRU safety net (the classifier's packet clock stays the
    /// authoritative idle-expiry timebase).
    tick: AtomicU64,
    events: Arc<EventTable>,
    /// Optional telemetry sink: fast-path hit/miss, rule install/rewrite/
    /// removal counters. Relaxed atomics; no effect on processing.
    sink: Option<Arc<Telemetry>>,
    /// Whether header actions execute as compiled micro-op programs
    /// (default) or through the interpreted [`ConsolidatedAction::apply`]
    /// (`--interpreted` escape hatch / ablation). Atomic so the mode can be
    /// flipped mid-run through a shared handle (fault-injection harnesses);
    /// every rule carries both forms, so a flip is always safe.
    compiled: std::sync::atomic::AtomicBool,
    /// Bitmask of chain positions whose NF is currently dead/recovering.
    /// While any bit is set, rule publication (`install` /
    /// `reinstall_if_present`) is refused: a consolidated rule embeds
    /// recordings from *every* NF, so no rule derived from a
    /// half-recovered chain may reach readers. Readers are unaffected —
    /// the platform tears down installed rules at kill time and routes
    /// packets over the interpreted original walk until recovery.
    quarantine: AtomicU64,
}

impl GlobalMat {
    /// Creates a Global MAT over the chain's Local MATs (chain order), with
    /// the default shard count.
    #[must_use]
    pub fn new(locals: Vec<Arc<LocalMat>>) -> Self {
        Self::with_shards(locals, DEFAULT_GLOBAL_SHARDS)
    }

    /// Creates a Global MAT with (at least) `shards` rule-table shards,
    /// rounded up to a power of two. Shard count never changes processing
    /// results — only lock granularity.
    #[must_use]
    pub fn with_shards(locals: Vec<Arc<LocalMat>>, shards: usize) -> Self {
        Self::with_limits(locals, shards, FID_SPACE)
    }

    /// Creates a Global MAT with explicit rule-table bounds: at most
    /// `max_flows` installed rules (0 = unbounded), evicting the
    /// least-recently-installed rule when full.
    #[must_use]
    pub fn with_limits(locals: Vec<Arc<LocalMat>>, shards: usize, max_flows: usize) -> Self {
        Self {
            locals,
            table: FlowTable::new(shards, max_flows, AdmissionPolicy::EvictOldest),
            tick: AtomicU64::new(0),
            events: Arc::new(EventTable::new()),
            sink: None,
            compiled: std::sync::atomic::AtomicBool::new(true),
            quarantine: AtomicU64::new(0),
        }
    }

    /// Attaches a telemetry sink for fast-path and rule-churn counters.
    /// The shared Event Table sinks into the same hub (events fired).
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<Telemetry>) -> Self {
        self.events.set_telemetry(Arc::clone(&sink));
        self.sink = Some(sink);
        self
    }

    /// Selects compiled (default) or interpreted header-action execution.
    /// Never changes processing results — only which op kinds are counted
    /// (`word_writes`/`checksum_patches` vs `field_writes`/
    /// `checksum_fixes`).
    #[must_use]
    pub fn with_compiled(self, compiled: bool) -> Self {
        self.set_compiled(compiled);
        self
    }

    /// True if header actions run as compiled micro-op programs.
    #[must_use]
    pub fn is_compiled(&self) -> bool {
        self.compiled.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Switches between compiled and interpreted execution at runtime.
    /// Always safe mid-run: every installed rule carries both its
    /// [`CompiledProgram`] and its [`ConsolidatedAction`], and both produce
    /// identical packet bytes.
    pub fn set_compiled(&self, compiled: bool) {
        self.compiled.store(compiled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Runs a rule's header action via the configured execution mode,
    /// counting compiled hits/fallbacks. Returns `false` for dropped
    /// packets.
    fn apply_rule(
        &self,
        rule: &GlobalRule,
        fid: Fid,
        packet: &mut Packet,
        ops: &mut OpCounter,
    ) -> Result<bool> {
        if self.is_compiled() {
            if let Some(cell) = self.cell(fid) {
                cell.add_compiled_hits(1);
            }
            rule.compiled.run(packet, ops)
        } else {
            if let Some(cell) = self.cell(fid) {
                cell.add_compiled_fallbacks(1);
            }
            rule.consolidated.apply(packet, ops)
        }
    }

    /// The telemetry cell for a FID, if a sink is attached.
    fn cell(&self, fid: Fid) -> Option<&CounterShard> {
        self.sink.as_ref().map(|t| t.shard(fid.index() as u64))
    }

    /// Number of rule-table shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.table.shard_count()
    }

    /// Maximum number of installed rules (the table's safety-net bound).
    #[must_use]
    pub fn max_flows(&self) -> usize {
        self.table.capacity()
    }

    /// Next recency tick for the rule table's LRU timebase.
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
    }

    /// The chain's Local MATs, in chain order.
    #[must_use]
    pub fn locals(&self) -> &[Arc<LocalMat>] {
        &self.locals
    }

    /// The shared Event Table (NFs register events here via
    /// [`crate::api::NfInstrument`]).
    #[must_use]
    pub fn events(&self) -> &Arc<EventTable> {
        &self.events
    }

    /// Marks chain position `nf` as dead: rule publication is refused
    /// until the matching [`GlobalMat::unquarantine_nf`]. Positions ≥ 64
    /// share the top bit (the mask is a chain-wide gate, not a per-NF
    /// reader filter, so aliasing only coarsens the window).
    pub fn quarantine_nf(&self, nf: usize) {
        self.quarantine.fetch_or(1u64 << nf.min(63), std::sync::atomic::Ordering::SeqCst);
    }

    /// Clears chain position `nf`'s quarantine bit; publication resumes
    /// once every quarantined NF has recovered.
    pub fn unquarantine_nf(&self, nf: usize) {
        self.quarantine.fetch_and(!(1u64 << nf.min(63)), std::sync::atomic::Ordering::SeqCst);
    }

    /// True while any NF in the chain is dead/recovering.
    #[must_use]
    pub fn is_quarantined(&self) -> bool {
        self.quarantine_mask() != 0
    }

    /// The raw quarantine bitmask (bit *i* = chain position *i* dead).
    #[must_use]
    pub fn quarantine_mask(&self) -> u64 {
        self.quarantine.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Consolidates the flow's Local-MAT rules into a [`GlobalRule`]
    /// without publishing it. Counts the consolidation.
    fn build_rule(&self, fid: Fid, ops: &mut OpCounter) -> Arc<GlobalRule> {
        let mut actions = Vec::new();
        let mut batches = Vec::new();
        // Cumulative frame-length delta of the header actions *upstream*
        // of the NF currently being visited. An NF's state functions run
        // against the consolidated (egress) packet on the fast path, so
        // each batch records input-position minus egress length — this is
        // what keeps length-reading state functions (e.g. the monitor's
        // byte counter) positionally exact when an encap/decap pair
        // annihilates around them during consolidation.
        let mut upstream_delta = 0i64;
        for local in &self.locals {
            if let Some(rule) = local.rule(fid) {
                if !rule.state_functions.is_empty() {
                    batches.push(
                        SfBatch::new(local.nf(), rule.state_functions)
                            .with_len_adjust(upstream_delta),
                    );
                }
                upstream_delta +=
                    rule.header_actions.iter().map(crate::HeaderAction::len_delta).sum::<i64>();
                actions.extend(rule.header_actions.iter().cloned());
            }
        }
        let egress_delta = upstream_delta;
        for batch in &mut batches {
            batch.len_adjust -= egress_delta;
        }
        let consolidated = consolidate(&actions);
        let sched = schedule(&batches);
        ops.consolidations += 1;
        Arc::new(GlobalRule::new(consolidated, batches, sched))
    }

    /// Consolidates the flow's Local-MAT rules into a fast-path rule
    /// ("As soon as the service chain finishes processing the packet,
    /// SpeedyBox notifies the Global MAT to consolidate the rules for the
    /// FID from all Local MATs", §III).
    ///
    /// If the table is at its safety-net bound, the least-recently-used
    /// rule is evicted first and fully torn down (Local MATs + Event
    /// Table), exactly like [`GlobalMat::remove_flow`].
    pub fn install(&self, fid: Fid, ops: &mut OpCounter) {
        // Publication gate: while an NF is dead, freshly consolidated
        // rules would embed its pre-crash recordings. The recovery
        // protocol sets the mask *before* sweeping the table, so a racing
        // install is either refused here or landed-then-swept — never
        // left visible across the quarantine window.
        if self.is_quarantined() {
            return;
        }
        let rule = self.build_rule(fid, ops);
        if let Some(cell) = self.cell(fid) {
            cell.add_rules_installed(1);
        }
        match self.table.insert(fid, rule, self.next_tick()) {
            Admission::Inserted { evicted: Some(victim), .. } => {
                // Safety-net LRU eviction: the displaced flow must not
                // linger half-installed — tear it down everywhere.
                if let Some(cell) = self.cell(victim.fid) {
                    cell.add_rules_removed(1);
                }
                for local in &self.locals {
                    local.remove(victim.fid);
                }
                self.events.remove_flow(victim.fid);
            }
            Admission::Inserted { .. } | Admission::Replaced { .. } | Admission::Rejected => {}
        }
    }

    /// Re-consolidates and republishes the flow's rule **only if it is
    /// still installed** — the Event-Table rewrite path. Returns whether
    /// the rule was replaced.
    ///
    /// This is the eviction-vs-rewrite atomicity guarantee: a rewrite that
    /// races a concurrent eviction/removal of the same flow must not
    /// resurrect the rule after its Local-MAT and Event-Table state is
    /// gone. `FlowTable::replace_if_present` decides presence and
    /// publication in one writer-side critical section, so the outcome is
    /// always "fully rewritten" or "fully evicted", never a hybrid.
    fn reinstall_if_present(&self, fid: Fid, ops: &mut OpCounter) -> bool {
        if self.is_quarantined() {
            return false;
        }
        let rule = self.build_rule(fid, ops);
        if !self.table.replace_if_present(fid, rule, self.next_tick()) {
            return false;
        }
        if let Some(cell) = self.cell(fid) {
            cell.add_rules_installed(1);
        }
        true
    }

    /// The installed rule for a flow, if any. Wait-free.
    #[must_use]
    pub fn rule(&self, fid: Fid) -> Option<Arc<GlobalRule>> {
        self.table.get(fid)
    }

    /// True if the flow has a fast-path rule. Wait-free.
    #[must_use]
    pub fn contains(&self, fid: Fid) -> bool {
        self.table.contains(fid)
    }

    /// Number of installed fast-path rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if no rules are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Number of replaced rule slots not yet reclaimed. Bounded by
    /// rule-churn frequency, never by reader count: every publication
    /// retries reclamation, and [`GlobalMat::collect_generations`]
    /// forces a retry from the control plane.
    #[must_use]
    pub fn pending_generations(&self) -> usize {
        self.table.pending_generations()
    }

    /// Attempts to reclaim retired rule slots; returns how many were
    /// freed. Safe at any time — a slot value is freed only once provably
    /// unreferenced.
    pub fn collect_generations(&self) -> usize {
        self.table.collect_generations()
    }

    /// Removes a flow everywhere: Global MAT, all Local MATs and the Event
    /// Table ("we delete the corresponding rule from the Global MAT and all
    /// Local MATs and free the associated memory space", §VI-B).
    pub fn remove_flow(&self, fid: Fid) {
        if self.table.remove(fid).is_some() {
            if let Some(cell) = self.cell(fid) {
                cell.add_rules_removed(1);
            }
        }
        for local in &self.locals {
            local.remove(fid);
        }
        self.events.remove_flow(fid);
    }

    /// Fast-path step 1: consult the Event Table; if events fired, patch
    /// the owning NFs' Local MATs and re-consolidate. Returns the
    /// up-to-date rule, or `None` if the flow has no rule installed.
    ///
    /// Split from [`GlobalMat::process`] so executors that parallelize
    /// state functions can reuse the event/lookup logic.
    pub fn prepare(&self, fid: Fid, ops: &mut OpCounter) -> Option<Arc<GlobalRule>> {
        ops.mat_lookups += 1;
        let cell = self.cell(fid);
        if !self.contains(fid) {
            if let Some(cell) = cell {
                cell.add_fastpath_misses(1);
            }
            return None;
        }
        let fired = self.events.check(fid, ops);
        if !fired.is_empty() {
            for (nf, patch) in fired {
                if let Some(local) = self.locals.iter().find(|l| l.nf() == nf) {
                    if let Some(actions) = patch.header_actions {
                        local.set_header_actions(fid, actions);
                    }
                    if let Some(funcs) = patch.state_functions {
                        local.set_state_functions(fid, funcs);
                    }
                }
            }
            // Fig 3: "a new consolidated global MAT is computed". The
            // conditional reinstall loses (and the rewrite is abandoned)
            // if a concurrent eviction tore the flow down after the
            // `contains` check above — the lookup below then misses.
            if self.reinstall_if_present(fid, ops) {
                if let Some(cell) = cell {
                    cell.add_rule_rewrites(1);
                }
            }
        }
        let rule = match self.table.lookup(fid) {
            Some((handle, r)) => {
                self.table.touch(handle, self.next_tick());
                Some(r)
            }
            None => None,
        };
        if let Some(cell) = cell {
            match &rule {
                Some(_) => cell.add_fastpath_hits(1),
                None => cell.add_fastpath_misses(1),
            }
        }
        if let Some(r) = &rule {
            r.record_hit();
        }
        rule
    }

    /// Snapshots the installed rules for `fids` — the batch fast path's
    /// up-front lookup. Wait-free throughout: each FID is one direct-index
    /// probe into the flow table (no hashing, no generation clone). FIDs
    /// without a rule are simply absent from the result. Duplicate FIDs
    /// are fine.
    #[must_use]
    pub fn prefetch(&self, fids: &[Fid]) -> HashMap<Fid, Arc<GlobalRule>> {
        let mut cache = HashMap::with_capacity(fids.len());
        self.prefetch_into(fids, &mut cache);
        cache
    }

    /// [`GlobalMat::prefetch`] into a caller-owned map (cleared first) —
    /// a warm caller re-prefetches batch after batch without allocating.
    pub fn prefetch_into(&self, fids: &[Fid], cache: &mut HashMap<Fid, Arc<GlobalRule>>) {
        cache.clear();
        for &fid in fids {
            if cache.contains_key(&fid) {
                continue;
            }
            if let Some(rule) = self.table.get(fid) {
                cache.insert(fid, rule);
            }
        }
    }

    /// [`GlobalMat::prepare`] against a prefetched rule handle: identical
    /// op accounting and event handling, but the initial existence check
    /// and final rule fetch are served from `cached` instead of the shard
    /// lock. Returns the up-to-date rule plus whether an event fired (a
    /// fired event re-consolidates the rule, so the caller's cache entry
    /// for this FID is stale from then on).
    ///
    /// `cached` must reflect the table's current entry for `fid` (`None` =
    /// no rule installed); the caller is responsible for invalidating its
    /// cache whenever it installs, patches or removes the flow's rule.
    pub fn prepare_cached(
        &self,
        fid: Fid,
        cached: Option<&Arc<GlobalRule>>,
        ops: &mut OpCounter,
    ) -> (Option<Arc<GlobalRule>>, bool) {
        ops.mat_lookups += 1;
        let cell = self.cell(fid);
        let Some(cached) = cached else {
            if let Some(cell) = cell {
                cell.add_fastpath_misses(1);
            }
            return (None, false);
        };
        let fired = self.events.check(fid, ops);
        if !fired.is_empty() {
            for (nf, patch) in fired {
                if let Some(local) = self.locals.iter().find(|l| l.nf() == nf) {
                    if let Some(actions) = patch.header_actions {
                        local.set_header_actions(fid, actions);
                    }
                    if let Some(funcs) = patch.state_functions {
                        local.set_state_functions(fid, funcs);
                    }
                }
            }
            // Fig 3: "a new consolidated global MAT is computed". As in
            // [`GlobalMat::prepare`], a rewrite that loses to a concurrent
            // eviction is abandoned whole — the lookup below then misses.
            if self.reinstall_if_present(fid, ops) {
                if let Some(cell) = cell {
                    cell.add_rule_rewrites(1);
                }
            }
            let rule = self.rule(fid);
            if let Some(cell) = cell {
                match &rule {
                    Some(_) => cell.add_fastpath_hits(1),
                    None => cell.add_fastpath_misses(1),
                }
            }
            if let Some(r) = &rule {
                r.record_hit();
            }
            return (rule, true);
        }
        if let Some(cell) = cell {
            cell.add_fastpath_hits(1);
        }
        cached.record_hit();
        (Some(Arc::clone(cached)), false)
    }

    /// Processes a batch of subsequent packets on the fast path, acquiring
    /// each touched shard's read lock once up front ([`GlobalMat::prefetch`])
    /// instead of twice per packet.
    ///
    /// Equivalent to calling [`GlobalMat::process`] on each packet in slice
    /// order — same outcomes, same per-packet op counts, same Event Table
    /// firings. Packets are processed in slice order, so per-flow ordering
    /// and event sequencing are preserved; a FID whose cached handle goes
    /// stale (event fired mid-batch) falls back to the locked
    /// [`GlobalMat::prepare`] for the rest of the batch.
    ///
    /// # Errors
    /// Returns [`MatError::Packet`] if header surgery fails, and
    /// [`MatError::InvalidActionSequence`] if a packet carries no FID; the
    /// error aborts the remainder of the batch.
    ///
    /// # Panics
    /// Panics if `ops.len() != packets.len()`.
    pub fn process_batch(
        &self,
        packets: &mut [Packet],
        ops: &mut [OpCounter],
    ) -> Result<Vec<FastPathOutcome>> {
        assert_eq!(packets.len(), ops.len(), "one OpCounter per packet");
        let fids: Vec<Option<Fid>> = packets.iter().map(speedybox_packet::Packet::fid).collect();
        let wanted: Vec<Fid> = fids.iter().flatten().copied().collect();
        let cache = self.prefetch(&wanted);
        let mut stale: std::collections::HashSet<Fid> = std::collections::HashSet::new();
        // Flow-affinity memo: real traffic arrives in same-flow runs, so
        // remember the last FID's rule handle and skip the HashMap probe on
        // a run. The memo only ever replaces *where the cached handle comes
        // from* — `prepare_cached` (with its observable event check) still
        // runs for every packet — and is dropped as soon as an event fires.
        let mut last: Option<(Fid, Arc<GlobalRule>)> = None;
        let mut outcomes = Vec::with_capacity(packets.len());
        for (i, packet) in packets.iter_mut().enumerate() {
            let fid = fids[i].ok_or(MatError::InvalidActionSequence("packet has no FID"))?;
            let rule = if stale.contains(&fid) {
                self.prepare(fid, &mut ops[i])
            } else {
                let memo = match &last {
                    Some((lf, r)) if *lf == fid => Some(r),
                    _ => cache.get(&fid),
                };
                let (rule, fired) = self.prepare_cached(fid, memo, &mut ops[i]);
                if fired {
                    stale.insert(fid);
                    last = None;
                } else if let Some(r) = &rule {
                    last = Some((fid, Arc::clone(r)));
                }
                rule
            };
            let Some(rule) = rule else {
                outcomes.push(FastPathOutcome::NoRule);
                continue;
            };
            if !self.apply_rule(&rule, fid, packet, &mut ops[i])? {
                outcomes.push(FastPathOutcome::Dropped);
                continue;
            }
            rule.execute_batches(packet, fid, &mut ops[i]);
            outcomes.push(FastPathOutcome::Forwarded);
        }
        Ok(outcomes)
    }

    /// A human-readable dump of every installed rule — the operator's view
    /// of the fast path (flow, consolidated action, batches, schedule,
    /// hits).
    #[must_use]
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut rules: Vec<(Fid, Arc<GlobalRule>)> = Vec::new();
        self.table.for_each(|fid, rule, _touch| rules.push((fid, Arc::clone(rule))));
        rules.sort_by_key(|(fid, _)| *fid);
        let mut out = String::new();
        let _ = writeln!(out, "global MAT: {} rule(s)", rules.len());
        for (fid, r) in &rules {
            let action = if r.consolidated.is_drop() {
                "drop".to_owned()
            } else if r.consolidated.is_noop() {
                "forward".to_owned()
            } else {
                let fields: Vec<String> =
                    r.consolidated.modifies().iter().map(|(f, _)| f.to_string()).collect();
                let mut a = format!("modify({})", fields.join(","));
                if r.consolidated.net_decaps() > 0 || !r.consolidated.net_encaps().is_empty() {
                    let _ = write!(
                        a,
                        " decap x{} encap x{}",
                        r.consolidated.net_decaps(),
                        r.consolidated.net_encaps().len()
                    );
                }
                a
            };
            let batch_names: Vec<String> =
                r.batches.iter().map(|b| format!("{}[{}]", b.nf, b.access())).collect();
            let _ = writeln!(
                out,
                "  {fid}: {action}; batches=[{}] waves={:?} hits={}",
                batch_names.join(", "),
                r.schedule,
                r.hits()
            );
        }
        out
    }

    /// Processes a subsequent packet entirely on the fast path: event
    /// check, consolidated header action, then sequential state-function
    /// execution.
    ///
    /// # Errors
    /// Returns [`MatError::Packet`] if header surgery fails (should not
    /// happen for rules recorded from valid packets).
    pub fn process(&self, packet: &mut Packet, ops: &mut OpCounter) -> Result<FastPathOutcome> {
        let fid = packet.fid().ok_or(MatError::InvalidActionSequence("packet has no FID"))?;
        let Some(rule) = self.prepare(fid, ops) else {
            return Ok(FastPathOutcome::NoRule);
        };
        if !self.apply_rule(&rule, fid, packet, ops)? {
            return Ok(FastPathOutcome::Dropped);
        }
        rule.execute_batches(packet, fid, ops);
        Ok(FastPathOutcome::Forwarded)
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use speedybox_packet::{HeaderField, PacketBuilder};

    use super::*;
    use crate::action::HeaderAction;
    use crate::event::{Event, RulePatch};
    use crate::local::NfId;
    use crate::state_fn::{PayloadAccess, StateFunction};

    fn mats(n: usize) -> Vec<Arc<LocalMat>> {
        (0..n).map(|i| Arc::new(LocalMat::new(NfId::new(i)))).collect()
    }

    fn pkt_with_fid() -> (Packet, Fid) {
        let mut p = PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(b"data")
            .build();
        let fid = p.five_tuple().unwrap().fid();
        p.set_fid(fid);
        (p, fid)
    }

    #[test]
    fn no_rule_routes_to_slow_path() {
        let gm = GlobalMat::new(mats(1));
        let (mut p, _) = pkt_with_fid();
        let mut ops = OpCounter::default();
        assert_eq!(gm.process(&mut p, &mut ops).unwrap(), FastPathOutcome::NoRule);
    }

    #[test]
    fn packet_without_fid_is_an_error() {
        let gm = GlobalMat::new(mats(1));
        let mut p = PacketBuilder::tcp().build();
        let mut ops = OpCounter::default();
        assert!(gm.process(&mut p, &mut ops).is_err());
    }

    #[test]
    fn quarantine_refuses_publication_until_all_bits_clear() {
        let locals = mats(2);
        let gm = GlobalMat::new(locals.clone());
        let (_, fid) = pkt_with_fid();
        let mut ops = OpCounter::default();
        locals[0].add_header_action(fid, HeaderAction::Forward, &mut ops);
        assert!(!gm.is_quarantined());
        gm.quarantine_nf(1);
        gm.quarantine_nf(0);
        assert_eq!(gm.quarantine_mask(), 0b11);
        gm.install(fid, &mut ops);
        assert!(!gm.contains(fid), "install refused while quarantined");
        // One NF recovering is not enough — the rule embeds all NFs.
        gm.unquarantine_nf(1);
        gm.install(fid, &mut ops);
        assert!(!gm.contains(fid));
        gm.unquarantine_nf(0);
        assert!(!gm.is_quarantined());
        gm.install(fid, &mut ops);
        assert!(gm.contains(fid), "publication resumes after full recovery");
        // Out-of-range positions alias onto bit 63 rather than panicking.
        gm.quarantine_nf(200);
        assert_eq!(gm.quarantine_mask(), 1u64 << 63);
        gm.unquarantine_nf(200);
        assert!(!gm.is_quarantined());
    }

    #[test]
    fn install_consolidates_chain_order() {
        let locals = mats(2);
        let gm = GlobalMat::new(locals.clone());
        let (mut p, fid) = pkt_with_fid();
        let mut ops = OpCounter::default();
        locals[0].add_header_action(
            fid,
            HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(1, 1, 1, 1)),
            &mut ops,
        );
        locals[1].add_header_action(
            fid,
            HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(2, 2, 2, 2)),
            &mut ops,
        );
        gm.install(fid, &mut ops);
        assert_eq!(gm.process(&mut p, &mut ops).unwrap(), FastPathOutcome::Forwarded);
        // Latter NF's modify wins.
        assert_eq!(p.get_field(HeaderField::DstIp).unwrap().as_ipv4(), Ipv4Addr::new(2, 2, 2, 2));
        assert_eq!(ops.consolidations, 1);
    }

    #[test]
    fn drop_rule_drops_early() {
        let locals = mats(3);
        let gm = GlobalMat::new(locals.clone());
        let (mut p, fid) = pkt_with_fid();
        let mut ops = OpCounter::default();
        // {forward, forward, drop} — Table III's early-drop scenario.
        locals[0].add_header_action(fid, HeaderAction::Forward, &mut ops);
        locals[1].add_header_action(fid, HeaderAction::Forward, &mut ops);
        locals[2].add_header_action(fid, HeaderAction::Drop, &mut ops);
        // A state function that must NOT run for dropped packets.
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        locals[0].add_state_function(
            fid,
            StateFunction::new("sf", PayloadAccess::Ignore, move |_| {
                r.store(true, Ordering::Relaxed);
            }),
            &mut ops,
        );
        gm.install(fid, &mut ops);
        assert_eq!(gm.process(&mut p, &mut ops).unwrap(), FastPathOutcome::Dropped);
        assert!(!ran.load(Ordering::Relaxed), "SFs must not run after early drop");
        assert_eq!(ops.drops, 1);
    }

    #[test]
    fn state_function_batches_execute_in_chain_order() {
        let locals = mats(2);
        let gm = GlobalMat::new(locals.clone());
        let (mut p, fid) = pkt_with_fid();
        let mut ops = OpCounter::default();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (i, local) in locals.iter().enumerate() {
            let o = order.clone();
            local.add_state_function(
                fid,
                StateFunction::new(format!("sf{i}"), PayloadAccess::Ignore, move |_| {
                    o.lock().push(i);
                }),
                &mut ops,
            );
        }
        gm.install(fid, &mut ops);
        gm.process(&mut p, &mut ops).unwrap();
        assert_eq!(*order.lock(), vec![0, 1]);
    }

    #[test]
    fn event_patches_rule_and_reconsolidates() {
        // The paper's Fig 3 DoS-prevention workflow: modify -> drop once a
        // counter crosses its threshold.
        let locals = mats(1);
        let gm = GlobalMat::new(locals.clone());
        let (_, fid) = pkt_with_fid();
        let mut ops = OpCounter::default();
        let counter = Arc::new(AtomicU64::new(0));
        locals[0].add_header_action(
            fid,
            HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(7, 7, 7, 7)),
            &mut ops,
        );
        let c = counter.clone();
        locals[0].add_state_function(
            fid,
            StateFunction::new("count", PayloadAccess::Ignore, move |ctx| {
                c.fetch_add(1, Ordering::Relaxed);
                ctx.ops.state_updates += 1;
            }),
            &mut ops,
        );
        let c2 = counter;
        gm.events().register(Event::new(
            fid,
            NfId::new(0),
            "dos-threshold",
            move |_| c2.load(Ordering::Relaxed) > 3,
            |_| RulePatch::set_action(HeaderAction::Drop),
        ));
        gm.install(fid, &mut ops);

        let mut forwarded = 0;
        let mut dropped = 0;
        for _ in 0..10 {
            let (mut p, _) = pkt_with_fid();
            match gm.process(&mut p, &mut ops).unwrap() {
                FastPathOutcome::Forwarded => forwarded += 1,
                FastPathOutcome::Dropped => dropped += 1,
                FastPathOutcome::NoRule => panic!("rule installed"),
            }
        }
        // Counter increments only while packets are forwarded; once it
        // exceeds 3 the event flips the rule to drop.
        assert_eq!(forwarded, 4);
        assert_eq!(dropped, 6);
        // Re-consolidation happened exactly once (one-shot event).
        assert_eq!(ops.consolidations, 2);
    }

    #[test]
    fn remove_flow_cleans_all_tables() {
        let locals = mats(2);
        let gm = GlobalMat::new(locals.clone());
        let (_, fid) = pkt_with_fid();
        let mut ops = OpCounter::default();
        locals[0].add_header_action(fid, HeaderAction::Forward, &mut ops);
        gm.events().register(Event::new(
            fid,
            NfId::new(0),
            "e",
            |_| false,
            |_| RulePatch::default(),
        ));
        gm.install(fid, &mut ops);
        assert!(gm.contains(fid));
        gm.remove_flow(fid);
        assert!(!gm.contains(fid));
        assert!(locals[0].rule(fid).is_none());
        assert!(gm.events().is_empty());
        assert!(gm.is_empty());
    }

    #[test]
    fn hits_and_dump_reflect_traffic() {
        let locals = mats(2);
        let gm = GlobalMat::new(locals.clone());
        let (_, fid) = pkt_with_fid();
        let mut ops = OpCounter::default();
        locals[0].add_header_action(
            fid,
            HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(1, 2, 3, 4)),
            &mut ops,
        );
        locals[1].add_state_function(
            fid,
            StateFunction::new("count", PayloadAccess::Ignore, |_| {}),
            &mut ops,
        );
        gm.install(fid, &mut ops);
        assert_eq!(gm.rule(fid).unwrap().hits(), 0);
        for _ in 0..3 {
            let (mut p, _) = pkt_with_fid();
            gm.process(&mut p, &mut ops).unwrap();
        }
        assert_eq!(gm.rule(fid).unwrap().hits(), 3);
        let dump = gm.dump();
        assert!(dump.contains("1 rule(s)"), "{dump}");
        assert!(dump.contains("modify(DIP)"), "{dump}");
        assert!(dump.contains("hits=3"), "{dump}");
        assert!(dump.contains("nf1[ignore]"), "{dump}");
    }

    #[test]
    fn dump_of_empty_mat() {
        let gm = GlobalMat::new(mats(1));
        assert!(gm.dump().contains("0 rule(s)"));
    }

    #[test]
    fn sf_inside_annihilated_tunnel_sees_positional_length() {
        // vpn-encap -> length-reading SF -> vpn-decap. Consolidation
        // annihilates the encap/decap pair, so the fast-path packet never
        // carries the AH — but the SF must still observe the mid-tunnel
        // (encapsulated) frame length it would have seen on the original
        // path.
        use crate::action::EncapSpec;
        let locals = mats(3);
        let gm = GlobalMat::new(locals.clone());
        let (mut p, fid) = pkt_with_fid();
        let plain_len = p.len();
        let mut ops = OpCounter::default();
        locals[0].add_header_action(fid, HeaderAction::Encap(EncapSpec::new(7)), &mut ops);
        let seen = Arc::new(AtomicU64::new(0));
        let s = seen.clone();
        locals[1].add_state_function(
            fid,
            StateFunction::new("len", PayloadAccess::Ignore, move |ctx| {
                s.store(ctx.frame_len() as u64, Ordering::Relaxed);
            }),
            &mut ops,
        );
        locals[2].add_header_action(fid, HeaderAction::Decap(EncapSpec::new(7)), &mut ops);
        gm.install(fid, &mut ops);
        let rule = gm.rule(fid).unwrap();
        assert!(rule.consolidated.is_noop(), "encap/decap pair annihilates");
        assert_eq!(rule.batches[0].len_adjust, speedybox_packet::headers::AH_LEN as i64);
        assert_eq!(gm.process(&mut p, &mut ops).unwrap(), FastPathOutcome::Forwarded);
        assert_eq!(p.len(), plain_len, "egress frame is unencapsulated");
        assert_eq!(
            seen.load(Ordering::Relaxed),
            (plain_len + speedybox_packet::headers::AH_LEN) as u64,
            "SF observes the mid-tunnel length"
        );
    }

    #[test]
    fn sf_after_surviving_encap_needs_no_adjustment() {
        // An unmatched encap survives consolidation, so a downstream SF
        // sees the encapsulated egress frame directly: adjust = 0.
        use crate::action::EncapSpec;
        let locals = mats(2);
        let gm = GlobalMat::new(locals.clone());
        let (mut p, fid) = pkt_with_fid();
        let plain_len = p.len();
        let mut ops = OpCounter::default();
        locals[0].add_header_action(fid, HeaderAction::Encap(EncapSpec::new(9)), &mut ops);
        let seen = Arc::new(AtomicU64::new(0));
        let s = seen.clone();
        locals[1].add_state_function(
            fid,
            StateFunction::new("len", PayloadAccess::Ignore, move |ctx| {
                s.store(ctx.frame_len() as u64, Ordering::Relaxed);
            }),
            &mut ops,
        );
        gm.install(fid, &mut ops);
        let rule = gm.rule(fid).unwrap();
        assert_eq!(rule.batches[0].len_adjust, 0);
        assert_eq!(gm.process(&mut p, &mut ops).unwrap(), FastPathOutcome::Forwarded);
        assert_eq!(
            seen.load(Ordering::Relaxed),
            (plain_len + speedybox_packet::headers::AH_LEN) as u64
        );
    }

    #[test]
    fn schedule_is_precomputed() {
        let locals = mats(3);
        let gm = GlobalMat::new(locals.clone());
        let (_, fid) = pkt_with_fid();
        let mut ops = OpCounter::default();
        for local in &locals {
            local.add_state_function(
                fid,
                StateFunction::new("read", PayloadAccess::Read, |_| {}),
                &mut ops,
            );
        }
        gm.install(fid, &mut ops);
        let rule = gm.rule(fid).unwrap();
        // Three READ batches form a single parallel wave.
        assert_eq!(rule.schedule, vec![vec![0, 1, 2]]);
    }
}
