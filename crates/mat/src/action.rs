//! The five standardized header actions (paper §IV-A1).
//!
//! An NF's per-flow behaviour on the packet *header* is one of:
//! `forward`, `drop`, `modify`, `encap`, `decap`. These are the atoms the
//! Global MAT consolidates.

use std::fmt;

use speedybox_packet::{FieldValue, HeaderField, Packet};

use crate::ops::OpCounter;
use crate::Result;

/// Parameters of an encapsulation (we model the IPsec Authentication
/// Header, the paper's VPN example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncapSpec {
    /// Security Parameters Index identifying the tunnel.
    pub spi: u32,
}

impl EncapSpec {
    /// Creates an encap spec for the given SPI.
    #[must_use]
    pub fn new(spi: u32) -> Self {
        Self { spi }
    }
}

impl fmt::Display for EncapSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spi={:#x}", self.spi)
    }
}

/// One NF's per-flow header action, as recorded in its Local MAT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderAction {
    /// Pass the packet through unmodified (monitors, IDSes).
    Forward,
    /// Discard the packet (firewalls). The paper: "set the associated
    /// packet descriptor to nil".
    Drop,
    /// Rewrite one or more header fields (NATs, load balancers, gateways).
    /// Pairs are applied in order; later writes to the same field win.
    Modify(Vec<(HeaderField, FieldValue)>),
    /// Push an authentication header (VPN ingress).
    Encap(EncapSpec),
    /// Pop the outermost authentication header (VPN egress). The spec
    /// identifies which tunnel's header is expected.
    Decap(EncapSpec),
}

impl HeaderAction {
    /// Convenience constructor for a single-field modify.
    #[must_use]
    pub fn modify(field: HeaderField, value: impl Into<FieldValue>) -> Self {
        HeaderAction::Modify(vec![(field, value.into())])
    }

    /// Convenience constructor for a two-field modify (e.g. DIP+DPort).
    #[must_use]
    pub fn modify2(a: (HeaderField, FieldValue), b: (HeaderField, FieldValue)) -> Self {
        HeaderAction::Modify(vec![a, b])
    }

    /// True for [`HeaderAction::Drop`].
    #[must_use]
    pub fn is_drop(&self) -> bool {
        matches!(self, HeaderAction::Drop)
    }

    /// True for [`HeaderAction::Forward`] (the default, no-op action).
    #[must_use]
    pub fn is_forward(&self) -> bool {
        matches!(self, HeaderAction::Forward)
    }

    /// Frame-length delta this action applies when executed: `+AH_LEN`
    /// for encap, `-AH_LEN` for decap, zero otherwise. Consolidation uses
    /// this to give each state-function batch a positionally exact frame
    /// length even when an encap/decap pair annihilates (§V-B).
    #[must_use]
    pub fn len_delta(&self) -> i64 {
        match self {
            HeaderAction::Encap(_) => speedybox_packet::headers::AH_LEN as i64,
            HeaderAction::Decap(_) => -(speedybox_packet::headers::AH_LEN as i64),
            _ => 0,
        }
    }

    /// Applies this action to a packet the way the *original* (slow-path)
    /// chain would: immediately and in isolation.
    ///
    /// Returns `false` if the packet was logically dropped (the caller
    /// releases it). Operation counts are added to `ops` for cost
    /// accounting.
    ///
    /// # Errors
    /// Propagates packet manipulation failures (e.g. decap with no AH).
    pub fn apply(&self, packet: &mut Packet, ops: &mut OpCounter) -> Result<bool> {
        match self {
            HeaderAction::Forward => Ok(true),
            HeaderAction::Drop => {
                ops.drops += 1;
                Ok(false)
            }
            HeaderAction::Modify(writes) => {
                for (field, value) in writes {
                    packet.set_field(*field, *value)?;
                    ops.field_writes += 1;
                }
                // Each NF on the original path leaves a valid packet
                // behind, so it fixes checksums itself (this is exactly
                // the per-NF redundancy R3/R1 SpeedyBox removes).
                packet.fix_checksums()?;
                ops.checksum_fixes += 1;
                Ok(true)
            }
            HeaderAction::Encap(spec) => {
                packet.encap_ah(spec.spi, 0)?;
                ops.encaps += 1;
                packet.fix_checksums()?;
                ops.checksum_fixes += 1;
                Ok(true)
            }
            HeaderAction::Decap(_) => {
                packet.decap_ah()?;
                ops.encaps += 1;
                packet.fix_checksums()?;
                ops.checksum_fixes += 1;
                Ok(true)
            }
        }
    }
}

impl Default for HeaderAction {
    /// The paper omits `forward` from consolidation input "because we set
    /// it as the default action if no other action is provided".
    fn default() -> Self {
        HeaderAction::Forward
    }
}

impl fmt::Display for HeaderAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderAction::Forward => f.write_str("forward"),
            HeaderAction::Drop => f.write_str("drop"),
            HeaderAction::Modify(writes) => {
                f.write_str("modify(")?;
                for (i, (field, _)) in writes.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{field}")?;
                }
                f.write_str(")")
            }
            HeaderAction::Encap(s) => write!(f, "encap({s})"),
            HeaderAction::Decap(s) => write!(f, "decap({s})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use speedybox_packet::PacketBuilder;

    use super::*;

    fn pkt() -> Packet {
        PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(b"data")
            .build()
    }

    #[test]
    fn forward_is_noop() {
        let mut p = pkt();
        let before = p.as_bytes().to_vec();
        let mut ops = OpCounter::default();
        assert!(HeaderAction::Forward.apply(&mut p, &mut ops).unwrap());
        assert_eq!(p.as_bytes(), &before[..]);
        assert_eq!(ops.total(), 0);
    }

    #[test]
    fn drop_signals_discard() {
        let mut p = pkt();
        let mut ops = OpCounter::default();
        assert!(!HeaderAction::Drop.apply(&mut p, &mut ops).unwrap());
        assert_eq!(ops.drops, 1);
    }

    #[test]
    fn modify_rewrites_and_fixes_checksums() {
        let mut p = pkt();
        let mut ops = OpCounter::default();
        let act = HeaderAction::modify(HeaderField::DstIp, Ipv4Addr::new(9, 9, 9, 9));
        assert!(act.apply(&mut p, &mut ops).unwrap());
        assert_eq!(p.get_field(HeaderField::DstIp).unwrap().as_ipv4(), Ipv4Addr::new(9, 9, 9, 9));
        assert!(p.verify_checksums().unwrap());
        assert_eq!(ops.field_writes, 1);
        assert_eq!(ops.checksum_fixes, 1);
    }

    #[test]
    fn modify_applies_in_order_latter_wins() {
        let mut p = pkt();
        let mut ops = OpCounter::default();
        let act = HeaderAction::Modify(vec![
            (HeaderField::DstPort, 1u16.into()),
            (HeaderField::DstPort, 2u16.into()),
        ]);
        act.apply(&mut p, &mut ops).unwrap();
        assert_eq!(p.get_field(HeaderField::DstPort).unwrap().as_port(), 2);
    }

    #[test]
    fn encap_then_decap_restores() {
        let mut p = pkt();
        let before = p.as_bytes().to_vec();
        let mut ops = OpCounter::default();
        HeaderAction::Encap(EncapSpec::new(7)).apply(&mut p, &mut ops).unwrap();
        assert_eq!(p.ah_depth(), 1);
        HeaderAction::Decap(EncapSpec::new(7)).apply(&mut p, &mut ops).unwrap();
        assert_eq!(p.ah_depth(), 0);
        assert_eq!(p.as_bytes(), &before[..]);
        assert_eq!(ops.encaps, 2);
    }

    #[test]
    fn decap_without_encap_errors() {
        let mut p = pkt();
        let mut ops = OpCounter::default();
        assert!(HeaderAction::Decap(EncapSpec::new(7)).apply(&mut p, &mut ops).is_err());
    }

    #[test]
    fn default_is_forward() {
        assert!(HeaderAction::default().is_forward());
    }

    #[test]
    fn display_formats() {
        assert_eq!(HeaderAction::Forward.to_string(), "forward");
        assert_eq!(HeaderAction::Drop.to_string(), "drop");
        let m = HeaderAction::modify2(
            (HeaderField::DstIp, Ipv4Addr::new(1, 1, 1, 1).into()),
            (HeaderField::DstPort, 80u16.into()),
        );
        assert_eq!(m.to_string(), "modify(DIP,DPort)");
        assert_eq!(HeaderAction::Encap(EncapSpec::new(16)).to_string(), "encap(spi=0x10)");
    }
}
