//! Error type for MAT operations.

use std::fmt;

use speedybox_packet::{Fid, PacketError};

/// Errors from Local/Global MAT operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatError {
    /// No rule is installed for the flow.
    NoRule(Fid),
    /// A rule already exists where a fresh install was required.
    RuleExists(Fid),
    /// The referenced NF position does not exist in the chain.
    UnknownNf(usize),
    /// The underlying packet operation failed.
    Packet(PacketError),
    /// Consolidation hit an inconsistent action sequence.
    InvalidActionSequence(&'static str),
}

impl fmt::Display for MatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatError::NoRule(fid) => write!(f, "no rule installed for {fid}"),
            MatError::RuleExists(fid) => write!(f, "rule already installed for {fid}"),
            MatError::UnknownNf(i) => write!(f, "no NF at chain position {i}"),
            MatError::Packet(e) => write!(f, "packet error: {e}"),
            MatError::InvalidActionSequence(what) => {
                write!(f, "invalid action sequence: {what}")
            }
        }
    }
}

impl std::error::Error for MatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MatError::Packet(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PacketError> for MatError {
    fn from(e: PacketError) -> Self {
        MatError::Packet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs: Vec<MatError> = vec![
            MatError::NoRule(Fid::new(1)),
            MatError::RuleExists(Fid::new(2)),
            MatError::UnknownNf(3),
            MatError::Packet(PacketError::NothingToDecap),
            MatError::InvalidActionSequence("x"),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn packet_error_is_source() {
        use std::error::Error;
        let e = MatError::from(PacketError::NothingToDecap);
        assert!(e.source().is_some());
    }
}
