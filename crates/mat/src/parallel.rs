//! Cross-NF state-function parallelism (paper §V-C2, Table I).
//!
//! Whole per-NF batches can execute in parallel when neither depends on the
//! other's payload effects. Header dependencies never arise here because
//! header actions were already consolidated by the Global MAT ("there is no
//! packet header dependency because such dependency is already eliminated
//! by the Global MAT").

use crate::state_fn::{PayloadAccess, SfBatch};

/// Table I of the paper: can `batch2` run in parallel with the *earlier*
/// `batch1`?
///
/// The text's rule: "if batch1 writes the payload, they cannot be
/// parallelized unless batch2 ignores the payload" — and symmetrically a
/// later writer cannot overlap an earlier reader (Table I row
/// `Payload Write` × column `Payload Read` = N).
#[must_use]
pub fn can_parallelize(batch1: PayloadAccess, batch2: PayloadAccess) -> bool {
    use PayloadAccess::{Ignore, Write};
    match (batch1, batch2) {
        // Earlier writer: only an ignoring later batch may overlap.
        (Write, b2) => b2 == Ignore,
        // Later writer: only overlap an earlier ignorer.
        (b1, Write) => b1 == Ignore,
        // Read/Read, Read/Ignore, Ignore/* are all safe.
        _ => true,
    }
}

/// Greedy wavefront schedule over a chain's batches.
///
/// Returns waves of batch indices; all batches within a wave execute in
/// parallel, waves execute in chain order. A batch joins the current wave
/// only if it is pairwise-parallelizable with *every* batch already in the
/// wave (they run simultaneously), preserving the sequential semantics for
/// every conflicting pair.
///
/// ```
/// use speedybox_mat::parallel::schedule_batches;
/// use speedybox_mat::PayloadAccess::{Ignore, Read, Write};
///
/// // Snort (READ) + Monitor (IGNORE) share a wave; a payload writer
/// // downstream must wait for both.
/// assert_eq!(
///     schedule_batches(&[Read, Ignore, Write]),
///     vec![vec![0, 1], vec![2]],
/// );
/// ```
#[must_use]
pub fn schedule_batches(accesses: &[PayloadAccess]) -> Vec<Vec<usize>> {
    let mut waves: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for (i, &acc) in accesses.iter().enumerate() {
        let fits =
            !current.is_empty() && current.iter().all(|&j| can_parallelize(accesses[j], acc));
        if current.is_empty() || fits {
            current.push(i);
        } else {
            waves.push(std::mem::take(&mut current));
            current.push(i);
        }
    }
    if !current.is_empty() {
        waves.push(current);
    }
    waves
}

/// Convenience: schedule from full batches.
#[must_use]
pub fn schedule(batches: &[SfBatch]) -> Vec<Vec<usize>> {
    let accesses: Vec<PayloadAccess> = batches.iter().map(SfBatch::access).collect();
    schedule_batches(&accesses)
}

/// The theoretical latency of a schedule assuming each batch costs
/// `costs[i]`: the sum over waves of each wave's maximum batch cost.
///
/// Used by the simulators and the Fig 5 benchmark — the paper's "optimal
/// latency reduction can be (N-1)/N" for N identical parallelizable
/// batches falls out of this.
#[must_use]
pub fn schedule_latency(waves: &[Vec<usize>], costs: &[u64]) -> u64 {
    waves.iter().map(|wave| wave.iter().map(|&i| costs[i]).max().unwrap_or(0)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use PayloadAccess::{Ignore, Read, Write};

    #[test]
    fn table_one_exact() {
        // Rows: batch2; Columns: batch1.  (paper Table I)
        //              Write  Read  Ignore   (batch1)
        // Write          N     N      Y
        // Read           Y     Y      Y
        // Ignore         Y     Y      Y
        assert!(!can_parallelize(Write, Write));
        assert!(!can_parallelize(Read, Write));
        assert!(can_parallelize(Ignore, Write));
        assert!(!can_parallelize(Write, Read));
        assert!(can_parallelize(Read, Read));
        assert!(can_parallelize(Ignore, Read));
        assert!(can_parallelize(Write, Ignore));
        assert!(can_parallelize(Read, Ignore));
        assert!(can_parallelize(Ignore, Ignore));
    }

    #[test]
    fn all_readers_form_one_wave() {
        let waves = schedule_batches(&[Read, Read, Read]);
        assert_eq!(waves, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn writers_serialize() {
        let waves = schedule_batches(&[Write, Write, Write]);
        assert_eq!(waves, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn writer_between_readers_splits_waves() {
        let waves = schedule_batches(&[Read, Write, Read]);
        assert_eq!(waves, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn writer_then_ignorers_share_wave() {
        let waves = schedule_batches(&[Write, Ignore, Ignore]);
        assert_eq!(waves, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_schedule() {
        assert!(schedule_batches(&[]).is_empty());
    }

    #[test]
    fn snort_plus_monitor_parallelizes() {
        // The paper's Fig 6 chain: Snort (payload READ) + Monitor (IGNORE).
        let waves = schedule_batches(&[Read, Ignore]);
        assert_eq!(waves, vec![vec![0, 1]]);
    }

    #[test]
    fn latency_of_parallel_wave_is_max() {
        let waves = schedule_batches(&[Read, Read, Read]);
        assert_eq!(schedule_latency(&waves, &[100, 100, 100]), 100);
        let serial = schedule_batches(&[Write, Write, Write]);
        assert_eq!(schedule_latency(&serial, &[100, 100, 100]), 300);
        // (N-1)/N reduction for N identical parallelizable batches.
        let n = 3u64;
        let reduction = 1.0 - (100.0 / (100.0 * n as f64));
        assert!((reduction - (n - 1) as f64 / n as f64).abs() < 1e-9);
    }

    #[test]
    fn schedule_preserves_order_within_and_across_waves() {
        let accesses = [Read, Ignore, Write, Ignore, Read];
        let waves = schedule_batches(&accesses);
        // Flattened schedule is the original order.
        let flat: Vec<usize> = waves.iter().flatten().copied().collect();
        assert_eq!(flat, vec![0, 1, 2, 3, 4]);
        // No wave holds a conflicting pair.
        for wave in &waves {
            for (x, &i) in wave.iter().enumerate() {
                for &j in &wave[x + 1..] {
                    assert!(can_parallelize(accesses[i], accesses[j]));
                }
            }
        }
    }
}
