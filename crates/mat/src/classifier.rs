//! The Packet Classifier (paper §III, §VI-B).
//!
//! First touch for every packet: hash the 5-tuple to the 20-bit FID, attach
//! it as metadata, and steer the packet — initial packets to the original
//! chain (slow path), subsequent packets to the Global MAT (fast path).
//! The classifier also watches TCP FIN/RST to garbage-collect rules.
//!
//! Flow state lives in a bounded [`FlowTable`]: slab slots addressed by a
//! direct FID index (lookups are wait-free — no hashing, no generation
//! clone), a per-shard timer wheel driven by the deterministic packet
//! clock for idle expiry, and a configurable capacity with LRU eviction or
//! admission rejection when full (see [`PacketClass::Rejected`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use speedybox_packet::{Fid, FiveTuple, Packet};
use speedybox_telemetry::{CounterShard, Telemetry};

use crate::flow_table::{AdmissionPolicy, FlowTable, Opened, FID_SPACE};
use crate::ops::OpCounter;

/// How the classifier steers a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketClass {
    /// First packet of the flow — traverse the original chain and record
    /// rules into the Local MATs.
    Initial,
    /// Subsequent packet — take the consolidated fast path.
    Subsequent,
    /// The packet's FID collides with a *different* flow's (20-bit FID
    /// space, paper §VI-B): the packet must take the original chain
    /// uninstrumented so the colliding flow's rule is never corrupted.
    /// The paper's prototype shares the rule slot silently; detecting the
    /// 5-tuple mismatch is this reproduction's safety extension.
    Collision,
    /// TCP handshake packet of a not-yet-established flow (SYN/SYN-ACK).
    /// Only emitted in handshake-aware mode
    /// ([`PacketClassifier::handshake_aware`]), which implements the
    /// paper's §III definition — "the initial packet \[is\] the first packet
    /// after a connection is established (e.g., after the 3-way TCP
    /// handshake)". Handshake packets traverse the original chain without
    /// recording.
    Handshake,
    /// The flow table is at capacity under [`AdmissionPolicy::Reject`] and
    /// this packet's flow was not admitted: no state is tracked and no
    /// rule is recorded — the packet rides the original chain
    /// uninstrumented (graceful degradation, identical forwarding
    /// behaviour, no fast path).
    Rejected,
}

/// Per-flow classifier bookkeeping.
///
/// Held by the flow table as an `Arc`, with every mutable field an atomic:
/// steering an *existing* flow only updates these atomics and is therefore
/// wait-free — no lock, no table mutation. Structural changes (first
/// packet of a flow, teardown, expiry) go through the table's writer path
/// instead. Recency lives in the flow-table slot (`touch`), not here.
#[derive(Debug)]
struct FlowEntry {
    /// The 5-tuple that claimed this FID (collision detection). Fixed at
    /// creation — a FID slot is never re-owned without a remove + reopen.
    owner: FiveTuple,
    packets: AtomicU64,
    /// In handshake-aware mode: the flow's rule has been recorded (its
    /// post-handshake initial packet already went down the slow path).
    recorded: AtomicBool,
}

impl FlowEntry {
    fn new(owner: FiveTuple) -> Self {
        Self { owner, packets: AtomicU64::new(0), recorded: AtomicBool::new(false) }
    }
}

/// Default shard count for the flow table. Power of two so the shard index
/// is a mask of the (uniformly hashed) 20-bit FID.
pub const DEFAULT_CLASSIFIER_SHARDS: usize = 16;

/// Teardown hook invoked (outside all table locks) with each flow the
/// classifier evicts under capacity pressure, so the owner can remove the
/// flow's Global-MAT rule and notify NFs.
pub type EvictHook = Arc<dyn Fn(Fid) + Send + Sync>;

/// The SpeedyBox Packet Classifier.
///
/// Flow state is a bounded [`FlowTable`] keyed by FID: steering an
/// already-tracked flow is wait-free — one direct-index lookup plus atomic
/// per-flow counter updates, no lock — while structural changes (flow open
/// / teardown / expiry) serialize on per-shard writer mutexes that readers
/// never touch. Capacity and the when-full policy come from
/// [`PacketClassifier::with_limits`]; evictions fire the
/// [`EvictHook`] so MAT rules are torn down with the flow state.
///
/// ```
/// use speedybox_mat::{OpCounter, PacketClass, PacketClassifier};
/// use speedybox_packet::PacketBuilder;
///
/// let classifier = PacketClassifier::new();
/// let mut ops = OpCounter::default();
/// let mut first = PacketBuilder::tcp().build();
/// let c = classifier.classify(&mut first, &mut ops)?;
/// assert_eq!(c.class, PacketClass::Initial);
/// assert_eq!(first.fid(), Some(c.fid)); // FID attached as metadata
///
/// let mut second = PacketBuilder::tcp().build();
/// let c2 = classifier.classify(&mut second, &mut ops)?;
/// assert_eq!(c2.class, PacketClass::Subsequent);
/// # Ok::<(), speedybox_packet::PacketError>(())
/// ```
pub struct PacketClassifier {
    table: FlowTable<FlowEntry>,
    /// Monotonic packet clock: incremented per classified packet. Used as
    /// the timebase for idle-flow expiry (deterministic, no wall clock).
    clock: AtomicU64,
    /// Implement the paper's §III initial-packet definition: TCP SYN
    /// packets of unestablished flows are steered as
    /// [`PacketClass::Handshake`] and recording starts with the first
    /// post-handshake packet. Off by default (record from the very first
    /// packet, which is what synthetic pktgen-style traffic needs).
    handshake_aware: bool,
    /// Optional telemetry sink: flow lifecycle counters (opens, closes,
    /// expiries, evictions, rejections, FID collisions, handshake
    /// packets). Relaxed atomics; no effect on steering.
    sink: Option<Arc<Telemetry>>,
    /// Capacity-eviction teardown hook (see [`EvictHook`]).
    evictor: Option<EvictHook>,
}

impl std::fmt::Debug for PacketClassifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketClassifier")
            .field("table", &self.table)
            .field("clock", &self.clock)
            .field("handshake_aware", &self.handshake_aware)
            .field("evictor", &self.evictor.is_some())
            .finish()
    }
}

impl Default for PacketClassifier {
    fn default() -> Self {
        Self::with_shards(DEFAULT_CLASSIFIER_SHARDS)
    }
}

/// Classifier verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// Assigned flow ID (also attached to the packet).
    pub fid: Fid,
    /// Steering decision.
    pub class: PacketClass,
    /// True if this packet closes the flow (FIN/RST): the caller must tear
    /// down the flow's rules after processing it.
    pub closes_flow: bool,
}

/// One not-yet-steered packet of a batch (parse succeeded; awaiting its
/// clock tick).
#[derive(Debug)]
struct Pending {
    idx: usize,
    fid: Fid,
    tuple: FiveTuple,
    now: u64,
    is_syn: bool,
    closes: bool,
}

/// Reusable intermediate storage for
/// [`PacketClassifier::classify_batch_into`]; hold one per worker and the
/// classifier allocates nothing per batch once the vectors are warm.
#[derive(Debug, Default)]
pub struct ClassifyScratch {
    slots: Vec<Option<Result<Classification, speedybox_packet::PacketError>>>,
    pending: Vec<Pending>,
}

impl PacketClassifier {
    /// Creates an empty classifier with the default shard count and an
    /// unbounded (full-FID-space) flow table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty classifier with (at least) `shards` flow-table
    /// shards, rounded up to a power of two. Shard count never changes
    /// steering decisions — only lock granularity.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self::with_limits(shards, FID_SPACE, AdmissionPolicy::EvictOldest)
    }

    /// Creates an empty classifier with explicit flow-table bounds: at
    /// most `max_flows` live flows (0 = unbounded), handling overflow per
    /// `policy`.
    #[must_use]
    pub fn with_limits(shards: usize, max_flows: usize, policy: AdmissionPolicy) -> Self {
        Self {
            table: FlowTable::new(shards, max_flows, policy),
            clock: AtomicU64::new(0),
            handshake_aware: false,
            sink: None,
            evictor: None,
        }
    }

    /// Number of flow-table shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.table.shard_count()
    }

    /// The flow-table capacity (live-flow bound).
    #[must_use]
    pub fn max_flows(&self) -> usize {
        self.table.capacity()
    }

    /// Enables the paper's §III handshake-aware initial-packet definition.
    #[must_use]
    pub fn handshake_aware(mut self) -> Self {
        self.handshake_aware = true;
        self
    }

    /// Whether handshake-aware steering is active.
    #[must_use]
    pub fn is_handshake_aware(&self) -> bool {
        self.handshake_aware
    }

    /// Attaches a telemetry sink for flow lifecycle counters.
    #[must_use]
    pub fn with_telemetry(mut self, sink: Arc<Telemetry>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches the capacity-eviction teardown hook, called with each
    /// flow evicted to make room (after the table locks are released).
    /// Idle expiry does *not* fire the hook —
    /// [`PacketClassifier::expire_idle`] returns the FIDs to its caller
    /// instead.
    #[must_use]
    pub fn with_evictor(mut self, hook: EvictHook) -> Self {
        self.evictor = Some(hook);
        self
    }

    /// The telemetry cell for a FID, if a sink is attached.
    fn cell(&self, fid: Fid) -> Option<&CounterShard> {
        self.sink.as_ref().map(|t| t.shard(fid.index() as u64))
    }

    /// Classifies a packet: computes and attaches the FID, decides
    /// initial vs. subsequent, and flags flow teardown.
    ///
    /// The FID is derived from the packet's 5-tuple *at chain entry*; NFs
    /// downstream may rewrite headers but the metadata FID stays put.
    ///
    /// # Errors
    /// Propagates a parse failure for malformed packets.
    pub fn classify(
        &self,
        packet: &mut Packet,
        ops: &mut OpCounter,
    ) -> Result<Classification, speedybox_packet::PacketError> {
        let tuple = packet.five_tuple()?;
        let fid = tuple.fid();
        // One classification op covers the parse + hash + table probe +
        // FID attach (priced as a unit by the cycle model).
        ops.classifications += 1;
        packet.set_fid(fid);
        let now = self.clock.fetch_add(1, Relaxed);
        let is_syn = packet.tcp_flags().syn();
        let class = self.steer(fid, tuple, now, is_syn);
        let closes_flow = packet.tcp_flags().closes_flow();
        Ok(Classification { fid, class, closes_flow })
    }

    /// The steering decision proper. Wait-free for already-tracked flows
    /// (one direct-index lookup + atomic field updates); only a flow's
    /// *first* packet takes the table's writer path to open its slot.
    fn steer(&self, fid: Fid, tuple: FiveTuple, now: u64, is_syn: bool) -> PacketClass {
        let cell = self.cell(fid);
        let entry = match self.table.lookup(fid) {
            Some((handle, entry)) => {
                self.table.touch(handle, now);
                entry
            }
            None => match self.table.open_with(fid, now, || Arc::new(FlowEntry::new(tuple))) {
                Opened::Existing { value, .. } => value,
                Opened::Created { value, evicted, .. } => {
                    if let Some(cell) = cell {
                        cell.add_flows_opened(1);
                    }
                    if let Some(victim) = evicted {
                        // Capacity pressure displaced the table-wide LRU
                        // flow: count it and let the owner tear down its
                        // MAT rules (the hook runs outside table locks).
                        if let Some(vcell) = self.cell(victim.fid) {
                            vcell.add_flows_evicted(1);
                        }
                        if let Some(hook) = &self.evictor {
                            hook(victim.fid);
                        }
                    }
                    value
                }
                Opened::Rejected => {
                    if let Some(cell) = cell {
                        cell.add_flows_rejected(1);
                    }
                    return PacketClass::Rejected;
                }
            },
        };
        let class = if entry.owner != tuple {
            PacketClass::Collision
        } else if self.handshake_aware && is_syn && !entry.recorded.load(Relaxed) {
            // §III: handshake packets precede the "initial packet";
            // they ride the original chain without recording.
            PacketClass::Handshake
        } else if entry.recorded.compare_exchange(false, true, Relaxed, Relaxed).is_ok() {
            // The CAS guarantees exactly one packet is steered Initial per
            // flow slot even under concurrent classification.
            PacketClass::Initial
        } else {
            PacketClass::Subsequent
        };
        if class != PacketClass::Collision {
            entry.packets.fetch_add(1, Relaxed);
        }
        if let Some(cell) = cell {
            match class {
                PacketClass::Collision => cell.add_fid_collisions(1),
                PacketClass::Handshake => cell.add_handshake_packets(1),
                _ => {}
            }
        }
        class
    }

    /// Classifies a batch of packets, drawing one clock advance for the
    /// whole batch. Steering itself is the wait-free [`Self::steer`] path;
    /// there is no lock left to amortize.
    ///
    /// Equivalent to calling [`PacketClassifier::classify`] on each packet
    /// in slice order — same clock values, same steering, same per-packet
    /// op counts — with one deliberate difference: a packet that closes its
    /// flow (FIN/RST, non-colliding) has its classifier entry removed
    /// *here*, before any later packet in the batch is steered, exactly
    /// where the sequential caller would have called
    /// [`PacketClassifier::remove_flow`] between packets. Batch callers
    /// must therefore NOT call `remove_flow` on the classifier again for
    /// those packets (tearing down the Global MAT side stays the caller's
    /// job); a second removal could delete the state of a later in-batch
    /// packet that re-claimed the FID.
    ///
    /// Per-flow packet order is preserved: same flow → same FID → same
    /// shard, and each shard processes its packets in slice order.
    ///
    /// # Panics
    /// Panics if `ops.len() != packets.len()`.
    pub fn classify_batch(
        &self,
        packets: &mut [Packet],
        ops: &mut [OpCounter],
    ) -> Vec<Result<Classification, speedybox_packet::PacketError>> {
        let mut out = Vec::with_capacity(packets.len());
        self.classify_batch_into(packets, ops, &mut out, &mut ClassifyScratch::default());
        out
    }

    /// [`PacketClassifier::classify_batch`] into caller-owned storage:
    /// results are appended to `out` (cleared first) and all intermediate
    /// state lives in `scratch`, so a warm caller reclassifies batch after
    /// batch without touching the allocator.
    ///
    /// # Panics
    /// Panics if `ops.len() != packets.len()`.
    pub fn classify_batch_into(
        &self,
        packets: &mut [Packet],
        ops: &mut [OpCounter],
        out: &mut Vec<Result<Classification, speedybox_packet::PacketError>>,
        scratch: &mut ClassifyScratch,
    ) {
        assert_eq!(packets.len(), ops.len(), "one OpCounter per packet");
        let ClassifyScratch { slots, pending } = scratch;
        slots.clear();
        slots.resize_with(packets.len(), || None);
        pending.clear();
        for (idx, packet) in packets.iter_mut().enumerate() {
            match packet.five_tuple() {
                Err(e) => slots[idx] = Some(Err(e)),
                Ok(tuple) => {
                    let fid = tuple.fid();
                    ops[idx].classifications += 1;
                    packet.set_fid(fid);
                    pending.push(Pending {
                        idx,
                        fid,
                        tuple,
                        now: 0,
                        is_syn: packet.tcp_flags().syn(),
                        closes: packet.tcp_flags().closes_flow(),
                    });
                }
            }
        }
        // One clock advance for the whole batch; packet i gets the tick it
        // would have drawn classifying sequentially (parse failures draw
        // none, as in the per-packet path).
        let base = self.clock.fetch_add(pending.len() as u64, Relaxed);
        for (j, p) in pending.iter_mut().enumerate() {
            p.now = base + j as u64;
        }
        for p in pending.iter() {
            let class = self.steer(p.fid, p.tuple, p.now, p.is_syn);
            if p.closes && class != PacketClass::Collision {
                // Sequential teardown point: the per-packet caller removes
                // the flow before classifying the next packet, so a later
                // in-batch packet with this FID sees a fresh slot. A
                // Rejected packet's FID has no entry, so this no-ops.
                if self.table.remove(p.fid).is_some() {
                    if let Some(cell) = self.cell(p.fid) {
                        cell.add_flows_closed(1);
                    }
                }
            }
            slots[p.idx] = Some(Ok(Classification { fid: p.fid, class, closes_flow: p.closes }));
        }
        out.clear();
        out.extend(slots.drain(..).map(|s| s.expect("every packet classified")));
    }

    /// Classifies by 5-tuple only (no packet mutation) — used by tests and
    /// by workload planners that need to predict steering.
    #[must_use]
    pub fn peek(&self, tuple: &FiveTuple) -> PacketClass {
        let fid = tuple.fid();
        match self.table.get(fid) {
            Some(s) if s.owner == *tuple && s.recorded.load(Relaxed) => PacketClass::Subsequent,
            Some(s) if s.owner == *tuple => PacketClass::Initial,
            Some(_) => PacketClass::Collision,
            None => PacketClass::Initial,
        }
    }

    /// Force-evicts the `k` least-recently-seen flows — the same
    /// wheel-driven LRU path capacity pressure takes — returning the
    /// victims' FIDs. Unlike automatic capacity eviction, the evictor
    /// hook does **not** fire: the caller owns the rest of the teardown
    /// (Global MAT, Local MATs, Event Table).
    pub fn evict_oldest(&self, k: usize) -> Vec<Fid> {
        let mut out = Vec::new();
        for victim in self.table.evict_oldest(k) {
            if let Some(cell) = self.cell(victim.fid) {
                cell.add_flows_evicted(1);
            }
            out.push(victim.fid);
        }
        out
    }

    /// Forgets a flow (called together with `GlobalMat::remove_flow` when a
    /// FIN/RST packet has finished processing). The next packet with this
    /// FID is treated as initial again.
    pub fn remove_flow(&self, fid: Fid) {
        if self.table.remove(fid).is_some() {
            if let Some(cell) = self.cell(fid) {
                cell.add_flows_closed(1);
            }
        }
    }

    /// Number of tracked flows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if no flows are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Packets seen so far for a flow.
    #[must_use]
    pub fn packets_seen(&self, fid: Fid) -> u64 {
        self.table.get(fid).map_or(0, |s| s.packets.load(Relaxed))
    }

    /// Retired flow-slot values not yet reclaimed (removed, evicted or
    /// replaced entries awaiting RCU collection).
    #[must_use]
    pub fn pending_generations(&self) -> usize {
        self.table.pending_generations()
    }

    /// Attempts to reclaim retired flow-slot values; returns how many
    /// were freed.
    pub fn collect_generations(&self) -> usize {
        self.table.collect_generations()
    }

    /// The classifier's monotonic packet clock (one tick per classified
    /// packet).
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock.load(Relaxed)
    }

    /// A conservative lower bound on the earliest clock tick any flow
    /// could expire at (`u64::MAX` when no flows are tracked). Lets batch
    /// loops skip [`PacketClassifier::expire_idle`] entirely while nothing
    /// can be due.
    #[must_use]
    pub fn next_expiry_due(&self) -> u64 {
        self.table.next_due()
    }

    /// Expires flows idle for more than `max_idle` clock ticks, returning
    /// the expired FIDs so the caller can tear down their MAT rules.
    ///
    /// TCP flows are normally garbage-collected on FIN/RST (§VI-B of the
    /// paper); this extension reclaims UDP flows and half-dead TCP flows
    /// that never close. The timebase is the deterministic packet clock,
    /// so tests and the simulators stay reproducible; the scan is the flow
    /// table's timer wheel — amortized O(1) per tick, not O(flows).
    pub fn expire_idle(&self, max_idle: u64) -> Vec<Fid> {
        let now = self.clock();
        let mut expired = Vec::new();
        for victim in self.table.expire_idle(now, max_idle) {
            if let Some(cell) = self.cell(victim.fid) {
                cell.add_flows_expired(1);
            }
            expired.push(victim.fid);
        }
        expired
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::AtomicUsize;

    use speedybox_packet::{PacketBuilder, TcpFlags};

    use super::*;

    fn pkt(src_port: u16, flags: u8) -> Packet {
        PacketBuilder::tcp()
            .src(format!("10.0.0.1:{src_port}").parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .flags(flags)
            .build()
    }

    #[test]
    fn first_packet_is_initial_then_subsequent() {
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mut p1 = pkt(1000, TcpFlags::SYN);
        let c1 = cl.classify(&mut p1, &mut ops).unwrap();
        assert_eq!(c1.class, PacketClass::Initial);
        let mut p2 = pkt(1000, TcpFlags::ACK);
        let c2 = cl.classify(&mut p2, &mut ops).unwrap();
        assert_eq!(c2.class, PacketClass::Subsequent);
        assert_eq!(c1.fid, c2.fid);
        assert_eq!(cl.packets_seen(c1.fid), 2);
    }

    #[test]
    fn fid_is_attached_to_packet() {
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mut p = pkt(1000, TcpFlags::ACK);
        assert!(p.fid().is_none());
        let c = cl.classify(&mut p, &mut ops).unwrap();
        assert_eq!(p.fid(), Some(c.fid));
    }

    #[test]
    fn distinct_flows_get_distinct_state() {
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mut a = pkt(1000, TcpFlags::ACK);
        let mut b = pkt(2000, TcpFlags::ACK);
        cl.classify(&mut a, &mut ops).unwrap();
        let cb = cl.classify(&mut b, &mut ops).unwrap();
        assert_eq!(cb.class, PacketClass::Initial);
        assert_eq!(cl.len(), 2);
    }

    #[test]
    fn fin_and_rst_flag_teardown() {
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mut fin = pkt(1000, TcpFlags::FIN | TcpFlags::ACK);
        assert!(cl.classify(&mut fin, &mut ops).unwrap().closes_flow);
        let mut rst = pkt(1001, TcpFlags::RST);
        assert!(cl.classify(&mut rst, &mut ops).unwrap().closes_flow);
        let mut ack = pkt(1002, TcpFlags::ACK);
        assert!(!cl.classify(&mut ack, &mut ops).unwrap().closes_flow);
    }

    #[test]
    fn removed_flow_becomes_initial_again() {
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mut p = pkt(1000, TcpFlags::ACK);
        let c = cl.classify(&mut p, &mut ops).unwrap();
        cl.remove_flow(c.fid);
        assert!(cl.is_empty());
        let mut p2 = pkt(1000, TcpFlags::ACK);
        assert_eq!(cl.classify(&mut p2, &mut ops).unwrap().class, PacketClass::Initial);
    }

    #[test]
    fn peek_does_not_mutate() {
        let cl = PacketClassifier::new();
        let p = pkt(1000, TcpFlags::ACK);
        let t = p.five_tuple().unwrap();
        assert_eq!(cl.peek(&t), PacketClass::Initial);
        assert_eq!(cl.peek(&t), PacketClass::Initial);
        assert!(cl.is_empty());
    }

    /// Finds two distinct 5-tuples with the same 20-bit FID (birthday
    /// search over the address space).
    fn colliding_tuples() -> (FiveTuple, FiveTuple) {
        use std::collections::HashMap;
        use std::net::Ipv4Addr;

        use speedybox_packet::Protocol;

        let mut seen: HashMap<Fid, FiveTuple> = HashMap::new();
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                for port in [1000u16, 2000, 3000, 4000] {
                    let t = FiveTuple::new(
                        Ipv4Addr::new(10, 5, a, b),
                        port,
                        Ipv4Addr::new(10, 0, 0, 2),
                        80,
                        Protocol::Tcp,
                    );
                    if let Some(prev) = seen.insert(t.fid(), t) {
                        if prev != t {
                            return (prev, t);
                        }
                    }
                }
            }
        }
        panic!("no FID collision in search space (hash badly broken?)");
    }

    #[test]
    fn fid_collision_is_detected() {
        use std::net::SocketAddrV4;

        let (ta, tb) = colliding_tuples();
        assert_eq!(ta.fid(), tb.fid());
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mk = |t: &FiveTuple| {
            let mut b = PacketBuilder::tcp();
            b.src(SocketAddrV4::new(t.src_ip, t.src_port))
                .dst(SocketAddrV4::new(t.dst_ip, t.dst_port));
            b.build()
        };
        // First flow claims the FID.
        let mut pa = mk(&ta);
        assert_eq!(cl.classify(&mut pa, &mut ops).unwrap().class, PacketClass::Initial);
        // The colliding flow is flagged, repeatedly.
        let mut pb = mk(&tb);
        assert_eq!(cl.classify(&mut pb, &mut ops).unwrap().class, PacketClass::Collision);
        let mut pb2 = mk(&tb);
        assert_eq!(cl.classify(&mut pb2, &mut ops).unwrap().class, PacketClass::Collision);
        assert_eq!(cl.peek(&tb), PacketClass::Collision);
        // The owner keeps normal service.
        let mut pa2 = mk(&ta);
        assert_eq!(cl.classify(&mut pa2, &mut ops).unwrap().class, PacketClass::Subsequent);
        // Once the owner departs, the colliding flow can claim the slot.
        cl.remove_flow(ta.fid());
        let mut pb3 = mk(&tb);
        assert_eq!(cl.classify(&mut pb3, &mut ops).unwrap().class, PacketClass::Initial);
    }

    #[test]
    fn idle_flows_expire() {
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mut a = pkt(1000, TcpFlags::ACK);
        let fid_a = cl.classify(&mut a, &mut ops).unwrap().fid;
        // Busy flow b keeps ticking while a goes idle.
        for _ in 0..20 {
            let mut b = pkt(2000, TcpFlags::ACK);
            cl.classify(&mut b, &mut ops).unwrap();
        }
        let expired = cl.expire_idle(10);
        assert_eq!(expired, vec![fid_a]);
        assert_eq!(cl.len(), 1, "busy flow survives");
        // The expired flow is initial again.
        let mut a2 = pkt(1000, TcpFlags::ACK);
        assert_eq!(cl.classify(&mut a2, &mut ops).unwrap().class, PacketClass::Initial);
    }

    #[test]
    fn expire_idle_with_no_idle_flows_is_noop() {
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mut p = pkt(1000, TcpFlags::ACK);
        cl.classify(&mut p, &mut ops).unwrap();
        assert!(cl.expire_idle(1000).is_empty());
        assert_eq!(cl.len(), 1);
        assert_eq!(cl.clock(), 1);
    }

    #[test]
    fn classification_counts_ops() {
        let cl = PacketClassifier::new();
        let mut ops = OpCounter::default();
        let mut p = pkt(1000, TcpFlags::ACK);
        cl.classify(&mut p, &mut ops).unwrap();
        assert_eq!(ops.classifications, 1);
        assert_eq!(ops.parses, 0, "classification op covers its own parse");
    }

    #[test]
    fn capacity_eviction_fires_hook_and_keeps_bound() {
        let evictions = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&evictions);
        let cl = PacketClassifier::with_limits(1, 3, AdmissionPolicy::EvictOldest)
            .with_evictor(Arc::new(move |fid| log.lock().push(fid)));
        let mut ops = OpCounter::default();
        let mut fids = Vec::new();
        for port in [1000u16, 2000, 3000, 4000, 5000] {
            let mut p = pkt(port, TcpFlags::ACK);
            fids.push(cl.classify(&mut p, &mut ops).unwrap().fid);
        }
        assert_eq!(cl.len(), 3, "table stays at capacity");
        // The two oldest flows were displaced, in order.
        assert_eq!(*evictions.lock(), vec![fids[0], fids[1]]);
        // An evicted flow is initial again on return (and displaces the
        // now-oldest).
        let mut back = pkt(1000, TcpFlags::ACK);
        assert_eq!(cl.classify(&mut back, &mut ops).unwrap().class, PacketClass::Initial);
        assert_eq!(cl.len(), 3);
    }

    use parking_lot::Mutex;

    #[test]
    fn reject_policy_steers_rejected_without_state() {
        let cl = PacketClassifier::with_limits(1, 2, AdmissionPolicy::Reject);
        let mut ops = OpCounter::default();
        for port in [1000u16, 2000] {
            let mut p = pkt(port, TcpFlags::ACK);
            cl.classify(&mut p, &mut ops).unwrap();
        }
        let mut p = pkt(3000, TcpFlags::ACK);
        let c = cl.classify(&mut p, &mut ops).unwrap();
        assert_eq!(c.class, PacketClass::Rejected);
        assert_eq!(cl.len(), 2, "rejected flow leaves no state");
        assert_eq!(cl.packets_seen(c.fid), 0);
        // Tracked flows keep normal service at capacity.
        let mut p2 = pkt(1000, TcpFlags::ACK);
        assert_eq!(cl.classify(&mut p2, &mut ops).unwrap().class, PacketClass::Subsequent);
        // A closing rejected packet must not disturb tracked state.
        let mut fin = pkt(3000, TcpFlags::FIN | TcpFlags::ACK);
        let cf = cl.classify(&mut fin, &mut ops).unwrap();
        assert_eq!(cf.class, PacketClass::Rejected);
        assert!(cf.closes_flow);
        cl.remove_flow(cf.fid); // what a teardown path would do
        assert_eq!(cl.len(), 2);
        // Capacity frees up once a tracked flow departs.
        let mut p3 = pkt(1000, TcpFlags::ACK);
        let fid1 = cl.classify(&mut p3, &mut ops).unwrap().fid;
        cl.remove_flow(fid1);
        let mut p4 = pkt(3000, TcpFlags::ACK);
        assert_eq!(cl.classify(&mut p4, &mut ops).unwrap().class, PacketClass::Initial);
    }

    #[test]
    fn eviction_and_removal_retire_through_rcu() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let cl = PacketClassifier::with_limits(1, 2, AdmissionPolicy::EvictOldest).with_evictor(
            Arc::new(move |_| {
                h.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }),
        );
        let mut ops = OpCounter::default();
        for port in [1000u16, 2000, 3000] {
            let mut p = pkt(port, TcpFlags::ACK);
            cl.classify(&mut p, &mut ops).unwrap();
        }
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
        // Evicted + removed entries sit in the retired backlog until
        // collected; nothing leaks after a full drain.
        cl.collect_generations();
        assert_eq!(cl.pending_generations(), 0);
    }
}
