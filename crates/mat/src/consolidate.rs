//! Header-action consolidation (paper §V-B).
//!
//! The input is the sequence of header actions the chain's NFs recorded for
//! a flow; the output is a single [`ConsolidatedAction`] the fast path
//! applies in one step:
//!
//! * **drop** short-circuits everything ("as long as the list contains at
//!   least one drop action, the final action should be drop") — this is
//!   what enables the paper's *early packet drop* (Table III);
//! * **encap/decap** are simulated on a header stack; adjacent pairs on the
//!   same header annihilate;
//! * **modify** actions merge — same field: the latter wins; different
//!   fields: combined into one composite write (the paper expresses this
//!   as the XOR/OR composition `P0 ⊕ [(P0⊕P1) | (P0⊕P2)]`, reproduced
//!   bit-exactly by [`xor_compose`]);
//! * trailing fields (TTL/ToS/MAC) are applied at the very end, and
//!   checksums are fixed exactly once.

use speedybox_packet::{FieldValue, HeaderField, Packet};

use crate::action::{EncapSpec, HeaderAction};
use crate::ops::OpCounter;
use crate::Result;

/// The single action equivalent to a whole chain's header actions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConsolidatedAction {
    drop: bool,
    /// Final value per modified field, in first-write order (one entry per
    /// field; later writes overwrote earlier values during consolidation).
    modifies: Vec<(HeaderField, FieldValue)>,
    /// Net decapsulations of headers that arrived on the packet.
    net_decaps: usize,
    /// Net encapsulations to push, bottom-to-top.
    net_encaps: Vec<EncapSpec>,
}

impl ConsolidatedAction {
    /// True if the flow's packets are dropped (at the head of the chain).
    #[must_use]
    pub fn is_drop(&self) -> bool {
        self.drop
    }

    /// The merged field writes, one entry per field.
    #[must_use]
    pub fn modifies(&self) -> &[(HeaderField, FieldValue)] {
        &self.modifies
    }

    /// Net decapsulation count.
    #[must_use]
    pub fn net_decaps(&self) -> usize {
        self.net_decaps
    }

    /// Net encapsulations to apply, bottom-to-top.
    #[must_use]
    pub fn net_encaps(&self) -> &[EncapSpec] {
        &self.net_encaps
    }

    /// True if applying this action would leave the packet untouched.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        !self.drop && self.modifies.is_empty() && self.net_decaps == 0 && self.net_encaps.is_empty()
    }

    /// Applies the consolidated action on the fast path.
    ///
    /// Returns `false` if the packet is dropped (early drop: before any
    /// further processing). All header surgery happens here, and checksums
    /// are fixed exactly once — this one-shot application is where the R1
    /// (repeated parse), R2 (late drop) and R3 (overwrite) savings come
    /// from. The trailing fix is an O(1) incremental patch (RFC 1624) over
    /// the field deltas rather than a full recompute; the two agree
    /// whenever the ingress checksums were valid.
    ///
    /// # Errors
    /// Propagates packet manipulation failures.
    pub fn apply(&self, packet: &mut Packet, ops: &mut OpCounter) -> Result<bool> {
        if self.drop {
            ops.drops += 1;
            return Ok(false);
        }
        for _ in 0..self.net_decaps {
            packet.decap_ah()?;
            ops.encaps += 1;
        }
        for spec in &self.net_encaps {
            packet.encap_ah(spec.spi, 0)?;
            ops.encaps += 1;
        }
        let (mut ip_old, mut ip_new) = (0u32, 0u32);
        let (mut l4_old, mut l4_new) = (0u32, 0u32);
        for (field, value) in &self.modifies {
            let old = packet.get_field(*field)?;
            let (ip, l4) = crate::compiled::checksum_domains(*field);
            if ip {
                ip_old += crate::compiled::word_contribution(*field, old);
                ip_new += crate::compiled::word_contribution(*field, *value);
            }
            if l4 {
                l4_old += crate::compiled::word_contribution(*field, old);
                l4_new += crate::compiled::word_contribution(*field, *value);
            }
            packet.set_field(*field, *value)?;
            ops.field_writes += 1;
        }
        if !self.is_noop() {
            packet.patch_ipv4_checksum_incremental(ip_old, ip_new);
            packet.patch_l4_checksum_incremental(l4_old, l4_new)?;
            ops.checksum_fixes += 1;
        }
        Ok(true)
    }
}

/// Consolidates a chain's header actions into one (paper §V-B).
///
/// `forward` contributes nothing ("we set it as the default action if no
/// other action is provided"). The result is order-equivalent to applying
/// the input actions sequentially (property-tested in this crate's test
/// suite), except that a drop anywhere becomes a drop at the head.
///
/// ```
/// use speedybox_mat::{consolidate, HeaderAction};
///
/// // A firewall's late drop consolidates into an early drop (Table III).
/// let merged = consolidate(&[HeaderAction::Forward, HeaderAction::Drop]);
/// assert!(merged.is_drop());
/// ```
#[must_use]
pub fn consolidate(actions: &[HeaderAction]) -> ConsolidatedAction {
    let mut out = ConsolidatedAction::default();
    // Stack of headers pushed *within* this chain.
    let mut pushed: Vec<EncapSpec> = Vec::new();
    for action in actions {
        match action {
            HeaderAction::Forward => {}
            HeaderAction::Drop => {
                // Short-circuit: nothing downstream matters.
                return ConsolidatedAction { drop: true, ..ConsolidatedAction::default() };
            }
            HeaderAction::Modify(writes) => {
                for (field, value) in writes {
                    match out.modifies.iter_mut().find(|(f, _)| f == field) {
                        // "If two modify actions change the same field but
                        // with different values, we select the value of the
                        // latter modify."
                        Some((_, v)) => *v = *value,
                        None => out.modifies.push((*field, *value)),
                    }
                }
            }
            HeaderAction::Encap(spec) => pushed.push(*spec),
            HeaderAction::Decap(_) => {
                // "Encapsulation is pushing a new header to the (packet)
                // stack, and decapsulation is popping an existing header
                // from the stack."
                if pushed.pop().is_none() {
                    // Decap of a header that arrived on the packet.
                    out.net_decaps += 1;
                }
                // An encap pushed earlier in this chain annihilates with
                // this decap: both vanish from the consolidated action.
            }
        }
    }
    out.net_encaps = pushed;
    out
}

/// The paper's bit-level modify composition:
/// `P0 ⊕ [(P0 ⊕ P1) | (P0 ⊕ P2)]` (§V-B).
///
/// `p0` is the original packet bytes, `p1`/`p2` the outputs of two modify
/// actions that touch *different* fields. Returns the composed packet. All
/// three slices must have equal length.
///
/// This function exists to mirror the paper's formulation; the production
/// path merges at the field level ([`consolidate`]), and the two are
/// equivalent for disjoint modifies (property-tested).
///
/// # Panics
/// Panics if the slices differ in length.
#[must_use]
pub fn xor_compose(p0: &[u8], p1: &[u8], p2: &[u8]) -> Vec<u8> {
    assert_eq!(p0.len(), p1.len(), "modify outputs must preserve length");
    assert_eq!(p0.len(), p2.len(), "modify outputs must preserve length");
    p0.iter().zip(p1.iter().zip(p2)).map(|(&b0, (&b1, &b2))| b0 ^ ((b0 ^ b1) | (b0 ^ b2))).collect()
}

/// Iterated XOR composition over any number of modify outputs, applying
/// the paper's "we iterate the process incrementally" rule.
///
/// # Panics
/// Panics if any output length differs from `p0`'s.
#[must_use]
pub fn xor_compose_all(p0: &[u8], outputs: &[&[u8]]) -> Vec<u8> {
    match outputs {
        [] => p0.to_vec(),
        [only] => only.to_vec(),
        [first, rest @ ..] => {
            let mut acc = first.to_vec();
            for next in rest {
                acc = xor_compose(p0, &acc, next);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use speedybox_packet::PacketBuilder;

    use super::*;

    fn pkt() -> Packet {
        PacketBuilder::tcp()
            .src("10.0.0.1:1000".parse().unwrap())
            .dst("10.0.0.2:80".parse().unwrap())
            .payload(b"data")
            .build()
    }

    fn ip(a: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 9, 9, a)
    }

    #[test]
    fn empty_chain_is_noop() {
        let c = consolidate(&[]);
        assert!(c.is_noop());
        let mut p = pkt();
        let before = p.as_bytes().to_vec();
        let mut ops = OpCounter::default();
        assert!(c.apply(&mut p, &mut ops).unwrap());
        assert_eq!(p.as_bytes(), &before[..]);
        assert_eq!(ops.checksum_fixes, 0);
    }

    #[test]
    fn forwards_are_ignored() {
        let c = consolidate(&[HeaderAction::Forward, HeaderAction::Forward]);
        assert!(c.is_noop());
    }

    #[test]
    fn any_drop_wins() {
        let c = consolidate(&[
            HeaderAction::modify(HeaderField::DstIp, ip(1)),
            HeaderAction::Drop,
            HeaderAction::Encap(EncapSpec::new(1)),
        ]);
        assert!(c.is_drop());
        // Drop leaves no residual modifies/encaps.
        assert!(c.modifies().is_empty());
        assert!(c.net_encaps().is_empty());
    }

    #[test]
    fn same_field_latter_wins() {
        let c = consolidate(&[
            HeaderAction::modify(HeaderField::DstIp, ip(1)),
            HeaderAction::modify(HeaderField::DstIp, ip(2)),
        ]);
        assert_eq!(c.modifies(), &[(HeaderField::DstIp, ip(2).into())]);
    }

    #[test]
    fn different_fields_merge() {
        let c = consolidate(&[
            HeaderAction::modify(HeaderField::DstIp, ip(1)),
            HeaderAction::modify(HeaderField::DstPort, 8080u16),
        ]);
        assert_eq!(c.modifies().len(), 2);
    }

    #[test]
    fn adjacent_encap_decap_annihilate() {
        let c = consolidate(&[
            HeaderAction::Encap(EncapSpec::new(1)),
            HeaderAction::Decap(EncapSpec::new(1)),
        ]);
        assert!(c.is_noop());
    }

    #[test]
    fn nested_encap_decap_annihilate() {
        let c = consolidate(&[
            HeaderAction::Encap(EncapSpec::new(1)),
            HeaderAction::Encap(EncapSpec::new(2)),
            HeaderAction::Decap(EncapSpec::new(2)),
            HeaderAction::Decap(EncapSpec::new(1)),
        ]);
        assert!(c.is_noop());
    }

    #[test]
    fn unmatched_encap_survives() {
        let c = consolidate(&[HeaderAction::Encap(EncapSpec::new(5))]);
        assert_eq!(c.net_encaps(), &[EncapSpec::new(5)]);
        assert_eq!(c.net_decaps(), 0);
    }

    #[test]
    fn unmatched_decap_survives() {
        let c = consolidate(&[HeaderAction::Decap(EncapSpec::new(5))]);
        assert_eq!(c.net_decaps(), 1);
        assert!(c.net_encaps().is_empty());
    }

    #[test]
    fn encap_then_own_decap_is_true_noop_and_skips_checksum() {
        // Regression: an encap immediately undone by its own decap must
        // cancel to a *true* no-op — `is_noop()` true, zero residual
        // decaps/encaps — so `apply` skips header surgery and the checksum
        // fix entirely.
        let c = consolidate(&[
            HeaderAction::Encap(EncapSpec::new(0x1001)),
            HeaderAction::Decap(EncapSpec::new(0x1001)),
        ]);
        assert!(c.is_noop());
        assert_eq!(c.net_decaps(), 0);
        assert!(c.net_encaps().is_empty());
        let mut p = pkt();
        let before = p.as_bytes().to_vec();
        let mut ops = OpCounter::default();
        assert!(c.apply(&mut p, &mut ops).unwrap());
        assert_eq!(p.as_bytes(), &before[..]);
        assert_eq!(ops.checksum_fixes, 0);
        assert_eq!(ops.encaps, 0);
    }

    #[test]
    fn encap_own_decap_cancels_between_other_actions() {
        // The cancelled pair must not disturb surrounding modifies, and an
        // extra decap after the pair pops an *arrival* header, not the
        // already-annihilated in-chain one.
        let c = consolidate(&[
            HeaderAction::modify(HeaderField::DstIp, ip(4)),
            HeaderAction::Encap(EncapSpec::new(7)),
            HeaderAction::Decap(EncapSpec::new(7)),
            HeaderAction::Decap(EncapSpec::new(1)),
        ]);
        assert!(!c.is_noop());
        assert_eq!(c.modifies(), &[(HeaderField::DstIp, ip(4).into())]);
        assert_eq!(c.net_decaps(), 1);
        assert!(c.net_encaps().is_empty());
    }

    #[test]
    fn mismatched_spec_decap_still_pops_in_chain_encap() {
        // Decap pops the outermost header regardless of the spec it names
        // (mirroring `Packet::decap_ah`), so a mismatched spec still
        // annihilates the in-chain encap and the pair is byte-equivalent to
        // doing nothing. The static verifier flags the spec mismatch as
        // SBX002 — the consolidation itself stays sound.
        let actions =
            [HeaderAction::Encap(EncapSpec::new(1)), HeaderAction::Decap(EncapSpec::new(2))];
        let c = consolidate(&actions);
        assert!(c.is_noop());
        let mut seq = pkt();
        let mut ops = OpCounter::default();
        for a in &actions {
            a.apply(&mut seq, &mut ops).unwrap();
        }
        let mut fast = pkt();
        c.apply(&mut fast, &mut ops).unwrap();
        assert_eq!(seq.as_bytes(), fast.as_bytes());
    }

    #[test]
    fn decap_then_encap_does_not_annihilate() {
        // Popping an arriving header then pushing a new one is NOT a no-op.
        let c = consolidate(&[
            HeaderAction::Decap(EncapSpec::new(1)),
            HeaderAction::Encap(EncapSpec::new(2)),
        ]);
        assert_eq!(c.net_decaps(), 1);
        assert_eq!(c.net_encaps(), &[EncapSpec::new(2)]);
    }

    #[test]
    fn consolidated_equals_sequential_for_modify_chain() {
        let actions = [
            HeaderAction::modify(HeaderField::DstIp, ip(1)),
            HeaderAction::modify2(
                (HeaderField::DstIp, ip(2).into()),
                (HeaderField::DstPort, 8080u16.into()),
            ),
            HeaderAction::modify(HeaderField::SrcPort, 4242u16),
        ];
        // Sequential (original chain).
        let mut seq = pkt();
        let mut ops = OpCounter::default();
        for a in &actions {
            assert!(a.apply(&mut seq, &mut ops).unwrap());
        }
        // Consolidated (fast path).
        let mut fast = pkt();
        let c = consolidate(&actions);
        assert!(c.apply(&mut fast, &mut ops).unwrap());
        assert_eq!(seq.as_bytes(), fast.as_bytes());
        // One checksum fix on the fast path vs three on the original.
        let mut fast_ops = OpCounter::default();
        let mut p = pkt();
        c.apply(&mut p, &mut fast_ops).unwrap();
        assert_eq!(fast_ops.checksum_fixes, 1);
    }

    #[test]
    fn consolidated_equals_sequential_with_encap() {
        let actions = [
            HeaderAction::modify(HeaderField::DstIp, ip(3)),
            HeaderAction::Encap(EncapSpec::new(9)),
        ];
        let mut seq = pkt();
        let mut ops = OpCounter::default();
        for a in &actions {
            a.apply(&mut seq, &mut ops).unwrap();
        }
        let mut fast = pkt();
        consolidate(&actions).apply(&mut fast, &mut ops).unwrap();
        assert_eq!(seq.as_bytes(), fast.as_bytes());
    }

    #[test]
    fn xor_compose_matches_paper_formula() {
        // Two modifies touching different bytes.
        let p0 = vec![0xAA, 0xBB, 0xCC, 0xDD];
        let mut p1 = p0.clone();
        p1[0] = 0x11; // modify1 touches byte 0
        let mut p2 = p0.clone();
        p2[3] = 0x22; // modify2 touches byte 3
        let out = xor_compose(&p0, &p1, &p2);
        assert_eq!(out, vec![0x11, 0xBB, 0xCC, 0x22]);
    }

    #[test]
    fn xor_compose_all_iterates() {
        let p0 = vec![0u8, 0, 0];
        let p1 = vec![7u8, 0, 0];
        let p2 = vec![0u8, 8, 0];
        let p3 = vec![0u8, 0, 9];
        let out = xor_compose_all(&p0, &[&p1, &p2, &p3]);
        assert_eq!(out, vec![7, 8, 9]);
        assert_eq!(xor_compose_all(&p0, &[]), p0);
        assert_eq!(xor_compose_all(&p0, &[&p1]), p1);
    }

    #[test]
    #[should_panic(expected = "preserve length")]
    fn xor_compose_rejects_length_mismatch() {
        let _ = xor_compose(&[0, 1], &[0], &[0, 1]);
    }

    #[test]
    fn field_level_merge_equals_xor_composition() {
        // The production field-level merge and the paper's byte-level XOR
        // composition agree for disjoint-field modifies.
        let base = pkt();
        let m1 = HeaderAction::modify(HeaderField::DstIp, ip(7));
        let m2 = HeaderAction::modify(HeaderField::SrcPort, 999u16);
        let mut ops = OpCounter::default();

        let mut out1 = base.clone();
        m1.apply(&mut out1, &mut ops).unwrap();
        let mut out2 = base.clone();
        m2.apply(&mut out2, &mut ops).unwrap();
        // XOR-compose the raw frames (skip checksum bytes: the per-branch
        // checksums differ; compose pre-checksum states instead).
        let mut pre1 = base.clone();
        pre1.set_field(HeaderField::DstIp, ip(7)).unwrap();
        let mut pre2 = base.clone();
        pre2.set_field(HeaderField::SrcPort, 999u16).unwrap();
        let composed = xor_compose(base.as_bytes(), pre1.as_bytes(), pre2.as_bytes());

        let mut fast = base;
        consolidate(&[m1, m2]).apply(&mut fast, &mut ops).unwrap();
        let mut composed_pkt = Packet::from_frame(&composed).unwrap();
        composed_pkt.fix_checksums().unwrap();
        assert_eq!(fast.as_bytes(), composed_pkt.as_bytes());
    }
}
