//! Hierarchical timer wheel for idle-flow eviction.
//!
//! Deadlines are ticks of the deterministic classifier packet clock — the
//! wheel is advanced from batch boundaries (`process_batch`), never from a
//! background thread, so the deterministic model and the thread pool stay
//! bit-identical.
//!
//! The wheel is *lazy*: items are scheduled once at their insertion
//! deadline and are **not** moved when the flow is touched again. Instead,
//! the flow table re-checks the slot's authoritative `touch` stamp when an
//! item pops and reschedules still-busy flows at their true deadline. The
//! invariant the flow table relies on is therefore one-sided: an item's
//! scheduled deadline is always `<=` its slot's current `touch`-derived
//! deadline, so advancing the wheel to a target pops a *superset* of the
//! truly expired slots and never misses one.
//!
//! # Levels and resolution
//!
//! Four levels of 64 buckets each ([`LEVELS`] × [`WHEEL_SLOTS`]). Level 0
//! has single-tick resolution over the next 64 ticks; each higher level
//! covers 64× the span of the one below at 64× coarser resolution, for a
//! total horizon of 64⁴ ≈ 16.8 M ticks — comfortably past the 20-bit FID
//! space's worth of packets. Deadlines beyond the horizon clamp into the
//! top level and simply cascade (and get re-checked) early. When the
//! cursor crosses a level boundary the next higher-level bucket is
//! *cascaded*: its items are redistributed into the finer levels below.

/// Number of hierarchical levels.
pub const LEVELS: usize = 4;
/// log2 of the per-level bucket count.
pub const WHEEL_SLOT_BITS: u32 = 6;
/// Buckets per level.
pub const WHEEL_SLOTS: usize = 1 << WHEEL_SLOT_BITS;

/// One scheduled entry: an opaque slab slot handle plus the deadline it
/// was scheduled at. The wheel never interprets the handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelItem {
    /// Slab slot handle of the flow (see `flow_table`).
    pub slot: u32,
    /// Tick the item was scheduled to fire at.
    pub deadline: u64,
}

/// A four-level hierarchical timer wheel (see module docs).
#[derive(Debug)]
pub struct TimerWheel {
    /// `buckets[level][index]` — unordered items within a bucket.
    buckets: Vec<Vec<Vec<WheelItem>>>,
    /// Items already at or behind the cursor, pulled out of a boundary
    /// bucket by [`TimerWheel::pop_earliest`] and awaiting hand-out.
    /// Always the earliest items in the wheel.
    overdue: Vec<WheelItem>,
    /// Current time: every item with `deadline <= now` has been popped
    /// (or sits in `overdue`).
    now: u64,
    /// Scheduled items not yet popped (includes `overdue`).
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimerWheel {
    /// An empty wheel at tick 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: (0..LEVELS).map(|_| vec![Vec::new(); WHEEL_SLOTS]).collect(),
            overdue: Vec::new(),
            now: 0,
            len: 0,
        }
    }

    /// Scheduled items not yet popped.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// `WHEEL_SLOT_BITS * level` as a shift amount. `level` never exceeds
    /// [`LEVELS`] (= 4), so the cast cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    const fn level_shift(level: usize) -> u32 {
        WHEEL_SLOT_BITS * level as u32
    }

    /// Level whose span covers `delta` ticks ahead of `now`.
    fn level_for(delta: u64) -> usize {
        // Level l spans [64^l .. 64^(l+1)); delta >= 1 by construction.
        // Half-open on the right so a delta of exactly 64^(l+1) promotes:
        // at level l it would wrap onto the bucket the cursor is draining
        // this very tick and fire a full revolution early.
        let mut level = 0;
        while level + 1 < LEVELS && delta >= (1u64 << Self::level_shift(level + 1)) {
            level += 1;
        }
        level
    }

    /// Bucket index of `deadline` at `level`. Masked to the bucket count,
    /// so the narrowing cast cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    fn index_for(deadline: u64, level: usize) -> usize {
        ((deadline >> Self::level_shift(level)) & (WHEEL_SLOTS as u64 - 1)) as usize
    }

    /// Schedules `slot` to pop at `deadline`. Deadlines at or before the
    /// cursor clamp to the next tick (they pop on the next advance).
    pub fn schedule(&mut self, slot: u32, deadline: u64) {
        let deadline = deadline.max(self.now + 1);
        let delta = deadline - self.now;
        // Clamp past the horizon into the top level: the item cascades
        // down early and the truth check reschedules it.
        let level = Self::level_for(delta);
        let index = Self::index_for(deadline, level);
        self.buckets[level][index].push(WheelItem { slot, deadline });
        self.len += 1;
    }

    /// Pulls every item of `level`'s bucket for the cursor position down
    /// into the levels below (or into `out` if already due).
    fn cascade(&mut self, level: usize, out: &mut Vec<WheelItem>) {
        let index = Self::index_for(self.now, level);
        let items = std::mem::take(&mut self.buckets[level][index]);
        for item in items {
            if item.deadline <= self.now {
                out.push(item);
            } else {
                self.len -= 1;
                self.schedule(item.slot, item.deadline);
            }
        }
    }

    /// Advances the cursor one tick, draining due items into `out`.
    fn tick(&mut self, out: &mut Vec<WheelItem>) {
        self.now += 1;
        // Crossing a coarser boundary pulls the next coarse bucket down.
        for level in (1..LEVELS).rev() {
            if self.now & ((1u64 << Self::level_shift(level)) - 1) == 0 {
                self.cascade(level, out);
            }
        }
        let index = Self::index_for(self.now, 0);
        let due = std::mem::take(&mut self.buckets[0][index]);
        for item in due {
            debug_assert!(item.deadline <= self.now, "level-0 bucket holds only due items");
            out.push(item);
        }
    }

    /// Advances the cursor to `until`, appending every item scheduled at a
    /// deadline `<= until` to `out`. A target at or behind the cursor is a
    /// no-op (the flow table's one-sided lazy invariant makes regressing
    /// targets vacuous — see module docs). Amortized O(1) per clock tick
    /// over a run plus O(1) per popped item; large empty gaps are skipped
    /// a level-0 revolution at a time.
    pub fn advance(&mut self, until: u64, out: &mut Vec<WheelItem>) {
        let start = out.len();
        if !self.overdue.is_empty() {
            // Overdue items were already pulled behind the cursor by
            // `pop_earliest`; hand out the due ones in deadline order.
            self.overdue.sort_by_key(|item| item.deadline);
            let keep = self.overdue.iter().position(|item| item.deadline > until);
            let rest = self.overdue.split_off(keep.unwrap_or(self.overdue.len()));
            out.append(&mut self.overdue);
            self.overdue = rest;
        }
        while self.now < until {
            // Fast-forward over fully empty level-0 revolutions: if no
            // level-0 bucket holds anything, jump to the next coarse
            // boundary (or the target) instead of stepping tick by tick.
            if self.len == 0 {
                self.now = until;
                break;
            }
            if self.buckets[0].iter().all(Vec::is_empty) {
                let revolution = WHEEL_SLOTS as u64;
                let next_boundary = (self.now / revolution + 1) * revolution;
                if next_boundary.min(until) > self.now + 1 {
                    self.now = next_boundary.min(until) - 1;
                }
            }
            self.tick(out);
        }
        // Items moved into `out` during tick/cascade were not individually
        // decremented there.
        self.len -= out.len() - start;
        debug_assert!(
            self.buckets.iter().flatten().map(Vec::len).sum::<usize>() + self.overdue.len()
                == self.len
        );
    }

    /// Pops the single earliest-scheduled item, advancing the cursor only
    /// over empty ticks (items sharing the earliest bucket stay put).
    /// Returns `None` if the wheel is empty. Used for LRU victim selection
    /// under capacity pressure.
    pub fn pop_earliest(&mut self) -> Option<WheelItem> {
        if self.len == 0 {
            return None;
        }
        if !self.overdue.is_empty() {
            // Overdue items are behind the cursor and therefore earlier
            // than anything still in a bucket.
            let best = self
                .overdue
                .iter()
                .enumerate()
                .min_by_key(|(i, item)| (item.deadline, *i))
                .map(|(i, _)| i)
                .expect("overdue is non-empty");
            let item = self.overdue.swap_remove(best);
            self.len -= 1;
            return Some(item);
        }
        loop {
            // Find the earliest occupied level-0 bucket within the current
            // revolution, cascading coarser buckets down as needed.
            let revolution = WHEEL_SLOTS as u64;
            let rev_end = (self.now / revolution + 1) * revolution;
            let mut earliest: Option<(u64, usize)> = None;
            for t in (self.now + 1)..=rev_end {
                let idx = Self::index_for(t, 0);
                if !self.buckets[0][idx].is_empty() {
                    earliest = Some((t, idx));
                    break;
                }
            }
            if let Some((t, idx)) = earliest {
                // Take the item with the minimum deadline in the bucket so
                // ties within a bucket resolve deterministically oldest-
                // first (insertion order breaks exact ties).
                let best = self.buckets[0][idx]
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, item)| (item.deadline, *i))
                    .map(|(i, _)| i)
                    .expect("bucket is non-empty");
                let item = self.buckets[0][idx].swap_remove(best);
                self.len -= 1;
                // Cursor may move up to just before the popped bucket:
                // every tick in between was observed empty.
                self.now = self.now.max(t - 1);
                return Some(item);
            }
            // Nothing at level 0 in this revolution: jump to its end and
            // tick across the boundary, cascading the next coarse bucket.
            self.now = rev_end - 1;
            let mut spill = Vec::new();
            self.tick(&mut spill);
            if !spill.is_empty() {
                // Items were already due at the boundary tick itself: hand
                // back the oldest and park the rest (deadlines intact) in
                // the overdue buffer for later pops.
                let best = spill
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, item)| (item.deadline, *i))
                    .map(|(i, _)| i)
                    .expect("spill is non-empty");
                let first = spill.swap_remove(best);
                self.overdue.extend(spill);
                self.len -= 1;
                return Some(first);
            }
        }
    }

    /// A conservative lower bound on the next scheduled deadline, or
    /// `None` if the wheel is empty. Coarse-level buckets report their
    /// range start, so the bound may be early — callers use it as a cheap
    /// gate ("nothing can be due before this tick"), never as truth.
    #[must_use]
    pub fn next_due(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        // A coarser level can hold an earlier deadline than a finer one
        // (an item scheduled far ahead long ago vs. one scheduled nearby
        // just now), so every level — and the overdue buffer — competes.
        let mut best: Option<u64> = self.overdue.iter().map(|item| item.deadline).min();
        for level in 0..LEVELS {
            let span = 1u64 << Self::level_shift(level);
            let revolution = span * WHEEL_SLOTS as u64;
            let base = (self.now / revolution) * revolution;
            for idx in 0..WHEEL_SLOTS {
                if self.buckets[level][idx].is_empty() {
                    continue;
                }
                let mut start = base + idx as u64 * span;
                if start + span <= self.now + 1 {
                    start += revolution; // wrapped: fires next revolution
                }
                best = Some(best.map_or(start, |b: u64| b.min(start)));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use proptest::prelude::*;

    use super::*;

    /// Naive oracle: a BTreeMap of deadline -> slots, popped in order.
    #[derive(Debug, Default)]
    struct NaiveWheel {
        by_deadline: BTreeMap<u64, Vec<u32>>,
        now: u64,
    }

    impl NaiveWheel {
        fn schedule(&mut self, slot: u32, deadline: u64) {
            self.by_deadline.entry(deadline.max(self.now + 1)).or_default().push(slot);
        }

        fn advance(&mut self, until: u64) -> Vec<u32> {
            let mut out = Vec::new();
            if until <= self.now {
                return out;
            }
            let later = self.by_deadline.split_off(&(until + 1));
            for (_, slots) in std::mem::replace(&mut self.by_deadline, later) {
                out.extend(slots);
            }
            self.now = until;
            out
        }

        fn len(&self) -> usize {
            self.by_deadline.values().map(Vec::len).sum()
        }
    }

    fn drain_sorted(wheel: &mut TimerWheel, until: u64) -> Vec<u32> {
        let mut out = Vec::new();
        wheel.advance(until, &mut out);
        let mut slots: Vec<u32> = out.iter().map(|i| i.slot).collect();
        slots.sort_unstable();
        slots
    }

    #[test]
    fn pops_in_deadline_order_across_levels() {
        let mut wheel = TimerWheel::new();
        // One deadline per level span: 3 (L0), 100 (L1), 5_000 (L2),
        // 300_000 (L3) and one past the horizon.
        for (slot, deadline) in [(0, 3u64), (1, 100), (2, 5_000), (3, 300_000), (4, 20_000_000)] {
            wheel.schedule(slot, deadline);
        }
        assert_eq!(wheel.len(), 5);
        assert_eq!(drain_sorted(&mut wheel, 2), Vec::<u32>::new());
        assert_eq!(drain_sorted(&mut wheel, 3), vec![0]);
        assert_eq!(drain_sorted(&mut wheel, 4_999), vec![1]);
        assert_eq!(drain_sorted(&mut wheel, 400_000), vec![2, 3]);
        assert_eq!(drain_sorted(&mut wheel, 21_000_000), vec![4]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_clamp_to_next_tick() {
        let mut wheel = TimerWheel::new();
        let mut out = Vec::new();
        wheel.advance(50, &mut out);
        wheel.schedule(7, 10); // behind the cursor
        assert_eq!(drain_sorted(&mut wheel, 51), vec![7]);
    }

    #[test]
    fn pop_earliest_returns_oldest_first() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(1, 500);
        wheel.schedule(2, 20);
        wheel.schedule(3, 70_000);
        assert_eq!(wheel.pop_earliest().unwrap().slot, 2);
        assert_eq!(wheel.pop_earliest().unwrap().slot, 1);
        assert_eq!(wheel.pop_earliest().unwrap().slot, 3);
        assert!(wheel.pop_earliest().is_none());
    }

    #[test]
    fn pop_earliest_leaves_later_items_poppable_by_advance() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(1, 10);
        wheel.schedule(2, 10);
        wheel.schedule(3, 12);
        let first = wheel.pop_earliest().unwrap();
        assert_eq!(first.deadline, 10);
        assert_eq!(drain_sorted(&mut wheel, 12).len(), 2);
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_due_is_a_lower_bound() {
        let mut wheel = TimerWheel::new();
        assert_eq!(wheel.next_due(), None);
        wheel.schedule(1, 40);
        wheel.schedule(2, 9_000);
        let bound = wheel.next_due().expect("non-empty");
        assert!(bound <= 40, "bound {bound} must not exceed the true next deadline");
        let mut out = Vec::new();
        wheel.advance(40, &mut out);
        assert_eq!(out.len(), 1);
        let bound = wheel.next_due().expect("non-empty");
        assert!(bound <= 9_000);
        assert!(bound > 40, "after advancing, the bound moves past the cursor");
    }

    proptest! {
        /// The wheel pops exactly the oracle's item multiset at every
        /// advance target, regardless of how schedules and advances
        /// interleave or which levels the deadlines land in.
        #[test]
        fn wheel_matches_btreemap_oracle(
            ops in prop::collection::vec(
                (0u32..1000, 1u64..3_000_000, 1u64..500_000), 1..120)
        ) {
            let mut wheel = TimerWheel::new();
            let mut oracle = NaiveWheel::default();
            for (slot, deadline_seed, advance_step) in ops {
                let deadline = wheel.now() + 1 + deadline_seed % 2_000_000;
                wheel.schedule(slot, deadline);
                oracle.schedule(slot, deadline);
                let until = oracle.now + advance_step % 70_000;
                let mut popped = Vec::new();
                wheel.advance(until, &mut popped);
                let mut got: Vec<u32> = popped.iter().map(|i| i.slot).collect();
                let mut want = oracle.advance(until);
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want);
                prop_assert_eq!(wheel.len(), oracle.len());
                if let Some(bound) = wheel.next_due() {
                    let true_next = *oracle.by_deadline.keys().next().unwrap();
                    prop_assert!(bound <= true_next);
                }
            }
            // Drain everything: both must empty together.
            let horizon = oracle.by_deadline.keys().next_back().copied().unwrap_or(0);
            let mut rest = Vec::new();
            wheel.advance(horizon, &mut rest);
            prop_assert_eq!(rest.len(), oracle.advance(horizon).len());
            prop_assert!(wheel.is_empty());
        }

        /// `pop_earliest` is a stable selection sort by deadline: popping
        /// everything yields non-decreasing deadlines and the exact
        /// scheduled multiset.
        #[test]
        fn pop_earliest_drains_in_order(
            deadlines in prop::collection::vec(1u64..1_000_000, 1..60)
        ) {
            let mut wheel = TimerWheel::new();
            for (slot, &d) in deadlines.iter().enumerate() {
                wheel.schedule(u32::try_from(slot).unwrap(), d);
            }
            let mut popped = Vec::new();
            while let Some(item) = wheel.pop_earliest() {
                popped.push(item.deadline);
            }
            prop_assert_eq!(popped.len(), deadlines.len());
            let mut sorted = deadlines.clone();
            sorted.sort_unstable();
            prop_assert_eq!(popped, sorted);
        }
    }
}
