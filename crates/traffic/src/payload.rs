//! Payload synthesis.
//!
//! Payloads are human-plausible byte soup of a requested length; a
//! "suspicious" payload embeds a given pattern at a pseudo-random offset
//! so multi-pattern inspection has real work to do at any position.

use rand::Rng;

/// What a flow's payloads look like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadKind {
    /// Innocuous filler.
    Clean,
    /// Filler with `pattern` embedded in every data packet.
    Suspicious {
        /// The byte pattern to embed (e.g. a Snort `content`).
        pattern: Vec<u8>,
    },
}

impl PayloadKind {
    /// Convenience constructor from a string pattern.
    #[must_use]
    pub fn suspicious(pattern: &str) -> Self {
        PayloadKind::Suspicious { pattern: pattern.as_bytes().to_vec() }
    }

    /// True for the clean kind.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self, PayloadKind::Clean)
    }
}

const FILLER: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 /:.-_";

/// Generates a payload of exactly `len` bytes. For
/// [`PayloadKind::Suspicious`], the pattern is embedded whole if it fits
/// (`len >= pattern.len()`); shorter payloads degrade to clean filler.
pub fn synthesize(kind: &PayloadKind, len: usize, rng: &mut impl Rng) -> Vec<u8> {
    let mut out: Vec<u8> = (0..len).map(|_| FILLER[rng.gen_range(0..FILLER.len())]).collect();
    if let PayloadKind::Suspicious { pattern } = kind {
        if pattern.len() <= len {
            let max_off = len - pattern.len();
            let off = if max_off == 0 { 0 } else { rng.gen_range(0..=max_off) };
            out[off..off + pattern.len()].copy_from_slice(pattern);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn contains(hay: &[u8], needle: &[u8]) -> bool {
        hay.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn clean_payload_has_requested_length() {
        let p = synthesize(&PayloadKind::Clean, 100, &mut rng());
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn suspicious_payload_embeds_pattern() {
        let kind = PayloadKind::suspicious("evil");
        for _ in 0..50 {
            let p = synthesize(&kind, 64, &mut rng());
            assert!(contains(&p, b"evil"));
        }
    }

    #[test]
    fn pattern_embedded_at_varying_offsets() {
        let kind = PayloadKind::suspicious("XFIL");
        let mut r = rng();
        let offsets: std::collections::HashSet<usize> = (0..100)
            .map(|_| {
                let p = synthesize(&kind, 64, &mut r);
                p.windows(4).position(|w| w == b"XFIL").unwrap()
            })
            .collect();
        assert!(offsets.len() > 5, "pattern should move around: {offsets:?}");
    }

    #[test]
    fn too_short_payload_degrades_to_clean() {
        let kind = PayloadKind::suspicious("longpattern");
        let p = synthesize(&kind, 4, &mut rng());
        assert_eq!(p.len(), 4);
        assert!(!contains(&p, b"longpattern"));
    }

    #[test]
    fn exact_fit_pattern() {
        let kind = PayloadKind::suspicious("1234");
        let p = synthesize(&kind, 4, &mut rng());
        assert_eq!(p, b"1234");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = synthesize(&PayloadKind::Clean, 32, &mut rng());
        let b = synthesize(&PayloadKind::Clean, 32, &mut rng());
        assert_eq!(a, b);
    }
}
