//! Paced replay and workload statistics.
//!
//! A [`Workload`] carries arrival timestamps; [`ReplaySchedule`] turns them
//! into a deterministic pacing plan (with a speed factor) and
//! [`WorkloadStats`] summarizes what a workload actually contains — the
//! sanity pass any trace-driven evaluation should print before trusting
//! its results.

use std::collections::HashMap;

use speedybox_packet::{FiveTuple, Packet, Protocol};

use crate::workload::Workload;

/// One scheduled transmission.
#[derive(Debug, Clone)]
pub struct ScheduledPacket {
    /// When to send, nanoseconds since replay start (already scaled).
    pub at_ns: u64,
    /// The packet.
    pub packet: Packet,
}

/// A deterministic pacing plan for a workload.
#[derive(Debug, Clone)]
pub struct ReplaySchedule {
    entries: Vec<ScheduledPacket>,
}

impl ReplaySchedule {
    /// Builds a schedule from a workload, dividing all inter-arrival gaps
    /// by `speedup` (2.0 = replay twice as fast; values ≤ 0 are clamped to
    /// 1.0).
    #[must_use]
    pub fn new(workload: &Workload, speedup: f64) -> Self {
        let speedup = if speedup > 0.0 { speedup } else { 1.0 };
        let entries = workload
            .arrivals
            .iter()
            .map(|(ts, p)| ScheduledPacket {
                #[allow(clippy::cast_possible_truncation)] // trace spans fit u64 ns
                at_ns: (*ts as f64 / speedup) as u64,
                packet: p.clone(),
            })
            .collect();
        Self { entries }
    }

    /// Number of scheduled packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total replay duration in nanoseconds (time of the last packet).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.at_ns)
    }

    /// Offered load in packets per second over the replay duration.
    #[must_use]
    pub fn offered_pps(&self) -> f64 {
        let d = self.duration_ns();
        if d == 0 {
            return 0.0;
        }
        self.entries.len() as f64 / (d as f64 / 1e9)
    }

    /// Iterates over the scheduled packets in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, ScheduledPacket> {
        self.entries.iter()
    }
}

impl IntoIterator for ReplaySchedule {
    type Item = ScheduledPacket;
    type IntoIter = std::vec::IntoIter<ScheduledPacket>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// Summary statistics of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Total packets.
    pub packets: usize,
    /// Distinct flows (by 5-tuple).
    pub flows: usize,
    /// Total frame bytes.
    pub bytes: u64,
    /// TCP packet count.
    pub tcp_packets: usize,
    /// UDP packet count.
    pub udp_packets: usize,
    /// Smallest / mean / largest frame size.
    pub frame_min: usize,
    /// Mean frame size.
    pub frame_mean: f64,
    /// Largest frame size.
    pub frame_max: usize,
    /// Packets in the largest flow.
    pub largest_flow_packets: usize,
    /// Median packets per flow.
    pub median_flow_packets: usize,
}

impl WorkloadStats {
    /// Computes statistics over a workload.
    #[must_use]
    pub fn of(workload: &Workload) -> Self {
        let mut per_flow: HashMap<FiveTuple, usize> = HashMap::new();
        let mut bytes = 0u64;
        let mut tcp = 0usize;
        let mut udp = 0usize;
        let mut frame_min = usize::MAX;
        let mut frame_max = 0usize;
        for (_, p) in &workload.arrivals {
            let len = p.len();
            bytes += len as u64;
            frame_min = frame_min.min(len);
            frame_max = frame_max.max(len);
            if let Ok(t) = p.five_tuple() {
                *per_flow.entry(t).or_insert(0) += 1;
                match t.protocol {
                    Protocol::Tcp => tcp += 1,
                    Protocol::Udp => udp += 1,
                }
            }
        }
        let packets = workload.arrivals.len();
        let mut sizes: Vec<usize> = per_flow.values().copied().collect();
        sizes.sort_unstable();
        Self {
            packets,
            flows: per_flow.len(),
            bytes,
            tcp_packets: tcp,
            udp_packets: udp,
            frame_min: if packets == 0 { 0 } else { frame_min },
            frame_mean: if packets == 0 { 0.0 } else { bytes as f64 / packets as f64 },
            frame_max,
            largest_flow_packets: sizes.last().copied().unwrap_or(0),
            median_flow_packets: if sizes.is_empty() { 0 } else { sizes[sizes.len() / 2] },
        }
    }
}

impl std::fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} packets, {} flows, {} bytes ({} tcp / {} udp)",
            self.packets, self.flows, self.bytes, self.tcp_packets, self.udp_packets
        )?;
        writeln!(
            f,
            "frames: {}..{} bytes (mean {:.1}); flow sizes: median {} pkts, max {} pkts",
            self.frame_min,
            self.frame_max,
            self.frame_mean,
            self.median_flow_packets,
            self.largest_flow_packets
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::workload::WorkloadConfig;

    use super::*;

    fn workload() -> Workload {
        Workload::generate(&WorkloadConfig {
            flows: 20,
            median_packets: 4.0,
            udp_fraction: 0.3,
            seed: 5,
            ..WorkloadConfig::default()
        })
    }

    #[test]
    fn schedule_preserves_order_and_scales() {
        let w = workload();
        let normal = ReplaySchedule::new(&w, 1.0);
        let fast = ReplaySchedule::new(&w, 2.0);
        assert_eq!(normal.len(), w.len());
        assert!(normal.iter().zip(fast.iter()).all(|(a, b)| {
            #[allow(clippy::cast_possible_truncation)]
            let halved = (a.at_ns as f64 / 2.0) as u64;
            b.at_ns == a.at_ns / 2 || b.at_ns == halved
        }));
        assert!(normal.iter().zip(normal.iter().skip(1)).all(|(a, b)| a.at_ns <= b.at_ns));
        // Twice the speed, roughly twice the offered load.
        let ratio = fast.offered_pps() / normal.offered_pps();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn non_positive_speedup_clamps() {
        let w = workload();
        let a = ReplaySchedule::new(&w, 1.0);
        let b = ReplaySchedule::new(&w, 0.0);
        assert_eq!(a.duration_ns(), b.duration_ns());
    }

    #[test]
    fn stats_add_up() {
        let w = workload();
        let s = WorkloadStats::of(&w);
        assert_eq!(s.packets, w.len());
        assert_eq!(s.flows, 20);
        assert_eq!(s.tcp_packets + s.udp_packets, s.packets);
        assert!(s.udp_packets > 0, "udp_fraction produced UDP flows");
        assert!(s.frame_min <= s.frame_max);
        assert!(s.frame_mean >= s.frame_min as f64 && s.frame_mean <= s.frame_max as f64);
        assert!(s.largest_flow_packets >= s.median_flow_packets);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn empty_workload_stats() {
        let w = Workload { flows: Vec::new(), arrivals: Vec::new() };
        let s = WorkloadStats::of(&w);
        assert_eq!(s.packets, 0);
        assert_eq!(s.frame_min, 0);
        assert_eq!(s.frame_mean, 0.0);
        let sched = ReplaySchedule::new(&w, 1.0);
        assert!(sched.is_empty());
        assert_eq!(sched.offered_pps(), 0.0);
    }
}
